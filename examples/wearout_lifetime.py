#!/usr/bin/env python3
"""Wear-out lifetime demo (Section II-D: deadlock-free faults).

Links die one at a time over the chip's lifetime. After each failure the
offline drain-path algorithm simply reruns on the surviving topology and
the network keeps operating with fully adaptive routing — no routing-table
deadlock re-verification, no boundary restrictions, no spare VCs.

Run:  python examples/wearout_lifetime.py
"""

from repro.experiments.common import Scale, format_table
from repro.experiments.lifetime import lifetime_study


def main() -> None:
    scale = Scale(warmup=500, measure=2_000, low_load_rate=0.03, epoch=2_048)
    rows = lifetime_study(
        total_failures=12, measure_every=3, mesh_width=8, scale=scale
    )
    print(
        format_table(
            rows,
            columns=(
                "failures", "links_left", "drain_path_length", "diameter",
                "drain_latency", "updown_latency",
            ),
            title="Ageing 8x8 mesh: DRAIN vs up*/down* as links fail "
                  "(uniform random @ 0.03)",
        )
    )
    print(
        "\nEvery row re-ran the offline algorithm on the surviving "
        "topology; the drain path shrinks with the network (always "
        "2 x surviving links) and service continues uninterrupted."
    )


if __name__ == "__main__":
    main()
