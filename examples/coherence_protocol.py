#!/usr/bin/env python3
"""Protocol-level deadlock demo (the paper's Figure 2).

A MESI-style directory protocol splits transactions into request, forward
and response messages. On a single shared virtual network those classes
block each other through the directory's dependency chain — a protocol
deadlock no routing scheme can fix. The conventional cure is one virtual
network per class (3x the buffers); DRAIN's cure is periodic draining on
ONE virtual network.

This script wedges the single-VN network without protection, then shows
DRAIN completing the same workload, and compares against the 3-VN baseline.

Run:  python examples/coherence_protocol.py
"""

import random

from repro import (
    DrainConfig,
    NetworkConfig,
    ProtocolConfig,
    Scheme,
    SimConfig,
    Simulation,
    inject_link_faults,
    make_mesh,
)
from repro.experiments.common import format_table
from repro.protocol import CoherenceTraffic

TXNS_PER_NODE = 40


def run_case(label, topo, scheme, num_vns, vcs):
    config = SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=num_vns, vcs_per_vn=vcs,
                              ejection_queue_depth=2),
        drain=DrainConfig(epoch=128, full_drain_period=16),
    )
    traffic = CoherenceTraffic(
        topo.num_nodes,
        ProtocolConfig(mshrs_per_node=8, forward_probability=0.5),
        issue_probability=0.15,
        rng=random.Random(11),
        total_transactions=TXNS_PER_NODE * topo.num_nodes,
    )
    sim = Simulation(topo, config, traffic,
                     halt_on_deadlock=(scheme is Scheme.NONE))
    stats = sim.run(120_000)
    return {
        "configuration": label,
        "vns": num_vns,
        "completed": traffic.completed,
        "quota": TXNS_PER_NODE * topo.num_nodes,
        "cycles": stats.cycles,
        "wedged": "YES" if sim.deadlocked else "no",
        "avg_latency": stats.avg_latency if stats.latency.count else float("nan"),
    }


def main() -> None:
    topo = inject_link_faults(make_mesh(4, 4), 4, random.Random(4))
    print(f"Topology: {topo} | {TXNS_PER_NODE} transactions/node quota\n")
    rows = [
        run_case("no protection, shared VN", topo, Scheme.NONE, 1, 2),
        run_case("DRAIN, shared VN", topo, Scheme.DRAIN, 1, 2),
        run_case("DRAIN, shared VN, 1 VC", topo, Scheme.DRAIN, 1, 1),
        run_case("escape VC + 3 VNs", topo, Scheme.ESCAPE_VC, 3, 2),
        run_case("SPIN + 3 VNs", topo, Scheme.SPIN, 3, 2),
    ]
    print(
        format_table(
            rows,
            columns=("configuration", "vns", "completed", "quota",
                     "cycles", "wedged", "avg_latency"),
            title="Coherence workload on a faulty 4x4 mesh",
        )
    )
    print(
        "\nWithout protection the shared virtual network wedges part-way "
        "through. DRAIN finishes the full quota on the same single VN — "
        "including with a single VC — which is what lets it drop two of "
        "the three virtual networks the baselines must provision."
    )


if __name__ == "__main__":
    main()
