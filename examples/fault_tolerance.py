#!/usr/bin/env python3
"""Fault tolerance: DRAIN on progressively more damaged topologies.

For each fault count the offline algorithm recomputes a drain path for the
surviving topology (exactly what the paper proposes on a link failure or
reboot), and the network keeps running with fully adaptive routing — no
routing restrictions, no extra virtual networks.

Run:  python examples/fault_tolerance.py
"""

import random

from repro import (
    DrainConfig,
    NetworkConfig,
    Scheme,
    SimConfig,
    Simulation,
    find_drain_path,
    inject_link_faults,
    make_mesh,
)
from repro.experiments.common import format_table
from repro.routing.updown import UpDownRouting
from repro.network.index import FabricIndex
from repro.traffic import SyntheticTraffic, UniformRandom


def main() -> None:
    base = make_mesh(8, 8)
    rows = []
    for faults in (0, 1, 4, 8, 12):
        topo = (
            inject_link_faults(base, faults, random.Random(faults + 100))
            if faults
            else base
        )
        # The offline algorithm (Section III-B): one cycle over all links.
        path = find_drain_path(topo)
        updown = UpDownRouting(FabricIndex(topo))

        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=2048),
        )
        traffic = SyntheticTraffic(
            UniformRandom(topo.num_nodes, 8), 0.05, random.Random(7)
        )
        sim = Simulation(topo, config, traffic, drain_path=path)
        stats = sim.run(5_000, warmup=1_000)
        rows.append(
            {
                "faults": faults,
                "links_left": topo.num_edges,
                "drain_path_len": len(path),
                "diameter": topo.diameter(),
                "avg_latency": stats.avg_latency,
                "throughput": sim.throughput(),
                "updown_detour": updown.non_minimality(),
            }
        )
    print(
        format_table(
            rows,
            columns=(
                "faults", "links_left", "drain_path_len", "diameter",
                "avg_latency", "throughput", "updown_detour",
            ),
            title="DRAIN across random link-fault patterns (8x8 mesh, UR @ 0.05)",
        )
    )
    print(
        "\nThe drain path always covers every surviving link "
        "(length = 2 x links_left), while the up*/down* alternative would "
        "stretch routes by the detour factor in the last column."
    )


if __name__ == "__main__":
    main()
