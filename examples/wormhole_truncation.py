#!/usr/bin/env python3
"""Wormhole flow control with DRAIN packet truncation (Section III-C3).

Multi-flit packets snake across several routers at once; when a drain
window fires mid-flight, the forced turns split packets into independent
segments that are re-tagged (truncation) and reassembled at the
destination MSHRs. This demo runs an aggressive drain epoch so truncation
is frequent, and shows that delivery stays exactly-once and complete.

Run:  python examples/wormhole_truncation.py
"""

import random

from repro import (
    DrainConfig,
    NetworkConfig,
    Scheme,
    SimConfig,
    Simulation,
    make_mesh,
)
from repro.experiments.common import format_table
from repro.traffic import SyntheticTraffic, UniformRandom


def main() -> None:
    topo = make_mesh(8, 8)
    rows = []
    for label, flits, epoch in (
        ("VCT single-flit (paper config)", 1, 512),
        ("wormhole, 4-flit packets", 4, 512),
        ("wormhole, 4-flit, drain 8x more", 4, 64),
        ("wormhole, 8-flit packets", 8, 512),
    ):
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=epoch),
        )
        traffic = SyntheticTraffic(UniformRandom(64), 0.03, random.Random(5))
        sim = Simulation(
            topo, config, traffic,
            flow_control="wormhole" if flits > 1 else "vct",
            flits_per_packet=flits,
        )
        stats = sim.run(6_000, warmup=1_000)
        rows.append(
            {
                "configuration": label,
                "delivered": stats.packets_ejected,
                "generated": traffic.generated,
                "avg_latency": stats.avg_latency,
                "drains": stats.drain_windows,
                "misroutes": stats.misroutes,
            }
        )
    print(
        format_table(
            rows,
            columns=("configuration", "delivered", "generated",
                     "avg_latency", "drains", "misroutes"),
            title="DRAIN under flit-based flow control (8x8 mesh, UR @ 0.03)",
        )
    )
    print(
        "\nEvery flit of every truncated packet arrives exactly once (the "
        "fabric asserts it); draining 8x more often only adds misroutes — "
        "correctness is untouched."
    )


if __name__ == "__main__":
    main()
