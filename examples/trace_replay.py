#!/usr/bin/env python3
"""Trace record/replay: identical offered load across schemes.

Synthesises a uniform-random injection trace offline, saves it to disk,
then replays the *same* packet stream against DRAIN, the escape-VC
baseline and SPIN — the apples-to-apples methodology behind the paper's
scheme comparisons.

Run:  python examples/trace_replay.py
"""

import random
import tempfile
from pathlib import Path

from repro import (
    DrainConfig,
    NetworkConfig,
    Scheme,
    SimConfig,
    Simulation,
    inject_link_faults,
    make_mesh,
)
from repro.experiments.common import format_table
from repro.traffic import (
    TraceTraffic,
    UniformRandom,
    load_trace,
    record_synthetic,
    save_trace,
)


def main() -> None:
    topo = inject_link_faults(make_mesh(8, 8), 8, random.Random(17))
    records = record_synthetic(UniformRandom(64), 0.06, cycles=2_000, seed=9)
    trace_path = Path(tempfile.gettempdir()) / "drain_demo_trace.txt"
    save_trace(records, trace_path)
    print(f"Synthesised {len(records)} packets -> {trace_path}")

    rows = []
    for scheme in (Scheme.ESCAPE_VC, Scheme.SPIN, Scheme.DRAIN):
        config = SimConfig(
            scheme=scheme,
            network=NetworkConfig(
                num_vns=1 if scheme is Scheme.DRAIN else 3, vcs_per_vn=2
            ),
            drain=DrainConfig(epoch=2048),
        )
        traffic = TraceTraffic(load_trace(trace_path), 64)
        sim = Simulation(topo, config, traffic)
        stats = sim.run(20_000)
        rows.append(
            {
                "scheme": scheme.value,
                "delivered": stats.packets_ejected,
                "of": len(records),
                "avg_latency": stats.avg_latency,
                "p99": stats.p99_latency,
                "finish_cycle": stats.cycles,
            }
        )
    print()
    print(
        format_table(
            rows,
            columns=("scheme", "delivered", "of", "avg_latency", "p99",
                     "finish_cycle"),
            title=f"Replaying the identical trace on {topo.name}",
        )
    )
    print("\nSame packets, same cycles offered — any difference is the scheme.")


if __name__ == "__main__":
    main()
