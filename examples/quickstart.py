#!/usr/bin/env python3
"""Quickstart: run DRAIN and both baselines on an 8x8 mesh.

Builds the paper's default configurations (Table II), runs uniform-random
traffic at a moderate load, and prints the headline metrics side by side.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    DrainConfig,
    NetworkConfig,
    Scheme,
    SimConfig,
    Simulation,
    make_mesh,
)
from repro.experiments.common import format_table
from repro.traffic import SyntheticTraffic, UniformRandom


def build_config(scheme: Scheme) -> SimConfig:
    """Paper defaults: DRAIN runs a single virtual network; the proactive
    (escape VC) and reactive (SPIN) baselines need three."""
    num_vns = 1 if scheme is Scheme.DRAIN else 3
    return SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=num_vns, vcs_per_vn=2),
        drain=DrainConfig(epoch=2048),  # scaled stand-in for 64K epochs
    )


def main() -> None:
    topology = make_mesh(8, 8)
    print(f"Topology: {topology}")
    rows = []
    for scheme in (Scheme.ESCAPE_VC, Scheme.SPIN, Scheme.DRAIN):
        traffic = SyntheticTraffic(
            UniformRandom(topology.num_nodes, mesh_width=8),
            injection_rate=0.08,
            rng=random.Random(42),
        )
        sim = Simulation(topology, build_config(scheme), traffic)
        stats = sim.run(cycles=6_000, warmup=1_000)
        rows.append(
            {
                "scheme": scheme.value,
                "vns": sim.config.network.num_vns,
                "avg_latency": stats.avg_latency,
                "p99_latency": stats.p99_latency,
                "throughput": sim.throughput(),
                "avg_hops": stats.hops.mean,
                "drain_windows": stats.drain_windows,
                "probes": stats.probes_sent,
            }
        )
    print()
    print(
        format_table(
            rows,
            columns=(
                "scheme", "vns", "avg_latency", "p99_latency",
                "throughput", "avg_hops", "drain_windows", "probes",
            ),
            title="Uniform random @ 0.08 packets/node/cycle, 8x8 mesh",
        )
    )
    print(
        "\nDRAIN matches SPIN's latency/throughput while using one third "
        "of the virtual networks — the paper's headline trade-off."
    )


if __name__ == "__main__":
    main()
