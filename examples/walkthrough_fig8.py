#!/usr/bin/env python3
"""Walk-through of DRAIN removing a deadlock (the paper's Figure 8).

A 4x2 mesh loses one link to a fault. We plant a cyclic routing deadlock
by hand, print the wait-for situation, then step the drain controller and
watch every drained packet move one hop along the precomputed drain path —
misrouting some packets, freeing all of them.

Run:  python examples/walkthrough_fig8.py
"""

import random

from repro import DrainConfig, NetworkConfig, Scheme, SimConfig, make_mesh
from repro.drain.controller import DrainController
from repro.network.deadlock import find_deadlocked_slots
from repro.network.fabric import Fabric
from repro.network.index import FabricIndex
from repro.router.packet import MessageClass, Packet
from repro.routing.adaptive import AdaptiveMinimalRouting


def build_wedged_network():
    """Faulty 4x2 mesh with a planted cyclic deadlock on ring 0-1-5-4."""
    topo = make_mesh(4, 2)
    topo.remove_edge(2, 6)  # the paper's "x" — a failed vertical link
    assert topo.is_connected()

    index = FabricIndex(topo)
    config = SimConfig(
        scheme=Scheme.DRAIN,
        network=NetworkConfig(num_vns=1, vcs_per_vn=1),
        drain=DrainConfig(epoch=100, pre_drain_window=2, drain_window=2),
    )
    fabric = Fabric(index, config, AdaptiveMinimalRouting(index),
                    escape_mode="drain", rng=random.Random(1))
    controller = DrainController(fabric, config.drain)

    # Fill the cycle 0 -> 1 -> 5 -> 4 -> 0 and its reverse with packets
    # whose minimal routes keep them inside the ring: a classic wedge.
    ring = [0, 1, 5, 4]
    pid = 0
    for nodes in (ring, ring[::-1]):
        for i, src in enumerate(nodes):
            nxt = nodes[(i + 1) % 4]
            link = next(
                l for l in topo.links_out_of(src) if l.dst == nxt
            )
            dst = nodes[(i + 3) % 4]  # two hops onward around the ring
            packet = Packet(pid, src, dst, MessageClass.REQ)
            packet.blocked_since = 0
            fabric.buf[index.link_id[link]][0][0] = packet
            fabric.packets_in_network += 1
            pid += 1
    return topo, fabric, controller


def show_state(fabric, title):
    print(f"--- {title}")
    for port, _vn, _vc, packet in sorted(fabric.occupied_slots()):
        link = fabric.index.links[port] if port < fabric.index.num_links else None
        where = f"link {link}" if link else f"inj@{port - fabric.index.num_links}"
        print(
            f"  packet {packet.pid}: at {where:>12s}, dst={packet.dst}, "
            f"hops={packet.hops}, misroutes={packet.misroutes}"
        )
    deadlocked = find_deadlocked_slots(fabric)
    print(f"  => deadlocked buffer slots: {len(deadlocked)}")
    return deadlocked


def main() -> None:
    topo, fabric, controller = build_wedged_network()
    print(f"Topology: {topo} (link 2-6 failed)")
    from repro.viz import render_mesh

    print(render_mesh(topo))
    print(f"\nDrain path covers {len(controller.path)} unidirectional links\n")

    deadlocked = show_state(fabric, "before draining")
    assert deadlocked, "the planted wedge should be a real deadlock"

    drains = 0
    while find_deadlocked_slots(fabric):
        fabric.frozen = True
        controller._rotate_once()  # one drain window's forced movement
        drains += 1
        fabric.frozen = False
        print(f"\n=== drain window {drains}: every escape-VC packet moved one hop")
        show_state(fabric, f"after drain {drains}")
        # Let normal (fully adaptive) routing run between windows.
        for _ in range(20):
            fabric.step()
            for node in topo.nodes:
                for cls in MessageClass:
                    while fabric.peek_ejection(node, cls):
                        fabric.pop_ejection(node, cls)
        if drains > 10:
            raise RuntimeError("walkthrough did not converge")

    print(f"\nDeadlock fully removed after {drains} drain window(s); "
          f"{fabric.stats.packets_ejected} packets delivered, "
          f"{fabric.stats.misroutes} misroutes incurred.")


if __name__ == "__main__":
    main()
