"""Lossless (PFC) flow control: pause storms, CBD deadlock, DRAIN rescue.

Three scenarios on the same 8-leaf / 4-spine leaf-spine fabric with an
east-west leaf ring (one uplink per leaf, so every minimal route of a
``leaf i -> leaf i+2`` flow lies on the ring):

1. **Congestion without deadlock** — generous pause hysteresis at modest
   load: XOFF/XON cycles ripple through the ring but every packet is
   delivered. PFC doing its job.
2. **Cyclic buffer dependency (CBD) deadlock** — strict hysteresis
   (resume only on empty) past saturation: every ring buffer pauses its
   upstream neighbour and the wait-for graph closes into a cycle no
   threshold tuning can break. The watchdog halts the run and names the
   exact buffer cycle.
3. **DRAIN rescue** — same deadlock-prone configuration under
   ``scheme=DRAIN`` with the staged degradation ladder: forced drain
   epochs move the escape channel regardless of pause state and every
   packet is delivered with zero losses.

Run with: ``PYTHONPATH=src python examples/lossless_pfc.py``
"""

import random

from repro.core.config import (
    DrainConfig,
    NetworkConfig,
    PfcConfig,
    Scheme,
    SimConfig,
)
from repro.core.simulator import Simulation
from repro.topology import make_leaf_spine
from repro.traffic import Flow, FlowTraffic


def build(scheme, pause, resume, rate, packets, seed=7):
    topo = make_leaf_spine(8, 4, uplinks=1, east_west=True)
    config = SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=1, vcs_per_vn=4),
        drain=DrainConfig(epoch=2048),
        flow_control="pause_resume",
        pfc=PfcConfig(pause_threshold=pause, resume_threshold=resume,
                      headroom=1),
    )
    flows = [Flow(i, (i + 2) % 8, rate, packets=packets) for i in range(8)]
    traffic = FlowTraffic(flows, random.Random(seed))
    return topo, config, traffic


def scenario_congestion():
    print("=== 1. pauses without deadlock (pause=3, resume=2, rate=0.3) ===")
    topo, config, traffic = build(Scheme.NONE, 3, 2, 0.3, packets=100)
    sim = Simulation(topo, config, traffic, halt_on_deadlock=True)
    sim.run(cycles=20_000)
    pfc = sim.fabric.pfc_summary()
    print(f"delivered {traffic.delivered}/{traffic.generated} packets "
          f"in {sim.fabric.cycle} cycles")
    print(f"pauses asserted: {pfc['pauses_asserted']}, "
          f"resumes: {pfc['resumes']}, stalls: {pfc['pause_stalls']}")
    assert not sim.deadlocked and traffic.done()


def scenario_deadlock():
    print()
    print("=== 2. CBD deadlock (pause=2, resume=0, rate=0.9) ===")
    topo, config, traffic = build(Scheme.NONE, 2, 0, 0.9, packets=None)
    sim = Simulation(topo, config, traffic, halt_on_deadlock=True)
    sim.run(cycles=20_000)
    assert sim.deadlocked, "expected the ring CBD to wedge the fabric"
    payload = sim.watchdog.cycle_payload
    print(f"deadlock confirmed at cycle {sim.fabric.cycle}: "
          f"buffer cycle of {payload['length']} slot(s)")
    print("wait-for cycle (router <- holding packet):")
    for hop in payload["cycle"]:
        pkt = hop["packet"]
        print(f"  router {hop['router']:>2} port {hop['port']:>2} "
              f"vc {hop['vc']}: packet {pkt['pid']} "
              f"{pkt['src']} -> {pkt['dst']}")
    print("All buffers in the cycle sit at or above the PFC pause "
          "threshold and every next hop is paused: no threshold tuning "
          "can make progress here.")


def scenario_drain_rescue():
    print()
    print("=== 3. DRAIN rescue (same fabric, scheme=DRAIN + ladder) ===")
    topo, config, traffic = build(Scheme.DRAIN, 2, 0, 0.9, packets=100)
    sim = Simulation(topo, config, traffic, degradation_ladder=True)
    sim.run(cycles=120_000)
    ladder = sim.degradation_ladder.summary()
    print(f"delivered {traffic.delivered}/{traffic.generated} packets "
          f"in {sim.fabric.cycle} cycles")
    print(f"ladder: {ladder['detections']} detection(s), "
          f"{ladder['forced_drains']} forced drain(s), "
          f"{ladder['cycle_drops']} drop escalation(s), "
          f"{ladder['packets_lost_forever']} packets lost forever")
    assert traffic.done() and ladder["packets_lost_forever"] == 0
    print("Deadlock removed without dropping a single packet.")


if __name__ == "__main__":
    scenario_congestion()
    scenario_deadlock()
    scenario_drain_rescue()
