#!/usr/bin/env python3
"""Chiplet composition demo (Section VI: Heterogeneous Systems).

Four independently designed 2x2 mesh chiplets are composed over an
interposer. The composition is not deadlock-free even though each part is,
so conventional designs add boundary turn restrictions; DRAIN instead
computes one drain path over the whole composed network and keeps routing
fully adaptive.

Run:  python examples/chiplet_interposer.py
"""

import random

from repro import (
    DrainConfig,
    NetworkConfig,
    Scheme,
    SimConfig,
    Simulation,
    find_drain_path,
)
from repro.experiments.common import format_table
from repro.topology import make_chiplet_system
from repro.traffic import SyntheticTraffic, UniformRandom


def main() -> None:
    system = make_chiplet_system(
        chiplet_width=2, chiplet_height=2, num_chiplets=6,
        interposer_width=3, links_per_chiplet=2,
    )
    topo = system.topology
    print(f"System: {system}")
    print(f"Composed topology: {topo}")

    path = find_drain_path(topo)
    boundary_hops = sum(
        1 for link in path.links
        if system.is_boundary_link(link.src, link.dst)
    )
    print(
        f"Drain path: {len(path)} links, crossing chiplet boundaries "
        f"{boundary_hops} times (each vertical link, both directions)."
    )

    rows = []
    for scheme in (Scheme.UPDOWN, Scheme.DRAIN):
        config = SimConfig(
            scheme=scheme,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=1024),
        )
        traffic = SyntheticTraffic(
            UniformRandom(topo.num_nodes), 0.05, random.Random(9)
        )
        sim = Simulation(topo, config, traffic,
                         drain_path=path if scheme is Scheme.DRAIN else None)
        stats = sim.run(5_000, warmup=1_000)
        rows.append(
            {
                "scheme": "up*/down* (boundary restrictions)"
                if scheme is Scheme.UPDOWN else "DRAIN (fully adaptive)",
                "avg_latency": stats.avg_latency,
                "avg_hops": stats.hops.mean,
                "throughput": sim.throughput(),
            }
        )
    print()
    print(
        format_table(
            rows,
            columns=("scheme", "avg_latency", "avg_hops", "throughput"),
            title="Uniform random @ 0.05 on the composed chiplet system",
        )
    )
    print(
        "\nDRAIN keeps routing minimal and fully adaptive across chiplet "
        "boundaries with no composition-time deadlock analysis at all: the "
        "one drain path over the composed network is the entire correctness "
        "argument. The up*/down* alternative must funnel some traffic "
        "through its spanning tree (higher hop count as the composition "
        "gets richer) and must be re-verified for every new composition."
    )


if __name__ == "__main__":
    main()
