"""Tests for the Static-Bubble-style reactive baseline."""

import random

from repro.core.config import NetworkConfig, Scheme, SimConfig, SpinConfig
from repro.core.simulator import Simulation
from repro.network.deadlock import find_deadlocked_slots
from repro.network.staticbubble import StaticBubbleController
from repro.traffic.synthetic import SyntheticTraffic, UniformRandom
from repro.topology.mesh import make_mesh, make_ring

from tests.test_spin import wedged_spin_setup


def bubble_sim(topo, rate, timeout=64, vcs=1, seed=3):
    from dataclasses import replace

    config = replace(
        SimConfig(
            scheme=Scheme.STATIC_BUBBLE,
            network=NetworkConfig(num_vns=1, vcs_per_vn=vcs),
        ),
        spin=SpinConfig(timeout=timeout),
    )
    traffic = SyntheticTraffic(
        UniformRandom(topo.num_nodes), rate, random.Random(seed)
    )
    return Simulation(topo, config, traffic), traffic


class TestStaticBubble:
    def test_resolves_planted_wedge(self):
        fabric, _spin = wedged_spin_setup(timeout=8)
        controller = StaticBubbleController(
            fabric, SpinConfig(timeout=8), check_interval=4
        )
        from repro.router.packet import MessageClass

        for _ in range(500):
            controller.step()
            fabric.step()
            for node in range(4):
                for cls in MessageClass:
                    while fabric.peek_ejection(node, cls):
                        fabric.pop_ejection(node, cls)
            if (
                fabric.count_packets() == 0
                and controller.occupied_bubbles() == 0
            ):
                break
        assert fabric.stats.packets_ejected == 8
        assert controller.activations >= 1
        assert not find_deadlocked_slots(fabric)

    def test_sustained_load_keeps_flowing(self):
        sim, traffic = bubble_sim(make_mesh(4, 4), 0.25, timeout=48)
        stats = sim.run(4000, warmup=500)
        assert sim.bubble_controller.activations > 0
        assert stats.packets_ejected > 1500

    def test_healthy_network_never_activates(self):
        sim, traffic = bubble_sim(make_mesh(4, 4), 0.03, timeout=64, vcs=2)
        sim.run(2000)
        assert sim.bubble_controller.activations == 0

    def test_bubble_packets_reach_destination(self):
        sim, traffic = bubble_sim(make_mesh(4, 4), 0.25, timeout=48)
        sim.run(4000, warmup=500)
        assert sim.bubble_controller.activations > 0
        # No packet may be stranded in a bubble forever once load stops:
        # cut injection, clear the source backlog, and drain out.
        traffic.injection_rate = 0.0
        for node in range(16):
            traffic._backlog[node].clear()
        for _ in range(8000):
            sim.step()
        assert sim.bubble_controller.occupied_bubbles() == 0
        assert sim.fabric.packets_in_network == 0
