"""Unit + property tests for drain-path construction (the offline algorithm)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drain.path import (
    DrainPath,
    euler_drain_path,
    find_drain_path,
    hawick_james_drain_path,
)
from repro.topology.graph import Link, Topology
from repro.topology.irregular import inject_link_faults, random_connected_topology
from repro.topology.mesh import make_mesh, make_ring, make_torus


def assert_valid_drain_path(path: DrainPath, topology: Topology) -> None:
    """All Section III-B invariants, asserted explicitly."""
    expected = set(topology.unidirectional_links())
    assert set(path.links) == expected
    assert len(path.links) == len(expected)  # each link exactly once
    n = len(path.links)
    for i, link in enumerate(path.links):
        assert link.dst == path.links[(i + 1) % n].src


class TestEulerDrainPath:
    @pytest.mark.parametrize(
        "topology",
        [
            make_mesh(2, 2),
            make_mesh(4, 4),
            make_mesh(8, 8),
            make_mesh(3, 5),
            make_torus(4, 4),
            make_ring(7),
            Topology(3, [(0, 1), (1, 2)]),  # chain forces U-turns
        ],
        ids=lambda t: t.name,
    )
    def test_covers_every_topology(self, topology):
        path = euler_drain_path(topology)
        assert_valid_drain_path(path, topology)

    def test_faulty_mesh(self):
        topo = inject_link_faults(make_mesh(8, 8), 12, random.Random(5))
        assert_valid_drain_path(euler_drain_path(topo), topo)

    def test_path_length_equals_link_count(self):
        topo = make_mesh(4, 4)
        path = euler_drain_path(topo)
        assert len(path) == 2 * topo.num_edges == 48

    def test_visits_all_routers(self):
        topo = make_mesh(4, 4)
        path = euler_drain_path(topo)
        assert set(path.routers_visited()) == set(topo.nodes)

    def test_next_link_connects(self):
        topo = make_mesh(3, 3)
        path = euler_drain_path(topo)
        for link in path.links:
            assert path.next_link(link).src == link.dst

    def test_position_is_cycle_index(self):
        path = euler_drain_path(make_ring(4))
        for i, link in enumerate(path.links):
            assert path.position(link) == i

    def test_contains(self):
        topo = make_mesh(2, 2)
        path = euler_drain_path(topo)
        for link in topo.unidirectional_links():
            assert link in path

    def test_disconnected_rejected(self):
        topo = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            euler_drain_path(topo)

    def test_rng_variants_are_valid_and_differ(self):
        topo = make_mesh(4, 4)
        paths = [
            euler_drain_path(topo, rng=random.Random(seed)) for seed in range(4)
        ]
        for path in paths:
            assert_valid_drain_path(path, topo)
        assert len({tuple(p.links) for p in paths}) > 1

    @given(
        st.integers(min_value=2, max_value=14),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_random_topologies(self, nodes, extra, seed):
        topo = random_connected_topology(nodes, extra, random.Random(seed))
        assert_valid_drain_path(euler_drain_path(topo), topo)


class TestHawickJamesDrainPath:
    @pytest.mark.parametrize(
        "topology",
        [Topology(2, [(0, 1)]), Topology(3, [(0, 1), (1, 2)]), make_ring(3)],
        ids=["pair", "chain3", "ring3"],
    )
    def test_small_topologies(self, topology):
        path = hawick_james_drain_path(topology)
        assert_valid_drain_path(path, topology)

    def test_agrees_with_euler_on_coverage(self):
        topo = make_ring(4)
        hj = hawick_james_drain_path(topo)
        eu = euler_drain_path(topo)
        assert set(hj.links) == set(eu.links)

    def test_max_circuits_exhaustion_raises(self):
        topo = make_ring(4)
        with pytest.raises(ValueError):
            hawick_james_drain_path(topo, max_circuits=1)


def _sweep_cases():
    """~20 seeded faulty topologies across mesh/torus/ring shapes.

    Sizes stay at or below a 4x4 mesh so the exhaustive Hawick-James
    circuit enumeration finishes quickly.
    """
    grid = [
        ("mesh3x3", lambda: make_mesh(3, 3), (0, 1, 2)),
        ("mesh4x4", lambda: make_mesh(4, 4), (0, 2, 3)),
        ("mesh3x4", lambda: make_mesh(3, 4), (1, 2)),
        ("torus3x3", lambda: make_torus(3, 3), (0, 2, 4)),
        ("ring6", lambda: make_ring(6), (0, 1)),
        ("ring8", lambda: make_ring(8), (0, 1)),
    ]
    cases = []
    for name, builder, fault_counts in grid:
        for faults in fault_counts:
            seed = 1000 + 13 * len(cases)
            cases.append(
                pytest.param(builder, faults, seed, id=f"{name}-f{faults}-s{seed}")
            )
    return cases


class TestEngineAgreementSweep:
    """Both drain-path engines must solve the same random faulty fabrics.

    For every seeded topology each engine must emit a single elementary
    cycle covering every unidirectional link, and the two engines must
    agree exactly on which links that is (i.e. on link coverage — the
    visit order may legitimately differ).
    """

    @pytest.mark.parametrize("builder,faults,seed", _sweep_cases())
    def test_both_engines_valid_and_agree(self, builder, faults, seed):
        base = builder()
        topology = (
            inject_link_faults(base, faults, random.Random(seed))
            if faults else base
        )
        euler = euler_drain_path(topology)
        hawick = hawick_james_drain_path(topology)
        assert_valid_drain_path(euler, topology)
        assert_valid_drain_path(hawick, topology)
        assert set(euler.links) == set(hawick.links) == set(
            topology.unidirectional_links()
        )
        # Single elementary cycle, not a union of sub-cycles: walking the
        # sequence from the start must traverse every link before closing.
        assert len(euler.links) == len(set(euler.links))
        assert len(hawick.links) == len(set(hawick.links))


class TestFindDrainPath:
    def test_default_is_euler(self):
        topo = make_mesh(3, 3)
        assert_valid_drain_path(find_drain_path(topo), topo)

    def test_hawick_james_selectable(self):
        topo = make_ring(3)
        assert_valid_drain_path(find_drain_path(topo, method="hawick-james"), topo)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            find_drain_path(make_ring(3), method="magic")


class TestDrainPathValidation:
    def test_missing_link_rejected(self):
        topo = make_ring(3)
        path = euler_drain_path(topo)
        with pytest.raises(ValueError):
            DrainPath(topo, path.links[:-1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DrainPath(make_ring(3), [])

    def test_disconnected_sequence_rejected(self):
        topo = make_ring(3)
        good = euler_drain_path(topo).links
        # Swap two entries to break consecutive connectivity.
        bad = list(good)
        bad[0], bad[2] = bad[2], bad[0]
        with pytest.raises(ValueError):
            DrainPath(topo, bad)

    def test_foreign_link_rejected(self):
        topo = make_ring(3)
        links = euler_drain_path(topo).links[:-1] + [Link(0, 2)]
        with pytest.raises(ValueError):
            DrainPath(make_ring(4), links)
