"""Extended property-based suites: wormhole flit conservation, coherence
bookkeeping invariants, config round-trips."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    DrainConfig,
    NetworkConfig,
    ProtocolConfig,
    Scheme,
    SimConfig,
    SpinConfig,
)
from repro.core.configio import config_from_dict, config_to_dict
from repro.core.simulator import Simulation
from repro.protocol.coherence import CoherenceTraffic
from repro.protocol.moesi import MoesiTraffic
from repro.topology.mesh import make_mesh
from repro.traffic.synthetic import SyntheticTraffic, UniformRandom


@given(
    st.integers(min_value=1, max_value=6),  # flits per packet
    st.integers(min_value=1, max_value=3),  # vcs per vn
    st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=15, deadline=None)
def test_wormhole_flit_conservation(flits, vcs, seed):
    """injected*flits == buffered + reassembling + delivered*flits, always."""
    topo = make_mesh(4, 4)
    config = SimConfig(
        scheme=Scheme.DRAIN,
        network=NetworkConfig(num_vns=1, vcs_per_vn=vcs),
        drain=DrainConfig(epoch=97),
        seed=seed,
    )
    traffic = SyntheticTraffic(UniformRandom(16), 0.15, random.Random(seed))
    sim = Simulation(topo, config, traffic, flow_control="wormhole",
                     flits_per_packet=flits)
    fabric = sim.fabric
    for _ in range(250):
        sim.step()
        reassembling = sum(len(v) for v in fabric._reassembly.values())
        buffered = fabric.count_flits()
        assert (
            sim.stats.packets_injected * flits
            == buffered + reassembling + sim.stats.packets_ejected * flits
        )


@given(
    st.floats(min_value=0.01, max_value=0.3),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=15, deadline=None)
def test_coherence_bookkeeping_invariants(issue, fwd, seed):
    """issued == completed + in-flight; outstanding within MSHR bounds."""
    topo = make_mesh(4, 4)
    config = SimConfig(
        scheme=Scheme.ESCAPE_VC,
        network=NetworkConfig(num_vns=3, vcs_per_vn=2),
        seed=seed,
    )
    traffic = CoherenceTraffic(
        16, ProtocolConfig(mshrs_per_node=6, forward_probability=fwd),
        issue, random.Random(seed),
    )
    sim = Simulation(topo, config, traffic)
    for _ in range(400):
        sim.step()
        assert traffic.issued == traffic.completed + traffic.in_flight()
        assert sum(traffic.outstanding) == traffic.in_flight()
        assert all(0 <= o <= 6 for o in traffic.outstanding)


@given(
    st.floats(min_value=0.02, max_value=0.3),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=10, deadline=None)
def test_moesi_bookkeeping_invariants(issue, wb, seed):
    topo = make_mesh(4, 4)
    config = SimConfig(
        scheme=Scheme.ESCAPE_VC,
        network=NetworkConfig(num_vns=6, vcs_per_vn=2),
        seed=seed,
    )
    traffic = MoesiTraffic(
        16, ProtocolConfig(mshrs_per_node=6), issue, random.Random(seed),
        writeback_fraction=wb,
    )
    sim = Simulation(topo, config, traffic)
    for _ in range(400):
        sim.step()
        assert traffic.issued >= traffic.completed
        assert all(0 <= o <= 6 for o in traffic.outstanding)


@given(
    st.sampled_from(list(Scheme)),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=10**6),
    st.booleans(),
    st.integers(min_value=1, max_value=10**5),
)
@settings(max_examples=40, deadline=None)
def test_config_roundtrip_fuzz(scheme, vns, vcs, epoch, sticky, timeout):
    config = SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=vns, vcs_per_vn=vcs),
        drain=DrainConfig(epoch=epoch, escape_sticky=sticky),
        spin=SpinConfig(timeout=timeout),
    )
    assert config_from_dict(config_to_dict(config)) == config
