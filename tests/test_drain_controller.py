"""Unit tests for the DRAIN runtime controller (epoch, freeze, rotation)."""

import random

import pytest

from repro.core.config import DrainConfig, NetworkConfig, Scheme, SimConfig
from repro.drain.controller import DrainController
from repro.drain.path import euler_drain_path
from repro.network.fabric import Fabric
from repro.network.index import FabricIndex
from repro.router.packet import MessageClass, Packet
from repro.routing.adaptive import AdaptiveMinimalRouting
from repro.topology.mesh import make_mesh, make_ring


def drain_setup(topo=None, epoch=50, pre=2, window=3, full_period=1000, vns=1, vcs=2):
    topo = topo if topo is not None else make_mesh(4, 4)
    index = FabricIndex(topo)
    config = SimConfig(
        scheme=Scheme.DRAIN,
        network=NetworkConfig(num_vns=vns, vcs_per_vn=vcs),
        drain=DrainConfig(
            epoch=epoch,
            pre_drain_window=pre,
            drain_window=window,
            full_drain_period=full_period,
        ),
    )
    fabric = Fabric(
        index, config, AdaptiveMinimalRouting(index),
        escape_mode="drain", rng=random.Random(1),
    )
    controller = DrainController(fabric, config.drain)
    return fabric, controller


def tick(fabric, controller):
    controller.step()
    fabric.step()


class TestEpochTiming:
    def test_no_drain_before_epoch_expires(self):
        fabric, controller = drain_setup(epoch=50)
        for _ in range(49):
            tick(fabric, controller)
        assert fabric.stats.drain_windows == 0
        assert controller.state in ("normal", "pre_drain")

    def test_drain_window_fires_each_epoch(self):
        fabric, controller = drain_setup(epoch=20, pre=2, window=3)
        for _ in range(3 * (20 + 2 + 3) + 5):
            tick(fabric, controller)
        assert fabric.stats.drain_windows == 3

    def test_freeze_during_pre_drain_and_drain(self):
        fabric, controller = drain_setup(epoch=10, pre=2, window=3)
        states = []
        for _ in range(40):
            tick(fabric, controller)
            states.append((controller.state, fabric.frozen))
        for state, frozen in states:
            if state in ("pre_drain", "drain", "full_drain"):
                assert frozen
            if state == "normal":
                assert not frozen

    def test_zero_pre_drain_window_allowed(self):
        fabric, controller = drain_setup(epoch=10, pre=0, window=2)
        for _ in range(30):
            tick(fabric, controller)
        assert fabric.stats.drain_windows >= 2


class TestRotation:
    def test_rotation_moves_escape_packets_one_hop(self):
        fabric, controller = drain_setup(epoch=5, pre=1, window=2)
        path = controller.path
        # Plant one packet in the escape VC of the first path link.
        first_port = controller.path_ports[0]
        dst = (fabric.index.link_dst[first_port] + 2) % 16
        if dst == fabric.index.link_dst[first_port]:
            dst = (dst + 1) % 16
        packet = Packet(0, 0, dst, MessageClass.REQ)
        packet.gen_cycle = 0
        fabric.buf[first_port][0][0] = packet
        fabric.packets_in_network += 1
        fabric.frozen = True  # isolate the drain from normal movement
        controller._rotate_once()
        second_port = controller.path_ports[1]
        assert fabric.buf[second_port][0][0] is packet
        assert packet.hops == 1
        assert packet.drain_moves == 1
        assert path.next_link(path.links[0]) == path.links[1]

    def test_rotation_preserves_all_packets(self):
        fabric, controller = drain_setup(epoch=1000)
        rng = random.Random(3)
        planted = 0
        for port in controller.path_ports:
            if rng.random() < 0.5:
                dst = rng.randrange(16)
                router = fabric.index.link_dst[port]
                if dst == router:
                    dst = (dst + 1) % 16
                fabric.buf[port][0][0] = Packet(planted, router, dst)
                fabric.packets_in_network += 1
                planted += 1
        # Fill ejection queues so no packet can leave during the rotation.
        for node in range(16):
            for _ in range(fabric._ej_depth):
                fabric.ej_queues[node][MessageClass.REQ].append(
                    Packet(900 + node, (node + 1) % 16, node)
                )
        controller._rotate_once()
        assert fabric.count_packets() == planted
        assert fabric.stats.drained_packets == planted

    def test_rotation_ejects_at_destination(self):
        fabric, controller = drain_setup(epoch=1000)
        port0 = controller.path_ports[0]
        port1 = controller.path_ports[1]
        dest_router = fabric.index.link_dst[port1]
        src = (dest_router + 1) % 16
        packet = Packet(0, src, dest_router)
        fabric.buf[port0][0][0] = packet
        fabric.packets_in_network += 1
        controller._rotate_once()
        assert packet.eject_cycle is not None
        assert fabric.peek_ejection(dest_router, MessageClass.REQ) is packet

    def test_rotation_counts_misroutes(self):
        fabric, controller = drain_setup(epoch=1000)
        index = fabric.index
        # Find a path position whose next hop moves AWAY from some dst.
        for i, port in enumerate(controller.path_ports):
            nxt = controller.path_ports[(i + 1) % len(controller.path_ports)]
            here = index.link_dst[port]
            there = index.link_dst[nxt]
            for dst in range(16):
                if dst != here and index.dist[there][dst] > index.dist[here][dst]:
                    packet = Packet(0, (dst + 1) % 16 if (dst + 1) % 16 != dst else dst - 1, dst)
                    fabric.buf[port][0][0] = packet
                    fabric.packets_in_network += 1
                    controller._rotate_once()
                    assert packet.misroutes == 1
                    return
        pytest.fail("no misrouting position found on the drain path")

    def test_multi_vn_drain_rotates_each_vn(self):
        fabric, controller = drain_setup(vns=3, epoch=1000)
        port0 = controller.path_ports[0]
        packets = []
        for vn in range(3):
            router = fabric.index.link_dst[port0]
            packet = Packet(vn, (router + 1) % 16, (router + 2) % 16
                            if (router + 2) % 16 != router else (router + 3) % 16)
            packet.vn = vn
            fabric.buf[port0][vn][0] = packet
            fabric.packets_in_network += 1
            packets.append(packet)
        controller._rotate_once()
        port1 = controller.path_ports[1]
        for vn, packet in enumerate(packets):
            assert fabric.buf[port1][vn][0] is packet

    def test_non_escape_vcs_untouched_by_drain(self):
        fabric, controller = drain_setup(vcs=2, epoch=1000)
        port0 = controller.path_ports[0]
        router = fabric.index.link_dst[port0]
        packet = Packet(0, (router + 1) % 16, (router + 2) % 16
                        if (router + 2) % 16 != router else (router + 3) % 16)
        fabric.buf[port0][0][1] = packet  # non-escape VC 1
        fabric.packets_in_network += 1
        controller._rotate_once()
        assert fabric.buf[port0][0][1] is packet
        assert packet.hops == 0


class TestFullDrain:
    def test_full_drain_fires_on_period(self):
        fabric, controller = drain_setup(epoch=10, pre=1, window=2, full_period=3)
        for _ in range(400):
            tick(fabric, controller)
        assert fabric.stats.full_drains >= 1
        assert fabric.stats.drain_windows >= 3

    def test_full_drain_empties_escape_vcs(self):
        fabric, controller = drain_setup(epoch=10**9, full_period=1)
        rng = random.Random(5)
        for port in controller.path_ports:
            router = fabric.index.link_dst[port]
            dst = rng.randrange(16)
            if dst == router:
                dst = (dst + 1) % 16
            fabric.buf[port][0][0] = Packet(port, router, dst)
            fabric.packets_in_network += 1
        # Trigger a full drain directly.
        controller._windows_done = 0
        controller.config = controller.config  # unchanged; call machinery:
        controller._enter_drain()  # windows_done=1, period=1 -> full drain
        assert controller.state == "full_drain"
        for _ in range(len(controller.path_ports) + 2):
            controller.step()
            fabric.cycle += 1
            # NI consumption keeps ejection queues drained.
            for node in range(16):
                for cls in MessageClass:
                    while fabric.peek_ejection(node, cls):
                        fabric.pop_ejection(node, cls)
        # Every escape packet visited every router, so all must have ejected.
        for port in controller.path_ports:
            assert fabric.buf[port][0][0] is None


class TestDrainPathReuse:
    def test_precomputed_path_accepted(self):
        topo = make_ring(6)
        path = euler_drain_path(topo)
        index = FabricIndex(topo)
        config = SimConfig(scheme=Scheme.DRAIN,
                           network=NetworkConfig(num_vns=1, vcs_per_vn=2))
        fabric = Fabric(index, config, AdaptiveMinimalRouting(index),
                        escape_mode="drain", rng=random.Random(1))
        controller = DrainController(fabric, config.drain, path=path)
        assert len(controller.path_ports) == len(path)
