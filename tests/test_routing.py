"""Unit tests for the routing functions (adaptive, DOR, up*/down*)."""

import random

import pytest

from repro.drain.hawick_james import elementary_circuits
from repro.network.index import FabricIndex
from repro.router.packet import Packet
from repro.routing.adaptive import AdaptiveMinimalRouting
from repro.routing.dor import DimensionOrderRouting
from repro.routing.updown import UpDownRouting
from repro.topology.graph import Topology
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh, node_at


def walk(routing, index, src, dst, choose=min, max_hops=200):
    """Follow the routing function from src to dst; returns the hop count."""
    packet = Packet(0, src, dst)
    routing.on_inject(packet)
    router = src
    hops = 0
    while router != dst:
        cands = routing.candidates(router, packet)
        assert cands, f"no candidate from {router} to {dst}"
        link = choose(cands)
        routing.on_hop(packet, link)
        router = index.link_dst[link]
        hops += 1
        assert hops <= max_hops, "routing walk did not terminate"
    return hops


class TestAdaptiveMinimal:
    def test_candidates_are_productive(self, mesh4):
        index = FabricIndex(mesh4)
        routing = AdaptiveMinimalRouting(index)
        for src in mesh4.nodes:
            for dst in mesh4.nodes:
                if src == dst:
                    continue
                for link in routing.raw_candidates(src, dst):
                    assert (
                        index.dist[index.link_dst[link]][dst]
                        == index.dist[src][dst] - 1
                    )

    def test_walk_takes_minimal_hops(self, mesh4):
        index = FabricIndex(mesh4)
        routing = AdaptiveMinimalRouting(index)
        rng = random.Random(1)
        for _ in range(50):
            src, dst = rng.sample(range(16), 2)
            assert walk(routing, index, src, dst) == index.dist[src][dst]

    def test_corner_to_corner_has_two_choices(self, mesh4):
        index = FabricIndex(mesh4)
        routing = AdaptiveMinimalRouting(index)
        assert len(routing.raw_candidates(0, 15)) == 2

    def test_works_on_faulty_topology(self, faulty8):
        index = FabricIndex(faulty8)
        routing = AdaptiveMinimalRouting(index)
        rng = random.Random(2)
        for _ in range(30):
            src, dst = rng.sample(range(64), 2)
            assert walk(routing, index, src, dst) == index.dist[src][dst]


class TestDimensionOrder:
    def test_requires_coordinates(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            DimensionOrderRouting(FabricIndex(topo))

    def test_single_candidate(self, mesh4):
        index = FabricIndex(mesh4)
        routing = DimensionOrderRouting(index)
        packet = Packet(0, 0, 15)
        assert len(routing.candidates(0, packet)) == 1

    def test_x_before_y(self, mesh4):
        index = FabricIndex(mesh4)
        routing = DimensionOrderRouting(index)
        # From (0,0) to (3,3): the first hop must go east to (1,0).
        link = routing.next_link(0, 15)
        assert index.link_dst[link] == node_at(1, 0, 4)

    def test_walk_is_minimal(self, mesh4):
        index = FabricIndex(mesh4)
        routing = DimensionOrderRouting(index)
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    assert walk(routing, index, src, dst) == index.dist[src][dst]

    def test_rejects_faulty_mesh(self, faulty8):
        with pytest.raises(ValueError):
            DimensionOrderRouting(FabricIndex(faulty8))

    def test_turn_graph_is_acyclic(self, mesh4):
        """XY routing's channel-dependency graph must contain no circuits —
        the constructive proof of its deadlock freedom."""
        index = FabricIndex(mesh4)
        routing = DimensionOrderRouting(index)
        # Collect used turns: incoming link -> outgoing link via DOR.
        allowed = set()
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                path_router = src
                packet = Packet(0, src, dst)
                prev = None
                while path_router != dst:
                    link = routing.next_link(path_router, dst)
                    if prev is not None:
                        allowed.add((prev, link))
                    prev = link
                    path_router = index.link_dst[link]
        adjacency = [[] for _ in range(index.num_links)]
        for a, b in allowed:
            adjacency[a].append(b)
        assert list(elementary_circuits(adjacency, max_circuits=1)) == []


class TestUpDown:
    def test_reaches_every_destination_fault_free(self, mesh4):
        index = FabricIndex(mesh4)
        routing = UpDownRouting(index)
        rng = random.Random(3)
        for _ in range(60):
            src, dst = rng.sample(range(16), 2)
            walk(routing, index, src, dst, choose=lambda c: rng.choice(c))

    def test_reaches_every_destination_faulty(self, faulty8):
        index = FabricIndex(faulty8)
        routing = UpDownRouting(index)
        rng = random.Random(4)
        for _ in range(60):
            src, dst = rng.sample(range(64), 2)
            walk(routing, index, src, dst, choose=lambda c: rng.choice(c))

    def test_no_up_after_down(self, faulty8):
        """Every offered candidate must respect the up*-then-down* rule."""
        index = FabricIndex(faulty8)
        routing = UpDownRouting(index)
        rng = random.Random(5)
        for _ in range(40):
            src, dst = rng.sample(range(64), 2)
            packet = Packet(0, src, dst)
            routing.on_inject(packet)
            router = src
            gone_down = False
            for _hop in range(100):
                if router == dst:
                    break
                cands = routing.candidates(router, packet)
                assert cands
                for link in cands:
                    if gone_down:
                        assert not routing.link_is_up[link], (
                            "up link offered after a down move"
                        )
                link = rng.choice(cands)
                if not routing.link_is_up[link]:
                    gone_down = True
                routing.on_hop(packet, link)
                router = index.link_dst[link]

    def test_routes_at_least_minimal_length(self, faulty8):
        index = FabricIndex(faulty8)
        routing = UpDownRouting(index)
        for src in range(0, 64, 7):
            for dst in range(0, 64, 5):
                if src != dst:
                    assert routing.route_length(src, dst) >= index.dist[src][dst]

    def test_non_minimality_at_least_one(self, faulty8):
        routing = UpDownRouting(FabricIndex(faulty8))
        assert routing.non_minimality() >= 1.0

    def test_nonminimal_on_faulty_topology(self, faulty8):
        """Faults should force some non-minimal up*/down* routes."""
        routing = UpDownRouting(FabricIndex(faulty8))
        assert routing.non_minimality() > 1.0

    def test_up_links_head_towards_root(self, mesh4):
        index = FabricIndex(mesh4)
        routing = UpDownRouting(index, root=0)
        for link_id in range(index.num_links):
            src = index.link_src[link_id]
            dst = index.link_dst[link_id]
            if routing.link_is_up[link_id]:
                assert routing.label[dst] < routing.label[src]
            else:
                assert routing.label[dst] > routing.label[src]

    def test_turn_graph_is_acyclic(self, faulty4):
        """The up*/down*-legal turn graph must be circuit-free."""
        index = FabricIndex(faulty4)
        routing = UpDownRouting(index)
        adjacency = [[] for _ in range(index.num_links)]
        for a in range(index.num_links):
            for b in index.out_links[index.link_dst[a]]:
                # Turn a->b is legal unless it goes up after coming down.
                if routing.link_is_up[b] and not routing.link_is_up[a]:
                    continue
                adjacency[a].append(b)
        assert list(elementary_circuits(adjacency, max_circuits=1)) == []


class TestDeterministicUpDown:
    def test_single_candidate_everywhere(self, faulty8):
        from repro.network.index import FabricIndex

        index = FabricIndex(faulty8)
        routing = UpDownRouting(index, deterministic=True)
        rng = random.Random(8)
        for _ in range(40):
            src, dst = rng.sample(range(64), 2)
            packet = Packet(0, src, dst)
            routing.on_inject(packet)
            assert len(routing.candidates(src, packet)) == 1

    def test_deterministic_is_subset_of_adaptive(self, mesh4):
        from repro.network.index import FabricIndex

        index = FabricIndex(mesh4)
        det = UpDownRouting(index, deterministic=True)
        ada = UpDownRouting(index, deterministic=False)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                packet = Packet(0, src, dst)
                det.on_inject(packet)
                chosen = det.candidates(src, packet)
                assert set(chosen) <= set(ada.candidates(src, packet))

    def test_deterministic_still_delivers(self, faulty8):
        from repro.network.index import FabricIndex

        index = FabricIndex(faulty8)
        routing = UpDownRouting(index, deterministic=True)
        rng = random.Random(9)
        for _ in range(40):
            src, dst = rng.sample(range(64), 2)
            walk(routing, index, src, dst)
