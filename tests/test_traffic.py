"""Unit tests for synthetic traffic patterns and the Bernoulli injector."""

import random

import pytest

from repro.core.config import Scheme
from repro.core.simulator import Simulation
from repro.router.packet import MessageClass
from repro.topology.mesh import make_mesh, node_at
from repro.traffic.synthetic import (
    BitComplement,
    BitShuffle,
    Hotspot,
    SyntheticTraffic,
    Transpose,
    UniformRandom,
    pattern_by_name,
)
from tests.conftest import make_config


class TestPatterns:
    def test_uniform_random_never_self(self):
        pattern = UniformRandom(16)
        rng = random.Random(1)
        for _ in range(500):
            dst = pattern.destination(3, rng)
            assert dst is not None and dst != 3 and 0 <= dst < 16

    def test_uniform_random_covers_all_destinations(self):
        pattern = UniformRandom(8)
        rng = random.Random(2)
        seen = {pattern.destination(0, rng) for _ in range(500)}
        assert seen == {1, 2, 3, 4, 5, 6, 7}

    def test_transpose_mapping(self):
        pattern = Transpose(16, 4)
        rng = random.Random(3)
        assert pattern.destination(node_at(1, 3, 4), rng) == node_at(3, 1, 4)

    def test_transpose_diagonal_silent(self):
        pattern = Transpose(16, 4)
        rng = random.Random(4)
        for d in range(4):
            assert pattern.destination(node_at(d, d, 4), rng) is None

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            Transpose(12, 4)
        with pytest.raises(ValueError):
            Transpose(16, None)

    def test_bit_complement(self):
        pattern = BitComplement(16)
        rng = random.Random(5)
        assert pattern.destination(0b0101, rng) == 0b1010
        assert pattern.destination(0, rng) == 15

    def test_bit_complement_power_of_two_only(self):
        with pytest.raises(ValueError):
            BitComplement(12)

    def test_shuffle_rotates_bits(self):
        pattern = BitShuffle(8)
        rng = random.Random(6)
        assert pattern.destination(0b001, rng) == 0b010
        assert pattern.destination(0b100, rng) == 0b001

    def test_shuffle_fixed_points_silent(self):
        pattern = BitShuffle(8)
        rng = random.Random(7)
        assert pattern.destination(0, rng) is None
        assert pattern.destination(7, rng) is None

    def test_hotspot_concentrates_traffic(self):
        pattern = Hotspot(16, hotspots=[5], hotspot_fraction=0.5)
        rng = random.Random(8)
        hits = sum(1 for _ in range(2000) if pattern.destination(0, rng) == 5)
        assert hits > 600  # ~50% + uniform share

    def test_pattern_by_name(self):
        assert isinstance(pattern_by_name("uniform_random", 16), UniformRandom)
        assert isinstance(pattern_by_name("transpose", 16, 4), Transpose)
        with pytest.raises(ValueError):
            pattern_by_name("nope", 16)


class TestSyntheticTraffic:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraffic(UniformRandom(16), 1.5, random.Random(1))

    def test_generation_rate_close_to_nominal(self, mesh4):
        traffic = SyntheticTraffic(UniformRandom(16), 0.1, random.Random(2))
        sim = Simulation(mesh4, make_config(Scheme.NONE), traffic)
        sim.run(2000)
        expected = 0.1 * 16 * 2000
        assert abs(traffic.generated - expected) / expected < 0.1

    def test_open_loop_records_source_queueing(self, mesh4):
        """At overload the backlog grows and latencies include queueing."""
        traffic = SyntheticTraffic(UniformRandom(16), 0.9, random.Random(3))
        sim = Simulation(mesh4, make_config(Scheme.DRAIN, epoch=400), traffic)
        sim.run(800)
        assert traffic.backlog_size() > 0

    def test_consume_empties_ejection_queues(self, mesh4):
        traffic = SyntheticTraffic(UniformRandom(16), 0.05, random.Random(4))
        sim = Simulation(mesh4, make_config(Scheme.NONE), traffic)
        sim.run(1000)
        for node in range(16):
            for cls in MessageClass:
                assert sim.fabric.peek_ejection(node, cls) is None

    def test_never_done(self):
        traffic = SyntheticTraffic(UniformRandom(16), 0.1, random.Random(5))
        assert not traffic.done()


class TestAdditionalPatterns:
    def test_bit_reverse(self):
        from repro.traffic.synthetic import BitReverse

        pattern = BitReverse(8)
        rng = random.Random(1)
        assert pattern.destination(0b001, rng) == 0b100
        assert pattern.destination(0b110, rng) == 0b011
        assert pattern.destination(0b000, rng) is None  # palindrome

    def test_bit_reverse_power_of_two_only(self):
        from repro.traffic.synthetic import BitReverse

        with pytest.raises(ValueError):
            BitReverse(12)

    def test_tornado_half_row_shift(self):
        from repro.traffic.synthetic import Tornado

        pattern = Tornado(16, 4)
        rng = random.Random(2)
        assert pattern.destination(node_at(0, 2, 4), rng) == node_at(1, 2, 4)
        assert pattern.destination(node_at(3, 0, 4), rng) == node_at(0, 0, 4)

    def test_tornado_stays_in_row(self):
        from repro.traffic.synthetic import Tornado

        pattern = Tornado(64, 8)
        rng = random.Random(3)
        for src in range(64):
            dst = pattern.destination(src, rng)
            assert dst is not None
            assert dst // 8 == src // 8

    def test_nearest_neighbor_adjacent(self):
        from repro.topology.mesh import make_mesh
        from repro.traffic.synthetic import NearestNeighbor

        mesh = make_mesh(4, 4)
        pattern = NearestNeighbor(16, 4)
        rng = random.Random(4)
        for _ in range(200):
            src = rng.randrange(16)
            dst = pattern.destination(src, rng)
            assert mesh.has_edge(src, dst)

    def test_new_patterns_registered(self):
        for name in ("bit_reverse", "tornado", "nearest_neighbor"):
            assert pattern_by_name(name, 16, 4) is not None
