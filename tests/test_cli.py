"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, parse_topology


class TestParseTopology:
    def test_mesh(self):
        topo = parse_topology("mesh:4x4")
        assert topo.num_nodes == 16

    def test_torus(self):
        assert parse_topology("torus:4x4").num_edges == 32

    def test_ring(self):
        assert parse_topology("ring:8").num_nodes == 8

    def test_smallworld(self):
        topo = parse_topology("smallworld:16+4", seed=3)
        assert topo.num_nodes == 16
        assert topo.num_edges == 20

    def test_randomregular(self):
        topo = parse_topology("randomregular:12d3", seed=3)
        assert all(topo.degree(n) == 3 for n in topo.nodes)

    def test_chiplet(self):
        topo = parse_topology("chiplet:4x2x2")
        assert topo.is_connected()

    def test_faults_applied(self):
        topo = parse_topology("mesh:4x4", faults=3, seed=1)
        assert topo.num_edges == 21
        assert topo.is_connected()

    def test_bad_specs_rejected(self):
        for spec in ("mesh:4", "cube:3x3", "smallworld:16", "randomregular:12"):
            with pytest.raises(ValueError):
                parse_topology(spec)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_analytical_experiment_runs(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "drain" in out and "escape_vc" in out

    def test_table_experiment_runs(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "subactive" in capsys.readouterr().out

    def test_run_command(self, capsys):
        code = main([
            "run", "--topology", "mesh:4x4", "--scheme", "drain",
            "--cycles", "800", "--warmup", "200", "--rate", "0.04",
            "--epoch", "256",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "avg latency" in out
        assert "drain windows" in out

    def test_run_wormhole(self, capsys):
        code = main([
            "run", "--topology", "mesh:4x4", "--flow-control", "wormhole",
            "--cycles", "800", "--warmup", "200", "--rate", "0.03",
        ])
        assert code == 0

    def test_drainpath_command(self, capsys):
        assert main(["drainpath", "--topology", "ring:6", "--show-path"]) == 0
        out = capsys.readouterr().out
        assert "drain path: 12 links" in out
        assert "->" in out

    def test_drainpath_hawick_james(self, capsys):
        assert main([
            "drainpath", "--topology", "ring:4", "--method", "hawick-james",
        ]) == 0

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fault_recovery_experiment_registered(self):
        assert "fault-recovery" in EXPERIMENTS


class TestErrorPaths:
    def test_bad_topology_is_one_line_error(self, capsys):
        assert main(["run", "--topology", "mesh:oops"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_unknown_scheme_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "nonsense"])

    def test_sweep_unknown_scheme_exits_nonzero(self, capsys):
        assert main([
            "sweep", "--topology", "mesh:4x4", "--schemes", "nonsense",
            "--no-cache",
        ]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_unsatisfiable_fault_schedule_exits_nonzero(self, capsys):
        code = main([
            "faults", "--topology", "mesh:2x2", "--num-faults", "5",
            "--no-cache",
        ])
        assert code == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "removable" in captured.err


class TestFaultsCommand:
    def test_faults_run_and_artefact(self, tmp_path, capsys):
        code = main([
            "faults", "--topology", "mesh:4x4", "--num-faults", "1",
            "--cycles", "1200", "--no-cache",
            "--out-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "drain recovery:" in out
        assert "recovery curve" in out
        artefacts = list(tmp_path.glob("faults_*.json"))
        artefacts = [p for p in artefacts if "manifest" not in p.name]
        assert len(artefacts) == 1
        payload = json.loads(artefacts[0].read_text())
        assert payload["curve"], "recovery curve missing from artefact"
        assert payload["schedule"]["events"]
        assert payload["summary"]["drain_recomputes"] >= 1

    def test_timeout_flag_accepted(self, capsys):
        code = main([
            "faults", "--topology", "mesh:4x4", "--num-faults", "1",
            "--cycles", "1200", "--no-cache", "--timeout", "120",
            "--workers", "2",
        ])
        assert code == 0
