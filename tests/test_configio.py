"""Tests for SimConfig JSON (de)serialisation."""

import pytest

from repro.core.config import (
    DrainConfig,
    NetworkConfig,
    Scheme,
    SimConfig,
)
from repro.core.configio import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)


def sample_config():
    return SimConfig(
        scheme=Scheme.SPIN,
        network=NetworkConfig(num_vns=1, vcs_per_vn=4),
        drain=DrainConfig(epoch=123, escape_sticky=True),
        seed=77,
    )


class TestRoundtrip:
    def test_dict_roundtrip(self):
        config = sample_config()
        assert config_from_dict(config_to_dict(config)) == config

    def test_file_roundtrip(self, tmp_path):
        config = sample_config()
        path = tmp_path / "config.json"
        save_config(config, path)
        assert load_config(path) == config

    def test_default_roundtrip(self):
        assert config_from_dict(config_to_dict(SimConfig())) == SimConfig()


class TestValidation:
    def test_unknown_section_key_rejected(self):
        data = config_to_dict(SimConfig())
        data["drain"]["magic"] = 3
        with pytest.raises(ValueError):
            config_from_dict(data)

    def test_unknown_top_level_key_rejected(self):
        data = config_to_dict(SimConfig())
        data["extra"] = {}
        with pytest.raises(ValueError):
            config_from_dict(data)

    def test_partial_sections_use_defaults(self):
        config = config_from_dict({"scheme": "drain"})
        assert config.scheme is Scheme.DRAIN
        assert config.network == NetworkConfig()

    def test_invalid_values_still_validated(self):
        with pytest.raises(ValueError):
            config_from_dict({"scheme": "drain", "drain": {"epoch": 0}})

    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"scheme": "quantum"})
