"""Static analysis subsystem: certifier, determinism lint, preflight gate."""

import json

import pytest

from repro.analysis import (
    CERTIFIED,
    REFUTED,
    Certificate,
    PreflightError,
    certify_configuration,
    certify_drain_cover,
    certify_routing,
    find_turn_cycle,
    lint_source,
    topological_link_order,
    validate_spec,
)
from repro.analysis.preflight import clear_preflight_cache
from repro.cli import main
from repro.core.config import Scheme, SimConfig
from repro.core.configio import config_to_dict
from repro.drain.path import DrainPathError, find_drain_path
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.harness import Harness
from repro.harness.trials import TrialSpec, synthetic_trial, topology_to_spec
from repro.topology.dependency import build_dependency_graph
from repro.topology.graph import Link, Topology
from repro.topology.mesh import make_mesh, make_torus


# ----------------------------------------------------------------------
# Graph primitives
# ----------------------------------------------------------------------
def test_topological_order_on_dag():
    adjacency = [[1, 2], [3], [3], []]
    order = topological_link_order(adjacency)
    assert sorted(order) == [0, 1, 2, 3]
    position = {node: i for i, node in enumerate(order)}
    for node, succs in enumerate(adjacency):
        for m in succs:
            assert position[node] < position[m]


def test_topological_order_detects_cycle():
    assert topological_link_order([[1], [2], [0]]) is None
    assert find_turn_cycle([[1], [2], [0]]) == [0, 1, 2]


def test_find_turn_cycle_minimal_and_rotated():
    # Two cycles: a 4-cycle 0-1-2-3 and a 2-cycle 4-5. Minimal wins, and
    # the result starts at its smallest member.
    adjacency = [[1], [2], [3], [0], [5], [4]]
    assert find_turn_cycle(adjacency) == [4, 5]
    assert find_turn_cycle([[1], [2], [3], [0]]) == [0, 1, 2, 3]
    assert find_turn_cycle([[], []]) is None


def test_certificate_invariants():
    with pytest.raises(ValueError):
        Certificate("MAYBE", {})
    with pytest.raises(ValueError):
        Certificate(CERTIFIED, {}, counterexample={"kind": "turn-cycle"})
    with pytest.raises(ValueError):
        Certificate(REFUTED, {}, proof={"method": "x"})


# ----------------------------------------------------------------------
# Known-answer certification cases
# ----------------------------------------------------------------------
def test_dor_on_mesh_certifies():
    cert = certify_routing(make_mesh(8, 8), "dor")
    assert cert.certified
    proof = cert.proof
    assert proof["method"] == "topological-link-order"
    assert proof["links"] == len(proof["link_order"]) == 2 * make_mesh(8, 8).num_edges


def test_adaptive_on_torus_refuted_with_minimal_turn_cycle():
    cert = certify_routing(make_torus(4, 4), "adaptive")
    assert not cert.certified
    counter = cert.counterexample
    assert counter["kind"] == "turn-cycle"
    # The minimal cycle on a 4-ary torus ring is the 4-link wraparound.
    assert counter["length"] == 4
    assert len(counter["links"]) == 4
    # The witness is a real closed walk of links.
    hops = [tuple(map(int, s.split("->"))) for s in counter["links"]]
    for (_src, dst), (nxt_src, _dst) in zip(hops, hops[1:] + hops[:1]):
        assert dst == nxt_src


def test_updown_certifies_any_connected_topology():
    for topo in (make_torus(4, 4), make_mesh(3, 5)):
        cert = certify_routing(topo, "updown")
        assert cert.certified, cert.summary()


def test_dor_mesh_certificate_json_deterministic():
    a = certify_routing(make_mesh(4, 4), "dor").to_json()
    b = certify_routing(make_mesh(4, 4), "dor").to_json()
    assert a == b
    payload = json.loads(a)
    assert payload["verdict"] == CERTIFIED


def test_drain_cover_certifies_and_refutes():
    topo = make_mesh(4, 4)
    path = find_drain_path(topo)
    cert = certify_drain_cover(topo, [path])
    assert cert.certified
    assert cert.proof["covered_links"] == 2 * topo.num_edges

    # Drop the cover's last link: broken cycle.
    broken = certify_drain_cover(topo, [path.links[:-1]])
    assert not broken.certified
    assert broken.counterexample["kind"] == "broken-cycle"

    # Cover built on a weakened topology misses the removed link.
    weakened = topo.copy()
    weakened.remove_edge(0, 1)
    partial = certify_drain_cover(topo, [find_drain_path(weakened)])
    assert not partial.certified
    counter = partial.counterexample
    assert counter["kind"] == "uncovered-links"
    assert counter["missing"] == [[0, 1], [1, 0]]
    assert counter["extra"] == []


def test_post_fault_split_components_certify_per_component():
    # Cut the 4x4 mesh into two 2x4 halves; both claims must still certify,
    # now per connected component.
    events = tuple(
        FaultEvent(cycle=10, kind="link", target=(y * 4 + 1, y * 4 + 2))
        for y in range(4)
    )
    schedule = FaultSchedule(events)
    mesh = make_mesh(4, 4)

    drain = certify_configuration(mesh, scheme=Scheme.DRAIN, schedule=schedule)
    assert drain.certified
    assert drain.proof["cycles"] == 2
    assert drain.proof["covered_links"] == 2 * (mesh.num_edges - 4)

    updown = certify_configuration(mesh, scheme=Scheme.UPDOWN, schedule=schedule)
    assert updown.certified
    assert updown.proof["method"] == "per-component-topological-link-order"
    assert updown.proof["components"] == 2


def test_scheme_claims():
    mesh = make_mesh(4, 4)
    assert certify_configuration(mesh, scheme=Scheme.DRAIN).certified
    assert certify_configuration(mesh, scheme=Scheme.UPDOWN).certified
    assert certify_configuration(mesh, scheme=Scheme.ESCAPE_VC).certified
    # Reactive schemes make no static claim; fully adaptive routing is
    # correctly refuted.
    cert = certify_configuration(make_torus(4, 4), scheme=Scheme.NONE)
    assert not cert.certified
    assert cert.counterexample["kind"] == "turn-cycle"


def test_restricted_adjacency_feeds_acyclicity_checkers():
    # No-U-turn mesh dependency graph is still cyclic (4-turn rings)…
    topo = make_mesh(3, 3)
    graph = build_dependency_graph(topo, allow_u_turns=False)
    full = graph.restricted_adjacency(lambda a, b: True)
    assert topological_link_order(full) is None
    # …but an artificial "only ascending link ids" restriction is acyclic.
    index = graph.index_of()
    ascending = graph.restricted_adjacency(lambda a, b: index[a] < index[b])
    assert topological_link_order(ascending) is not None


# ----------------------------------------------------------------------
# DrainPathError payload
# ----------------------------------------------------------------------
def test_drain_path_error_payload_sorted_tuples():
    err = DrainPathError(
        "boom",
        missing=[Link(3, 2), Link(0, 1)],
        extra=[Link(2, 3)],
    )
    assert isinstance(err.missing, tuple)
    assert err.missing == (Link(0, 1), Link(3, 2))
    payload = err.as_dict()
    assert payload == {
        "message": "boom",
        "missing": [[0, 1], [3, 2]],
        "extra": [[2, 3]],
    }
    # Byte-stable serialization.
    assert json.dumps(payload, sort_keys=True) == json.dumps(
        DrainPathError("boom", missing=[Link(0, 1), Link(3, 2)],
                       extra=[Link(2, 3)]).as_dict(),
        sort_keys=True,
    )


# ----------------------------------------------------------------------
# Determinism lint
# ----------------------------------------------------------------------
def test_lint_rules_fire():
    source = (
        "import random, time\n"
        "def f(x=[]):\n"
        "    h = hash('abc')\n"
        "    random.shuffle(x)\n"
        "    t = time.time()\n"
        "    d = obj.as_dict()\n"
        "    d.pop('k')\n"
        "    del d['j']\n"
        "    return TrialSpec('r', {'s': {1, 2}})\n"
    )
    findings = lint_source(source, "demo.py")
    positions = [(f.line, f.col) for f in findings]
    assert positions == sorted(positions)  # deterministic positional order
    assert {f.code for f in findings} == {
        "DET001", "DET002", "DET003", "DET004", "DET005", "DET006"
    }


def test_lint_pragma_and_allowlist():
    clock = "import time\nt = time.time()  # det: allow\n"
    assert lint_source(clock, "x.py") == []
    clock = "import time\nt = time.time()\n"
    assert [f.code for f in lint_source(clock, "x.py")] == ["DET003"]
    # Harness bookkeeping files may read the clock.
    assert lint_source(clock, "src/repro/harness/pool.py") == []


def test_lint_allows_seeded_random_instances():
    source = "import random\nrng = random.Random(42)\nrng.shuffle([1, 2])\n"
    assert lint_source(source, "x.py") == []


def test_lint_src_tree_clean():
    from repro.analysis import lint_paths

    assert lint_paths(["src"]) == []


# ----------------------------------------------------------------------
# Preflight gate
# ----------------------------------------------------------------------
def _good_spec():
    config = SimConfig(scheme=Scheme.DRAIN, seed=1)
    return synthetic_trial(make_mesh(4, 4), config, rate=0.05, cycles=50,
                           warmup=10)


def test_preflight_accepts_and_memoizes():
    clear_preflight_cache()
    spec = _good_spec()
    cert = validate_spec(spec)
    assert cert is not None and cert.certified
    assert validate_spec(spec) is cert  # memoized per (topology, scheme)


def test_preflight_rejects_unknown_runner():
    with pytest.raises(PreflightError, match="unknown trial runner"):
        validate_spec(TrialSpec("nope", {}))


def test_preflight_rejects_unjsonable_params():
    with pytest.raises(PreflightError, match="JSON"):
        validate_spec(TrialSpec("synthetic", {"x": {1, 2}}))


def test_preflight_rejects_disconnected_topology():
    config = SimConfig(scheme=Scheme.DRAIN, seed=1)
    split = Topology(4, [(0, 1), (2, 3)], name="split")
    spec = TrialSpec("synthetic", {
        "topology": topology_to_spec(split),
        "config": config_to_dict(config),
    })
    with pytest.raises(PreflightError, match="not connected"):
        validate_spec(spec)


def test_harness_runs_gate_before_submission():
    harness = Harness(workers=1)
    with pytest.raises(PreflightError):
        harness.run([TrialSpec("nope", {})])
    assert harness.records == []  # nothing executed, nothing recorded
    # Opt-out reaches execution (and fails there instead).
    ungated = Harness(workers=1, preflight=False)
    with pytest.raises(ValueError, match="unknown trial runner"):
        ungated.run([TrialSpec("nope", {})])


def test_harness_preflight_passes_valid_sweep():
    harness = Harness(workers=1)
    (result,) = harness.run([_good_spec()])
    assert result["throughput"] >= 0.0


# ----------------------------------------------------------------------
# CLI: check / lint exit codes
# ----------------------------------------------------------------------
def test_cli_check_certifies_mesh_drain(capsys):
    assert main(["check", "--topology", "mesh:8x8", "--scheme", "drain"]) == 0
    out = capsys.readouterr().out
    assert "CERTIFIED" in out and "drain-coverage" in out


def test_cli_check_refutes_broken_configuration(capsys):
    code = main(["check", "--topology", "torus:4x4", "--scheme", "none",
                 "--json"])
    assert code == 1
    cert = json.loads(capsys.readouterr().out)
    assert cert["verdict"] == REFUTED
    assert cert["counterexample"]["kind"] == "turn-cycle"
    assert len(cert["counterexample"]["links"]) == cert["counterexample"]["length"]


def test_cli_check_omit_link_counterexample(capsys):
    code = main(["check", "--topology", "mesh:4x4", "--omit-link", "0-1",
                 "--json"])
    assert code == 1
    cert = json.loads(capsys.readouterr().out)
    assert cert["counterexample"]["kind"] == "uncovered-links"
    assert cert["counterexample"]["missing"] == [[0, 1], [1, 0]]


def test_cli_check_post_fault(capsys):
    assert main(["check", "--topology", "mesh:4x4", "--num-faults", "2",
                 "--scheme", "drain"]) == 0
    assert "post-fault" in capsys.readouterr().out


def test_cli_check_bad_topology_exit_2(capsys):
    assert main(["check", "--topology", "blob:9"]) == 2


def test_cli_lint_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0
    dirty = tmp_path / "dirty.py"
    dirty.write_text("h = hash('x')\n")
    assert main(["lint", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
