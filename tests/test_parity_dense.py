"""Fast-path vs dense-reference parity: the active-set kernel's contract.

The fabric's skip-idle scheduling, flat VC buffers, routing memo caches
and reusable wait-for graphs are pure performance work — ``dense=True``
retains the pre-optimisation behaviour (full scans, no memoisation,
per-pass graph rebuilds) over the same storage. These tests pin the two
modes to bit-identical ``NetworkStats.as_dict()`` across every scheme,
topology family and load point, including mid-run fault recovery, so any
future fast-path shortcut that changes semantics (rather than just
skipping provably-idle work) fails loudly instead of drifting goldens.

The last class audits the scratch-state discipline directly: the kernel
files carry no ``# det: allow`` pragmas, the determinism lint is clean
over the whole tree, and per-instance scratch cannot leak between
fabrics or across back-to-back trials in one process.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.lint import lint_paths
from repro.core.config import Scheme
from repro.core.rng import derive_seed
from repro.core.simulator import Simulation
from repro.experiments.common import Scale, scheme_config
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh, make_torus
from repro.traffic.synthetic import SyntheticTraffic, pattern_by_name

TINY = Scale(
    warmup=100,
    measure=300,
    fault_patterns=1,
    sweep_rates=(0.05,),
    epoch=128,
    spin_timeout=64,
)

LOW_RATE = 0.02
SATURATION_RATE = 0.30


def _topology(kind: str):
    if kind == "mesh":
        return make_mesh(4, 4), 4
    if kind == "torus":
        return make_torus(4, 4), 4
    if kind == "irregular":
        return inject_link_faults(make_mesh(4, 4), 2, random.Random(5)), None
    raise ValueError(kind)


def _summary(scheme: Scheme, topo_kind: str, rate: float, dense: bool,
             flow_control: str = "vct", fault_schedule=None, engine=None):
    topology, width = _topology(topo_kind)
    config = scheme_config(scheme, TINY, seed=1)
    traffic = SyntheticTraffic(
        pattern_by_name("uniform_random", topology.num_nodes, width),
        rate,
        random.Random(derive_seed(1, "traffic", "uniform_random", rate)),
    )
    sim = Simulation(
        topology, config, traffic,
        flow_control=flow_control,
        fault_schedule=fault_schedule,
        dense=dense,
        engine=engine,
    )
    sim.run(TINY.total_cycles, warmup=TINY.warmup)
    return sim.stats


class TestDenseParity:
    """dense=True (reference) and dense=False (fast) are bit-identical."""

    @pytest.mark.parametrize("scheme", list(Scheme))
    @pytest.mark.parametrize("topo_kind", ["mesh", "torus", "irregular"])
    @pytest.mark.parametrize("rate", [LOW_RATE, SATURATION_RATE])
    def test_all_schemes_topologies_loads(self, scheme, topo_kind, rate):
        fast = _summary(scheme, topo_kind, rate, dense=False)
        dense = _summary(scheme, topo_kind, rate, dense=True)
        assert fast.as_dict() == dense.as_dict()

    def test_fast_forward_engages_at_idle_rate(self):
        # At a near-idle rate the event-horizon engine must actually skip
        # (not just trivially match dense because it never fired) and the
        # stats must still be bit-identical.
        topology, width = _topology("mesh")
        results = {}
        for dense in (False, True):
            config = scheme_config(Scheme.DRAIN, TINY, seed=1)
            traffic = SyntheticTraffic(
                pattern_by_name("uniform_random", topology.num_nodes, width),
                0.0005,
                random.Random(derive_seed(1, "traffic", "uniform_random",
                                          0.0005)),
            )
            sim = Simulation(topology, config, traffic, dense=dense)
            sim.run(TINY.total_cycles, warmup=TINY.warmup)
            results[dense] = sim.stats.as_dict()
            if not dense:
                assert sim.ff_spans > 0
                assert sim.ff_cycles > TINY.total_cycles // 2
            else:
                assert sim.ff_cycles == 0
        assert results[False] == results[True]

    def test_wormhole_fabric(self):
        fast = _summary(Scheme.DRAIN, "mesh", 0.10, dense=False,
                        flow_control="wormhole")
        dense = _summary(Scheme.DRAIN, "mesh", 0.10, dense=True,
                         flow_control="wormhole")
        assert fast.as_dict() == dense.as_dict()

    def test_mid_run_fault_recovery(self):
        # Faults land mid-measurement: the injector drops slots, rebuilds
        # routing/escape state and invalidates the memo caches. Parity
        # here proves the invalidation hooks are sufficient — a stale
        # candidate-group cache would steer the fast path differently.
        events = (
            FaultEvent(cycle=150, kind="link", target=(5, 6)),
            FaultEvent(cycle=250, kind="link", target=(9, 10)),
        )
        schedule = FaultSchedule(events=events, seed=7, onset="uniform")
        fast = _summary(Scheme.DRAIN, "mesh", 0.10, dense=False,
                        fault_schedule=schedule)
        dense = _summary(Scheme.DRAIN, "mesh", 0.10, dense=True,
                         fault_schedule=schedule)
        assert fast.as_dict() == dense.as_dict()
        assert fast.faults_applied >= 1
        assert fast.faults_applied == dense.faults_applied
        assert fast.packets_lost == dense.packets_lost


class TestScratchDiscipline:
    """Reusable scratch must stay per-instance and per-trial."""

    def test_kernel_files_carry_no_lint_pragmas(self):
        # The active-set kernel must pass the determinism lint on its own
        # merits: an audited-exception pragma in these files would hide
        # exactly the class of scratch-state bug this suite polices.
        kernel = [
            "src/repro/network/fabric.py",
            "src/repro/network/vectorized.py",
            "src/repro/network/index.py",
            "src/repro/network/wormhole.py",
            "src/repro/network/deadlock.py",
            "src/repro/bench/cases.py",
            "src/repro/bench/compare.py",
        ]
        for path in kernel:
            with open(path, "r", encoding="utf-8") as handle:
                assert "# det: allow" not in handle.read(), path
        assert lint_paths(kernel) == []

    def test_lint_clean_repo_wide(self):
        assert lint_paths(["src/repro"]) == []

    def test_no_shared_scratch_between_instances(self):
        from repro.network.fabric import Fabric
        from repro.network.index import FabricIndex
        from repro.router.packet import Packet
        from repro.routing.adaptive import AdaptiveMinimalRouting

        def build():
            index = FabricIndex(make_mesh(4, 4))
            config = scheme_config(Scheme.DRAIN, TINY, seed=1)
            return Fabric(index, config, AdaptiveMinimalRouting(index),
                          escape_mode="drain")

        a, b = build(), build()
        assert a._cand_cache is not b._cand_cache
        assert a._buf is not b._buf
        assert a._port_occ is not b._port_occ
        assert a._router_occ is not b._router_occ
        # Routing memos must key per-fabric: warming one cache leaves the
        # other untouched.
        a.candidate_links(0, Packet(0, 0, 5, gen_cycle=0))
        assert len(a._cand_cache) == 1
        assert len(b._cand_cache) == 0

    def test_back_to_back_trials_bit_identical_in_process(self):
        # Two identical trials in one interpreter: any scratch leaking
        # across runs (module-level caches, class attributes) would make
        # the second differ from the first.
        first = _summary(Scheme.DRAIN, "irregular", 0.10, dense=False)
        second = _summary(Scheme.DRAIN, "irregular", 0.10, dense=False)
        assert first.as_dict() == second.as_dict()


def _sim(scheme: Scheme, topo_kind: str, rate: float, *, engine=None,
         config=None, flow_control="vct", fault_schedule=None):
    """Like :func:`_summary` but returns the whole Simulation object."""
    topology, width = _topology(topo_kind)
    if config is None:
        config = scheme_config(scheme, TINY, seed=1)
    traffic = SyntheticTraffic(
        pattern_by_name("uniform_random", topology.num_nodes, width),
        rate,
        random.Random(derive_seed(1, "traffic", "uniform_random", rate)),
    )
    sim = Simulation(
        topology, config, traffic,
        flow_control=flow_control,
        fault_schedule=fault_schedule,
        engine=engine,
    )
    sim.run(TINY.total_cycles, warmup=TINY.warmup)
    return sim


class TestEngineMatrix:
    """The vectorized engine's selection, fallback and invalidation rules."""

    def test_vectorized_engages_and_matches_dense(self):
        sim = _sim(Scheme.DRAIN, "mesh", SATURATION_RATE, engine="vectorized")
        assert sim.fabric.engine_name == "vectorized"
        assert sim.fabric.engine_fallback_reason is None
        dense = _summary(Scheme.DRAIN, "mesh", SATURATION_RATE, dense=True)
        assert sim.stats.as_dict() == dense.as_dict()
        # Incremental availability masks must end the run exact.
        assert sim.fabric._engine.audit_masks() == []

    def test_vectorized_mid_run_fault_recovery(self):
        # Faults land mid-measurement: the engine must rebuild its dense
        # candidate tables on each fault-epoch bump and stay bit-identical
        # to the reference sweep throughout.
        events = (
            FaultEvent(cycle=150, kind="link", target=(5, 6)),
            FaultEvent(cycle=250, kind="link", target=(9, 10)),
        )
        schedule = FaultSchedule(events=events, seed=7, onset="uniform")
        sim = _sim(Scheme.DRAIN, "mesh", 0.10, engine="vectorized",
                   fault_schedule=schedule)
        dense = _summary(Scheme.DRAIN, "mesh", 0.10, dense=True,
                         fault_schedule=schedule)
        assert sim.fabric.engine_name == "vectorized"
        assert sim.stats.as_dict() == dense.as_dict()
        assert sim.stats.faults_applied >= 1
        engine = sim.fabric._engine
        # Initial build plus one rebuild per fault epoch.
        assert engine.rebuilds >= 1 + sim.stats.faults_applied
        assert engine.tables.epoch == sim.index.fault_epoch
        assert engine.audit_masks() == []

    def test_stateful_routing_selects_scalar_silently(self):
        # UPDOWN's routing function is stateful (per-packet phase bit):
        # requesting the vectorized engine must not raise — the fabric
        # silently runs the scalar path and records why.
        sim = _sim(Scheme.UPDOWN, "mesh", 0.10, engine="vectorized")
        assert sim.fabric.engine_name == "scalar"
        assert "stateful" in sim.fabric.engine_fallback_reason
        dense = _summary(Scheme.UPDOWN, "mesh", 0.10, dense=True)
        assert sim.stats.as_dict() == dense.as_dict()

    def test_escape_vc_on_irregular_falls_back(self):
        # ESCAPE_VC on an irregular topology uses an up*/down* escape
        # function — stateful, so the whole fabric takes the scalar path.
        sim = _sim(Scheme.ESCAPE_VC, "irregular", 0.10, engine="vectorized")
        assert sim.fabric.engine_name == "scalar"
        assert "stateful" in sim.fabric.engine_fallback_reason

    def test_structural_fallbacks(self):
        import dataclasses

        base = scheme_config(Scheme.DRAIN, TINY, seed=1)
        # vcs_per_vn != 2: the kernel's VC unroll does not apply.
        cfg = dataclasses.replace(
            base, network=dataclasses.replace(base.network, vcs_per_vn=3))
        sim = _sim(Scheme.DRAIN, "mesh", 0.10, engine="vectorized",
                   config=cfg)
        assert sim.fabric.engine_name == "scalar"
        assert "vcs_per_vn" in sim.fabric.engine_fallback_reason
        # Multi-flit packets serialise transfers over several cycles.
        cfg = dataclasses.replace(
            base,
            network=dataclasses.replace(base.network, packet_size_flits=2))
        sim = _sim(Scheme.DRAIN, "mesh", 0.10, engine="vectorized",
                   config=cfg)
        assert sim.fabric.engine_name == "scalar"
        assert "multi-flit" in sim.fabric.engine_fallback_reason

    def test_wormhole_reports_scalar(self):
        # The wormhole fabric is a standalone pipeline; the engine knob
        # never applies and the fabric says so through the same attributes.
        sim = _sim(Scheme.DRAIN, "mesh", 0.10, engine="vectorized",
                   flow_control="wormhole")
        assert sim.fabric.engine_name == "scalar"
        assert "wormhole" in sim.fabric.engine_fallback_reason

    def test_scalar_request_is_honoured(self):
        sim = _sim(Scheme.DRAIN, "mesh", 0.10, engine="scalar")
        assert sim.fabric.engine_name == "scalar"
        assert sim.fabric.engine_fallback_reason is None
        assert sim.fabric._engine is None

    def test_engine_knob_roundtrip_and_validation(self):
        import dataclasses

        import pytest as _pytest

        from repro.core.configio import config_from_dict, config_to_dict

        base = scheme_config(Scheme.DRAIN, TINY, seed=1)
        cfg = dataclasses.replace(base, engine="vectorized")
        assert config_from_dict(config_to_dict(cfg)) == cfg
        # Old archives without the knob load as "auto".
        payload = config_to_dict(base)
        payload.pop("engine")
        assert config_from_dict(payload).engine == "auto"
        with _pytest.raises(ValueError):
            dataclasses.replace(base, engine="simd")
