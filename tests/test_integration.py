"""Cross-module integration tests: the paper's correctness guarantees
exercised end-to-end on wedged networks."""

import random

import pytest

from repro.core.config import (
    DrainConfig,
    NetworkConfig,
    Scheme,
    SimConfig,
)
from repro.core.simulator import Simulation
from repro.router.packet import MessageClass, Packet
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh
from repro.traffic.synthetic import SyntheticTraffic, UniformRandom


class BurstTraffic(SyntheticTraffic):
    """Bernoulli traffic that stops generating after ``stop_at`` cycles.

    Used to test eventual delivery: after the burst, the network must
    empty completely even if the burst wedged it.
    """

    def __init__(self, *args, stop_at=200, **kwargs):
        super().__init__(*args, **kwargs)
        self.stop_at = stop_at

    def generate(self, fabric, cycle):
        if cycle < self.stop_at:
            super().generate(fabric, cycle)
        else:
            for node in range(self.pattern.num_nodes):
                backlog = self._backlog[node]
                while backlog and fabric.offer_packet(backlog[0]):
                    backlog.popleft()

    def fully_drained(self, fabric) -> bool:
        if self.backlog_size():
            return False
        if fabric.packets_in_network:
            return False
        return all(
            not q for queues in fabric.inj_queues for q in queues
        )


def run_until_drained(sim, traffic, max_cycles):
    for _ in range(max_cycles):
        sim.step()
        if sim.fabric.cycle > traffic.stop_at and traffic.fully_drained(sim.fabric):
            return True
    return False


class TestEventualDelivery:
    """Section III-D: every packet is eventually delivered under DRAIN."""

    @pytest.mark.parametrize("sticky", [False, True], ids=["relaxed", "sticky"])
    def test_drain_empties_wedged_network(self, faulty8, sticky):
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=256, full_drain_period=8,
                              escape_sticky=sticky),
        )
        traffic = BurstTraffic(
            UniformRandom(64), 0.5, random.Random(5), stop_at=200
        )
        sim = Simulation(faulty8, config, traffic)
        assert run_until_drained(sim, traffic, 80_000)
        assert sim.stats.packets_ejected == traffic.generated

    def test_drain_single_vc_still_delivers(self, faulty4):
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=1),
            drain=DrainConfig(epoch=128, full_drain_period=8),
        )
        traffic = BurstTraffic(
            UniformRandom(16), 0.4, random.Random(7), stop_at=150
        )
        sim = Simulation(faulty4, config, traffic)
        assert run_until_drained(sim, traffic, 80_000)
        assert sim.stats.packets_ejected == traffic.generated

    def test_without_drain_wedge_persists(self, faulty8):
        """Control experiment: the same burst with scheme NONE leaves
        packets stuck forever (this is what DRAIN is fixing)."""
        config = SimConfig(
            scheme=Scheme.NONE,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
        )
        traffic = BurstTraffic(
            UniformRandom(64), 0.5, random.Random(5), stop_at=200
        )
        sim = Simulation(faulty8, config, traffic)
        drained = run_until_drained(sim, traffic, 20_000)
        assert not drained
        assert sim.fabric.packets_in_network > 0

    def test_spin_also_empties_wedged_network(self, faulty8):
        from repro.core.config import SpinConfig

        config = SimConfig(
            scheme=Scheme.SPIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            spin=SpinConfig(timeout=64, spin_interval=8),
        )
        traffic = BurstTraffic(
            UniformRandom(64), 0.5, random.Random(5), stop_at=200
        )
        sim = Simulation(faulty8, config, traffic)
        assert run_until_drained(sim, traffic, 80_000)


class TestMisrouteAccounting:
    def test_drain_misroutes_recover(self, mesh8):
        """Misrouted packets still reach their destinations."""
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=100),
        )
        traffic = BurstTraffic(
            UniformRandom(64), 0.1, random.Random(9), stop_at=400
        )
        sim = Simulation(mesh8, config, traffic)
        assert run_until_drained(sim, traffic, 40_000)
        assert sim.stats.misroutes > 0  # drains happened mid-flight
        assert sim.stats.packets_ejected == traffic.generated


class TestFaultSweepStability:
    @pytest.mark.parametrize("faults", [0, 4, 8, 12])
    def test_drain_works_across_fault_counts(self, faults):
        base = make_mesh(8, 8)
        topo = (
            inject_link_faults(base, faults, random.Random(faults + 1))
            if faults
            else base
        )
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=512),
        )
        traffic = SyntheticTraffic(UniformRandom(64), 0.05, random.Random(3))
        sim = Simulation(topo, config, traffic)
        stats = sim.run(2000, warmup=400)
        assert stats.packets_ejected > 2000
        assert sim.throughput() == pytest.approx(0.05, rel=0.2)
