"""Unit tests for the regular topology builders."""

import pytest

from repro.topology.mesh import coords_of, make_mesh, make_ring, make_torus, node_at


class TestMesh:
    def test_4x4_counts(self):
        topo = make_mesh(4, 4)
        assert topo.num_nodes == 16
        assert topo.num_edges == 24  # 2 * 4 * 3

    def test_8x8_counts(self):
        topo = make_mesh(8, 8)
        assert topo.num_nodes == 64
        assert topo.num_edges == 112  # 2 * 8 * 7

    def test_rectangular_mesh(self):
        topo = make_mesh(3, 2)
        assert topo.num_nodes == 6
        assert topo.num_edges == 7

    def test_corner_degree(self):
        topo = make_mesh(4, 4)
        assert topo.degree(0) == 2
        assert topo.degree(node_at(3, 3, 4)) == 2

    def test_center_degree(self):
        topo = make_mesh(4, 4)
        assert topo.degree(node_at(1, 1, 4)) == 4

    def test_coordinates_recorded(self):
        topo = make_mesh(4, 4)
        assert topo.coordinates[node_at(2, 3, 4)] == (2, 3)

    def test_connected(self):
        assert make_mesh(5, 3).is_connected()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_mesh(1, 1)

    def test_node_at_roundtrip(self):
        for node in range(12):
            x, y = coords_of(node, 4)
            assert node_at(x, y, 4) == node


class TestTorus:
    def test_counts(self):
        topo = make_torus(4, 4)
        assert topo.num_nodes == 16
        assert topo.num_edges == 32  # every node degree 4

    def test_all_degree_four(self):
        topo = make_torus(4, 4)
        assert all(topo.degree(n) == 4 for n in topo.nodes)

    def test_wraparound_links_exist(self):
        topo = make_torus(4, 4)
        assert topo.has_edge(node_at(0, 0, 4), node_at(3, 0, 4))
        assert topo.has_edge(node_at(0, 0, 4), node_at(0, 3, 4))

    def test_diameter_half_of_mesh(self):
        assert make_torus(4, 4).diameter() == 4

    def test_dimension_two_rejected(self):
        with pytest.raises(ValueError):
            make_torus(2, 4)


class TestRing:
    def test_counts(self):
        topo = make_ring(8)
        assert topo.num_nodes == 8
        assert topo.num_edges == 8

    def test_all_degree_two(self):
        topo = make_ring(6)
        assert all(topo.degree(n) == 2 for n in topo.nodes)

    def test_diameter(self):
        assert make_ring(8).diameter() == 4
        assert make_ring(7).diameter() == 3

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            make_ring(2)
