"""Differential parity fuzzing across the engine matrix.

The fabric ships three movement engines — the dense reference sweep
(``dense=True``), the scalar active-set kernel and the vectorized
saturation kernel — that are contractually bit-identical (see DESIGN.md,
"Vectorized kernel"). The dense-parity suite pins hand-picked scenarios;
this layer sweeps a pinned-seed randomized configuration pool across
scheme x topology x load x fault schedule and asserts full
``NetworkStats.as_dict()`` equality between all three engines for every
configuration.

On the first divergence the test dumps a minimized repro — the full
serialized :class:`SimConfig`, the topology kind, rate, fault schedule
and seed — both into the assertion message and as JSON next to pytest's
tmp dir, so a failure can be replayed without re-running the sweep.

The pool is deterministic: a fixed master seed drives every per-config
seed draw, so CI and local runs fuzz the exact same configurations.

A second lane covers cross-trial lockstep batching (DESIGN.md,
"Cross-trial lockstep batching"): pinned batchable groups run batch-of-8
through the ``batch.lockstep`` runner and must reproduce each member's
solo ``execute_trial`` result bit-for-bit, including mixed groups with
an evicted stateful-routing member and members carrying mid-run fault
schedules. Divergences dump a minimized repro the same way.
"""

from __future__ import annotations

import json
import random
import tempfile
from pathlib import Path

from repro.core.config import Scheme
from repro.core.configio import config_to_dict
from repro.core.rng import derive_seed
from repro.core.simulator import Simulation
from repro.experiments.common import (
    Scale,
    scheme_config,
    synthetic_trial_for,
)
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.harness.trials import (
    batch_group_key,
    batch_payload,
    execute_trial,
    fault_recovery_trial,
)
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh, make_torus

from repro.traffic.synthetic import SyntheticTraffic, pattern_by_name

#: Tiny but non-trivial: saturates a 4x4 at the high rate, crosses two
#: drain epochs and several spin timeouts inside the measured window.
FUZZ_SCALE = Scale(
    warmup=80,
    measure=240,
    fault_patterns=1,
    sweep_rates=(0.05,),
    epoch=96,
    spin_timeout=48,
)

LOAD_POINTS = (0.02, 0.12, 0.30)  # low / near-saturation / saturation

#: Schemes whose routing stack survives a runtime link fault (the injector
#: rebuilds every routing function; DOR and up*/down* escape functions have
#: no rebuild story, so ESCAPE_VC/UPDOWN configs fuzz fault-free only).
FAULT_SAFE_SCHEMES = (Scheme.DRAIN, Scheme.NONE)

MASTER_SEED = 0xD5A1B


def _fault_schedule(seed: int) -> FaultSchedule:
    # Links (5,6) and (9,10) exist in both the 4x4 mesh and torus; both
    # events land inside the measured window, exercising the engines'
    # fault-epoch table invalidation mid-run.
    return FaultSchedule(
        events=(
            FaultEvent(cycle=120, kind="link", target=(5, 6)),
            FaultEvent(cycle=200, kind="link", target=(9, 10)),
        ),
        seed=seed,
        onset="uniform",
    )


def _build_pool():
    """The pinned fuzz pool: >= 25 deterministic configurations."""
    master = random.Random(MASTER_SEED)
    pool = []

    def add(scheme, topo, rate, faults):
        pool.append({
            "scheme": scheme,
            "topo": topo,
            "rate": rate,
            "faults": faults,
            "seed": master.randrange(1, 2 ** 31),
        })

    # One load point per (scheme, topology), chosen by the master RNG.
    for scheme in (Scheme.DRAIN, Scheme.SPIN, Scheme.ESCAPE_VC,
                   Scheme.STATIC_BUBBLE, Scheme.NONE):
        for topo in ("mesh", "torus", "irregular"):
            add(scheme, topo, master.choice(LOAD_POINTS), None)
    # Saturation sweep: every scheme on the mesh at the saturation point.
    for scheme in (Scheme.DRAIN, Scheme.SPIN, Scheme.ESCAPE_VC,
                   Scheme.STATIC_BUBBLE, Scheme.NONE, Scheme.IDEAL,
                   Scheme.UPDOWN):
        add(scheme, "mesh", 0.30, None)
    # Mid-run link faults under load (engines must rebuild their tables).
    for scheme in FAULT_SAFE_SCHEMES:
        for topo in ("mesh", "torus"):
            for rate in (0.12, 0.30):
                add(scheme, topo, rate, "links")
    return pool


POOL = _build_pool()


def _topology(kind: str, seed: int):
    if kind == "mesh":
        return make_mesh(4, 4), 4
    if kind == "torus":
        return make_torus(4, 4), 4
    # Irregular: a 4x4 mesh with two pinned-seed link faults baked in.
    return inject_link_faults(make_mesh(4, 4), 2,
                              random.Random(seed % 97 + 1)), None


def _run(entry, dense, engine):
    topology, width = _topology(entry["topo"], entry["seed"])
    config = scheme_config(entry["scheme"], FUZZ_SCALE, seed=entry["seed"])
    traffic = SyntheticTraffic(
        pattern_by_name("uniform_random", topology.num_nodes, width),
        entry["rate"],
        random.Random(derive_seed(entry["seed"], "traffic", "uniform_random",
                                  entry["rate"])),
    )
    schedule = None
    if entry["faults"] is not None:
        schedule = _fault_schedule(entry["seed"] & 0xFFFF)
    sim = Simulation(topology, config, traffic, dense=dense, engine=engine,
                     fault_schedule=schedule)
    sim.run(FUZZ_SCALE.total_cycles, warmup=FUZZ_SCALE.warmup)
    return sim


def _repro_blob(entry, engines):
    topology, _ = _topology(entry["topo"], entry["seed"])
    config = scheme_config(entry["scheme"], FUZZ_SCALE, seed=entry["seed"])
    return {
        "config": config_to_dict(config),
        "topology": entry["topo"],
        "topology_name": topology.name,
        "rate": entry["rate"],
        "fault_schedule": entry["faults"],
        "seed": entry["seed"],
        "warmup": FUZZ_SCALE.warmup,
        "cycles": FUZZ_SCALE.total_cycles,
        "engines_compared": engines,
    }


class TestParityFuzz:
    def test_pool_is_pinned_and_large_enough(self):
        # The pool must never silently shrink or reorder: the master seed
        # pins both membership and per-config seeds.
        assert len(POOL) >= 25
        assert POOL == _build_pool()
        # Same (scheme, topo, rate) may legitimately recur with a fresh
        # seed; the seeded tuple must be unique.
        assert len({(e["scheme"], e["topo"], e["rate"], e["faults"],
                     e["seed"]) for e in POOL}) == len(POOL)

    def test_differential_sweep(self):
        vectorized_hits = 0
        for i, entry in enumerate(POOL):
            dense = _run(entry, dense=True, engine=None)
            scalar = _run(entry, dense=False, engine="scalar")
            vector = _run(entry, dense=False, engine="vectorized")
            if vector.fabric.engine_name == "vectorized":
                vectorized_hits += 1
            results = {
                "dense": dense.stats.as_dict(),
                "scalar": scalar.stats.as_dict(),
                "vectorized": vector.stats.as_dict(),
            }
            if not (results["dense"] == results["scalar"]
                    == results["vectorized"]):
                blob = _repro_blob(entry, list(results))
                blob["resolved_engine"] = vector.fabric.engine_name
                blob["fallback_reason"] = vector.fabric.engine_fallback_reason
                path = Path(tempfile.gettempdir()) / (
                    f"parity_fuzz_repro_{i}.json"
                )
                path.write_text(json.dumps(blob, indent=2, sort_keys=True))
                diverging = [
                    key for key in results["dense"]
                    if not (results["dense"][key] == results["scalar"][key]
                            == results["vectorized"][key])
                ]
                raise AssertionError(
                    f"engine divergence on pool entry {i} "
                    f"(fields: {diverging}); repro written to {path}:\n"
                    + json.dumps(blob, indent=2, sort_keys=True)
                )
        # The sweep is vacuous if the vectorized engine never engaged.
        assert vectorized_hits >= len(POOL) // 2

    def test_fault_configs_apply_faults(self):
        # The fault entries must actually exercise the mid-run rebuild.
        entry = next(e for e in POOL if e["faults"] is not None)
        sim = _run(entry, dense=False, engine="vectorized")
        assert sim.stats.faults_applied >= 1
        assert sim.fabric.engine_name == "vectorized"
        assert sim.fabric._engine.rebuilds >= 3  # initial + one per epoch


# ----------------------------------------------------------------------
# Batched lane: lockstep batches vs their solo reference runs
# ----------------------------------------------------------------------
#: Smaller than FUZZ_SCALE (the batch lane runs every config twice) but
#: still crossing a drain epoch and a spin timeout inside the window.
BATCH_SCALE = Scale(warmup=40, measure=120, epoch=96, spin_timeout=48)
BATCH_SIZE = 8


def _build_batch_groups():
    """Pinned batchable groups: >= 10 configs over two (scheme, topo) cells.

    Every group shares one :func:`batch_group_key` (same topology, scheme
    and geometry), while seeds and rates vary per member — exactly the
    shape the sweep harness batches.
    """
    master = random.Random(MASTER_SEED ^ 0xBA7C4)
    groups = []
    for scheme, topo in ((Scheme.DRAIN, "mesh"), (Scheme.SPIN, "torus")):
        topology = make_mesh(4, 4) if topo == "mesh" else make_torus(4, 4)
        groups.append([
            synthetic_trial_for(
                topology, scheme, master.choice(LOAD_POINTS), BATCH_SCALE,
                mesh_width=4, seed=master.randrange(1, 2 ** 31),
            )
            for _ in range(BATCH_SIZE)
        ])
    return groups


def _dump_batch_repro(spec, index, group_index):
    """Minimized repro for one diverging batch member, written to disk."""
    blob = {
        "runner": spec.runner,
        "params": dict(spec.params),
        "group": group_index,
        "index_in_batch": index,
        "replay": "execute_trial(spec) vs "
                  "execute_trial(batch_payload(group))['results'][index]",
    }
    path = Path(tempfile.gettempdir()) / (
        f"parity_fuzz_batch_repro_{group_index}_{index}.json"
    )
    path.write_text(json.dumps(blob, indent=2, sort_keys=True))
    return blob, path


class TestBatchedParityFuzz:
    def test_batch_groups_are_pinned_and_compatible(self):
        groups = _build_batch_groups()
        assert sum(len(g) for g in groups) >= 10
        assert [
            [s.digest() for s in g] for g in groups
        ] == [[s.digest() for s in g] for g in _build_batch_groups()]
        for group in groups:
            keys = {batch_group_key(s) for s in group}
            assert len(keys) == 1 and None not in keys
        # The two groups must never merge (different scheme/topology).
        assert batch_group_key(groups[0][0]) != batch_group_key(groups[1][0])

    def test_batched_groups_match_solo(self):
        for gi, group in enumerate(_build_batch_groups()):
            solo = [execute_trial(spec) for spec in group]
            envelope = execute_trial(batch_payload(group))
            # Fully vectorizable groups must batch wholesale — an eviction
            # here means the perf win silently evaporated.
            assert envelope["evictions"] == []
            assert len(envelope["results"]) == len(group)
            for i, (spec, expected) in enumerate(zip(group, solo)):
                got = envelope["results"][i]
                if got != expected:
                    blob, path = _dump_batch_repro(spec, i, gi)
                    diverging = sorted(
                        set(expected) ^ set(got)
                        | {k for k in expected
                           if k in got and expected[k] != got[k]}
                    )
                    raise AssertionError(
                        f"batched trial diverged from its solo run "
                        f"(group {gi}, member {i}, fields: {diverging}); "
                        f"repro written to {path}:\n"
                        + json.dumps(blob, indent=2, sort_keys=True)
                    )

    def test_mixed_batch_evicts_stateful_routing(self):
        # A stateful-routing spec spliced into a vectorizable group (only
        # constructible via batch_payload — the harness keys them apart)
        # must be evicted to a solo rerun, with the engine's fallback
        # reason recorded, and every member must still match its solo run.
        drain = _build_batch_groups()[0][:4]
        intruder = synthetic_trial_for(
            make_mesh(4, 4), Scheme.UPDOWN, 0.12, BATCH_SCALE,
            mesh_width=4, seed=0xE71C7,
        )
        group = drain[:2] + [intruder] + drain[2:]
        envelope = execute_trial(batch_payload(group))
        assert [e["index"] for e in envelope["evictions"]] == [2]
        assert "stateful" in envelope["evictions"][0]["reason"]
        for spec, got in zip(group, envelope["results"]):
            assert got == execute_trial(spec)

    def test_batched_fault_recovery_matches_solo(self):
        # Mid-run faults stay per-trial inside a batch: each member owns
        # its schedule, applies it at its own cycles, and retires with the
        # same recovery summary as its solo run.
        scale = Scale(warmup=40, measure=200, epoch=96, spin_timeout=48)
        master = random.Random(MASTER_SEED ^ 0xFA017)
        topology = make_mesh(4, 4)
        group = []
        for _ in range(4):
            seed = master.randrange(1, 2 ** 31)
            config = scheme_config(Scheme.DRAIN, scale, seed=seed)
            group.append(fault_recovery_trial(
                topology, config, master.choice(LOAD_POINTS),
                cycles=scale.total_cycles, warmup=scale.warmup,
                schedule=_fault_schedule(seed & 0xFFFF), mesh_width=4,
            ))
        assert len({batch_group_key(s) for s in group}) == 1
        solo = [execute_trial(spec) for spec in group]
        envelope = execute_trial(batch_payload(group))
        assert envelope["evictions"] == []
        assert envelope["results"] == solo
        # Both fault events (cycles 120 and 200) land inside the window.
        for result in envelope["results"]:
            assert result["faults"]["faults_applied"] >= 2
