"""Differential parity fuzzing across the engine matrix.

The fabric ships three movement engines — the dense reference sweep
(``dense=True``), the scalar active-set kernel and the vectorized
saturation kernel — that are contractually bit-identical (see DESIGN.md,
"Vectorized kernel"). The dense-parity suite pins hand-picked scenarios;
this layer sweeps a pinned-seed randomized configuration pool across
scheme x topology x load x fault schedule and asserts full
``NetworkStats.as_dict()`` equality between all three engines for every
configuration.

On the first divergence the test dumps a minimized repro — the full
serialized :class:`SimConfig`, the topology kind, rate, fault schedule
and seed — both into the assertion message and as JSON next to pytest's
tmp dir, so a failure can be replayed without re-running the sweep.

The pool is deterministic: a fixed master seed drives every per-config
seed draw, so CI and local runs fuzz the exact same configurations.
"""

from __future__ import annotations

import json
import random
import tempfile
from pathlib import Path

from repro.core.config import Scheme
from repro.core.configio import config_to_dict
from repro.core.rng import derive_seed
from repro.core.simulator import Simulation
from repro.experiments.common import Scale, scheme_config
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh, make_torus

from repro.traffic.synthetic import SyntheticTraffic, pattern_by_name

#: Tiny but non-trivial: saturates a 4x4 at the high rate, crosses two
#: drain epochs and several spin timeouts inside the measured window.
FUZZ_SCALE = Scale(
    warmup=80,
    measure=240,
    fault_patterns=1,
    sweep_rates=(0.05,),
    epoch=96,
    spin_timeout=48,
)

LOAD_POINTS = (0.02, 0.12, 0.30)  # low / near-saturation / saturation

#: Schemes whose routing stack survives a runtime link fault (the injector
#: rebuilds every routing function; DOR and up*/down* escape functions have
#: no rebuild story, so ESCAPE_VC/UPDOWN configs fuzz fault-free only).
FAULT_SAFE_SCHEMES = (Scheme.DRAIN, Scheme.NONE)

MASTER_SEED = 0xD5A1B


def _fault_schedule(seed: int) -> FaultSchedule:
    # Links (5,6) and (9,10) exist in both the 4x4 mesh and torus; both
    # events land inside the measured window, exercising the engines'
    # fault-epoch table invalidation mid-run.
    return FaultSchedule(
        events=(
            FaultEvent(cycle=120, kind="link", target=(5, 6)),
            FaultEvent(cycle=200, kind="link", target=(9, 10)),
        ),
        seed=seed,
        onset="uniform",
    )


def _build_pool():
    """The pinned fuzz pool: >= 25 deterministic configurations."""
    master = random.Random(MASTER_SEED)
    pool = []

    def add(scheme, topo, rate, faults):
        pool.append({
            "scheme": scheme,
            "topo": topo,
            "rate": rate,
            "faults": faults,
            "seed": master.randrange(1, 2 ** 31),
        })

    # One load point per (scheme, topology), chosen by the master RNG.
    for scheme in (Scheme.DRAIN, Scheme.SPIN, Scheme.ESCAPE_VC,
                   Scheme.STATIC_BUBBLE, Scheme.NONE):
        for topo in ("mesh", "torus", "irregular"):
            add(scheme, topo, master.choice(LOAD_POINTS), None)
    # Saturation sweep: every scheme on the mesh at the saturation point.
    for scheme in (Scheme.DRAIN, Scheme.SPIN, Scheme.ESCAPE_VC,
                   Scheme.STATIC_BUBBLE, Scheme.NONE, Scheme.IDEAL,
                   Scheme.UPDOWN):
        add(scheme, "mesh", 0.30, None)
    # Mid-run link faults under load (engines must rebuild their tables).
    for scheme in FAULT_SAFE_SCHEMES:
        for topo in ("mesh", "torus"):
            for rate in (0.12, 0.30):
                add(scheme, topo, rate, "links")
    return pool


POOL = _build_pool()


def _topology(kind: str, seed: int):
    if kind == "mesh":
        return make_mesh(4, 4), 4
    if kind == "torus":
        return make_torus(4, 4), 4
    # Irregular: a 4x4 mesh with two pinned-seed link faults baked in.
    return inject_link_faults(make_mesh(4, 4), 2,
                              random.Random(seed % 97 + 1)), None


def _run(entry, dense, engine):
    topology, width = _topology(entry["topo"], entry["seed"])
    config = scheme_config(entry["scheme"], FUZZ_SCALE, seed=entry["seed"])
    traffic = SyntheticTraffic(
        pattern_by_name("uniform_random", topology.num_nodes, width),
        entry["rate"],
        random.Random(derive_seed(entry["seed"], "traffic", "uniform_random",
                                  entry["rate"])),
    )
    schedule = None
    if entry["faults"] is not None:
        schedule = _fault_schedule(entry["seed"] & 0xFFFF)
    sim = Simulation(topology, config, traffic, dense=dense, engine=engine,
                     fault_schedule=schedule)
    sim.run(FUZZ_SCALE.total_cycles, warmup=FUZZ_SCALE.warmup)
    return sim


def _repro_blob(entry, engines):
    topology, _ = _topology(entry["topo"], entry["seed"])
    config = scheme_config(entry["scheme"], FUZZ_SCALE, seed=entry["seed"])
    return {
        "config": config_to_dict(config),
        "topology": entry["topo"],
        "topology_name": topology.name,
        "rate": entry["rate"],
        "fault_schedule": entry["faults"],
        "seed": entry["seed"],
        "warmup": FUZZ_SCALE.warmup,
        "cycles": FUZZ_SCALE.total_cycles,
        "engines_compared": engines,
    }


class TestParityFuzz:
    def test_pool_is_pinned_and_large_enough(self):
        # The pool must never silently shrink or reorder: the master seed
        # pins both membership and per-config seeds.
        assert len(POOL) >= 25
        assert POOL == _build_pool()
        # Same (scheme, topo, rate) may legitimately recur with a fresh
        # seed; the seeded tuple must be unique.
        assert len({(e["scheme"], e["topo"], e["rate"], e["faults"],
                     e["seed"]) for e in POOL}) == len(POOL)

    def test_differential_sweep(self):
        vectorized_hits = 0
        for i, entry in enumerate(POOL):
            dense = _run(entry, dense=True, engine=None)
            scalar = _run(entry, dense=False, engine="scalar")
            vector = _run(entry, dense=False, engine="vectorized")
            if vector.fabric.engine_name == "vectorized":
                vectorized_hits += 1
            results = {
                "dense": dense.stats.as_dict(),
                "scalar": scalar.stats.as_dict(),
                "vectorized": vector.stats.as_dict(),
            }
            if not (results["dense"] == results["scalar"]
                    == results["vectorized"]):
                blob = _repro_blob(entry, list(results))
                blob["resolved_engine"] = vector.fabric.engine_name
                blob["fallback_reason"] = vector.fabric.engine_fallback_reason
                path = Path(tempfile.gettempdir()) / (
                    f"parity_fuzz_repro_{i}.json"
                )
                path.write_text(json.dumps(blob, indent=2, sort_keys=True))
                diverging = [
                    key for key in results["dense"]
                    if not (results["dense"][key] == results["scalar"][key]
                            == results["vectorized"][key])
                ]
                raise AssertionError(
                    f"engine divergence on pool entry {i} "
                    f"(fields: {diverging}); repro written to {path}:\n"
                    + json.dumps(blob, indent=2, sort_keys=True)
                )
        # The sweep is vacuous if the vectorized engine never engaged.
        assert vectorized_hits >= len(POOL) // 2

    def test_fault_configs_apply_faults(self):
        # The fault entries must actually exercise the mid-run rebuild.
        entry = next(e for e in POOL if e["faults"] is not None)
        sim = _run(entry, dense=False, engine="vectorized")
        assert sim.stats.faults_applied >= 1
        assert sim.fabric.engine_name == "vectorized"
        assert sim.fabric._engine.rebuilds >= 3  # initial + one per epoch
