"""Tests for chiplet systems and random topologies (Section VI builders)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drain.path import euler_drain_path
from repro.topology.chiplet import make_chiplet_system, make_dual_chiplet
from repro.topology.randomized import make_random_regular, make_small_world


class TestChipletSystem:
    def test_node_count(self):
        system = make_chiplet_system(2, 2, num_chiplets=4, interposer_width=2)
        assert system.topology.num_nodes == 4 * 4 + 4

    def test_connected(self):
        system = make_chiplet_system(3, 2, num_chiplets=3)
        assert system.topology.is_connected()

    def test_boundary_links_counted(self):
        system = make_chiplet_system(2, 2, num_chiplets=4, links_per_chiplet=2)
        assert len(system.boundary_links) == 8
        for a, b in system.boundary_links:
            assert system.topology.has_edge(a, b)
            assert system.is_boundary_link(a, b)
            assert system.is_boundary_link(b, a)

    def test_chiplet_of(self):
        system = make_chiplet_system(2, 2, num_chiplets=2, interposer_width=2)
        assert system.chiplet_of(0) == 0
        assert system.chiplet_of(4) == 1
        assert system.chiplet_of(8) is None  # interposer node

    def test_chiplets_internally_meshed(self):
        system = make_chiplet_system(2, 2, num_chiplets=2)
        topo = system.topology
        # Chiplet 0 is nodes 0..3 as a 2x2 mesh: 4 internal links.
        internal = [
            (a, b) for a, b in topo.bidirectional_links()
            if a < 4 and b < 4
        ]
        assert len(internal) == 4

    def test_drain_path_covers_composed_network(self):
        """Section VI's point: the drain path exists for the composition."""
        system = make_chiplet_system(2, 2, num_chiplets=4, links_per_chiplet=1)
        path = euler_drain_path(system.topology)
        assert len(path) == 2 * system.topology.num_edges

    def test_validation(self):
        with pytest.raises(ValueError):
            make_chiplet_system(num_chiplets=0)
        with pytest.raises(ValueError):
            make_chiplet_system(links_per_chiplet=0)
        with pytest.raises(ValueError):
            make_chiplet_system(2, 2, links_per_chiplet=5)


class TestDualChiplet:
    def test_shape(self):
        system = make_dual_chiplet(3, 3, bridges=2)
        assert system.topology.num_nodes == 18
        assert len(system.boundary_links) == 2
        assert system.topology.is_connected()

    def test_single_bridge_is_critical(self):
        system = make_dual_chiplet(3, 3, bridges=1)
        a, b = system.boundary_links[0]
        assert system.topology.is_critical_edge(a, b)

    def test_drain_path_crosses_bridge(self):
        system = make_dual_chiplet(2, 2, bridges=1)
        path = euler_drain_path(system.topology)
        a, b = system.boundary_links[0]
        crossings = [
            l for l in path.links
            if {l.src, l.dst} == {a, b}
        ]
        assert len(crossings) == 2  # both directions, exactly once each

    def test_bridge_bounds(self):
        with pytest.raises(ValueError):
            make_dual_chiplet(3, 3, bridges=0)
        with pytest.raises(ValueError):
            make_dual_chiplet(3, 3, bridges=4)


class TestSmallWorld:
    def test_shortcuts_added(self):
        topo = make_small_world(16, 6, random.Random(1))
        assert topo.num_edges == 16 + 6

    def test_shortcut_budget_capped(self):
        topo = make_small_world(5, 100, random.Random(2))
        assert topo.num_edges == 10  # K5

    def test_diameter_reduced(self):
        ring_diameter = 16
        topo = make_small_world(32, 16, random.Random(3))
        assert topo.diameter() < ring_diameter

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            make_small_world(3, 1, random.Random(4))

    @given(st.integers(min_value=4, max_value=24),
           st.integers(min_value=0, max_value=12),
           st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_property_connected_with_drain_path(self, nodes, shortcuts, seed):
        topo = make_small_world(nodes, shortcuts, random.Random(seed))
        assert topo.is_connected()
        euler_drain_path(topo).validate()


class TestRandomRegular:
    def test_degree(self):
        topo = make_random_regular(12, 3, random.Random(1))
        assert all(topo.degree(n) == 3 for n in topo.nodes)

    def test_connected(self):
        topo = make_random_regular(16, 4, random.Random(2))
        assert topo.is_connected()

    def test_odd_total_stubs_rejected(self):
        with pytest.raises(ValueError):
            make_random_regular(5, 3, random.Random(3))

    def test_degree_bounds(self):
        with pytest.raises(ValueError):
            make_random_regular(8, 1, random.Random(4))
        with pytest.raises(ValueError):
            make_random_regular(8, 8, random.Random(5))

    def test_drain_path_on_random_regular(self):
        topo = make_random_regular(14, 3, random.Random(6))
        path = euler_drain_path(topo)
        assert len(path) == 2 * topo.num_edges
