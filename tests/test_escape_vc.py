"""Deep tests of the escape-VC disciplines (baseline and DRAIN variants)."""

import random

import pytest

from repro.core.config import DrainConfig, NetworkConfig, Scheme, SimConfig
from repro.core.simulator import Simulation
from repro.network.fabric import Fabric
from repro.network.index import FabricIndex
from repro.router.packet import MessageClass, Packet
from repro.routing.adaptive import AdaptiveMinimalRouting
from repro.routing.dor import DimensionOrderRouting
from repro.routing.updown import UpDownRouting
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh
from repro.traffic.synthetic import SyntheticTraffic, UniformRandom


def escape_fabric(topo, escape_cls=DimensionOrderRouting, vcs=2, sticky=True):
    index = FabricIndex(topo)
    config = SimConfig(
        scheme=Scheme.ESCAPE_VC,
        network=NetworkConfig(num_vns=1, vcs_per_vn=vcs),
        drain=DrainConfig(escape_sticky=sticky),
    )
    return Fabric(
        index, config, AdaptiveMinimalRouting(index),
        escape_mode="escape_vc", escape_routing=escape_cls(index),
        rng=random.Random(3),
    )


class TestEscapeVcDiscipline:
    def test_escape_entry_is_sticky(self, mesh4):
        """Once a packet lands in VC 0 it must stay in VC 0s until ejection."""
        fabric = escape_fabric(mesh4)
        rng = random.Random(5)
        pid = 0
        escaped = set()
        for cycle in range(400):
            for node in range(16):
                dst = rng.randrange(16)
                if dst != node:
                    if fabric.offer_packet(Packet(pid, node, dst,
                                                  gen_cycle=cycle)):
                        pid += 1
            fabric.step()
            for port, _vn, vc, packet in fabric.occupied_slots():
                if fabric.index.is_injection_port(port):
                    continue
                if packet.in_escape:
                    escaped.add(packet.pid)
                    assert vc == 0, (
                        f"escape packet {packet.pid} found in VC {vc}"
                    )
            for node in range(16):
                for cls in MessageClass:
                    while fabric.peek_ejection(node, cls):
                        fabric.pop_ejection(node, cls)
        assert escaped, "load never pushed any packet into the escape VC"

    def test_escape_packets_follow_restricted_route(self, mesh4):
        """Escape packets must take the DOR next hop, nothing else."""
        fabric = escape_fabric(mesh4)
        dor = fabric.escape_routing
        packet = Packet(0, 0, 15)
        packet.in_escape = True
        groups = fabric.candidate_links(5, packet)
        assert len(groups) == 1
        links = [l for l, _mode in groups[0]]
        assert links == [dor.next_link(5, 15)]
        assert all(mode == 2 for _l, mode in groups[0])

    def test_updown_escape_on_faulty_topology(self):
        topo = inject_link_faults(make_mesh(4, 4), 4, random.Random(9))
        fabric = escape_fabric(topo, escape_cls=UpDownRouting)
        packet = Packet(0, 0, 15)
        packet.in_escape = True
        packet.updown_up_phase = True
        groups = fabric.candidate_links(5, packet)
        for link, mode in groups[0]:
            assert mode == 2

    def test_single_vc_config_is_pure_escape(self, mesh4):
        """With 1 VC/VN the only VC is the escape VC: all candidates are
        restricted-route, escape-mode claims."""
        fabric = escape_fabric(mesh4, vcs=1)
        packet = Packet(0, 0, 15)
        groups = fabric.candidate_links(0, packet)
        assert all(mode == 2 for group in groups for _l, mode in group)

    def test_conservative_allocation_blocks_last_free_vc(self, mesh4):
        """Mode-4 claims need two free VCs at the target port (Duato)."""
        fabric = escape_fabric(mesh4, vcs=2)
        target_link = fabric.index.out_links[0][0]
        # Occupy the escape VC downstream: only one free VC remains.
        blocker = Packet(99, 2, 5)
        fabric.buf[target_link][0][0] = blocker
        assert fabric._pick_vc(target_link, 0, 4, claimed=set()) == -1
        # With both free, the adaptive VC is claimable.
        fabric.buf[target_link][0][0] = None
        assert fabric._pick_vc(target_link, 0, 4, claimed=set()) == 1


class TestDrainEscapeDiscipline:
    def test_drain_prefers_non_escape_strictly(self, mesh4):
        index = FabricIndex(mesh4)
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
        )
        fabric = Fabric(index, config, AdaptiveMinimalRouting(index),
                        escape_mode="drain", rng=random.Random(1))
        packet = Packet(0, 0, 15)
        groups = fabric.candidate_links(0, packet)
        assert len(groups) == 2
        assert all(mode == 3 for _l, mode in groups[0])  # non-escape first
        assert all(mode == 2 for _l, mode in groups[1])  # escape fallback

    def test_sticky_variant_restricts_escaped_packets(self, mesh4):
        index = FabricIndex(mesh4)
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(escape_sticky=True),
        )
        fabric = Fabric(index, config, AdaptiveMinimalRouting(index),
                        escape_mode="drain", rng=random.Random(1))
        packet = Packet(0, 0, 15)
        packet.in_escape = True
        groups = fabric.candidate_links(0, packet)
        assert len(groups) == 1
        assert all(mode == 2 for _l, mode in groups[0])

    def test_relaxed_variant_never_sets_in_escape(self, mesh8):
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=256, escape_sticky=False),
        )
        traffic = SyntheticTraffic(UniformRandom(64), 0.1, random.Random(2))
        sim = Simulation(mesh8, config, traffic)
        sim.run(1200)
        assert all(
            not p.in_escape for *_ , p in sim.fabric.occupied_slots()
        )

    def test_escape_vc_still_reachable_under_load(self, mesh8):
        """The liveness precondition: blocked packets can claim VC 0."""
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=10**9),
        )
        traffic = SyntheticTraffic(UniformRandom(64), 0.3, random.Random(4))
        sim = Simulation(mesh8, config, traffic)
        sim.run(800)
        escape_occupied = sum(
            1 for port, _vn, vc, _p in sim.fabric.occupied_slots()
            if vc == 0 and not sim.fabric.index.is_injection_port(port)
        )
        assert escape_occupied > 0
