"""Differential validation: static certifier vs the live pause oracle.

Two directions, mirroring :mod:`repro.analysis.differential`:

- the pinned dynamic wedge from ``tests/test_lossless.py`` must be
  statically REFUTED at every feasible pause threshold, and the static
  counterexample must equal the watchdog's halt payload cycle — plain
  ``==`` on the ``links`` field, both sides emitting the canonical
  (lexicographically-minimal) rotation;
- every CERTIFIED configuration must survive a seeded pause-storm sweep
  without a watchdog halt and without losing packets.
"""

import random

import pytest

from repro.analysis import (
    canonical_cycle_links,
    certify_pause_configuration,
    refutation_matches,
    storm_survival_sweep,
)
from repro.core.config import (
    DrainConfig,
    NetworkConfig,
    PfcConfig,
    Scheme,
    SimConfig,
)
from repro.core.simulator import Simulation
from repro.topology.datacenter import make_leaf_spine
from repro.traffic import Flow, FlowTraffic

RING_FLOWS = [(i, (i + 2) % 8) for i in range(8)]


def pfc_config(scheme=Scheme.NONE, pause=2):
    return SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=1, vcs_per_vn=4),
        drain=DrainConfig(epoch=2048),
        flow_control="pause_resume",
        pfc=PfcConfig(pause_threshold=pause, resume_threshold=0, headroom=1),
    )


def ring_flow_objs(packets=None, rate=0.9):
    return [Flow(s, d, rate, packets=packets) for s, d in RING_FLOWS]


def scenario_topology():
    return make_leaf_spine(8, 4, uplinks=1, east_west=True)


def static_refutation(pause):
    return certify_pause_configuration(
        scenario_topology(), scheme=Scheme.NONE,
        pfc=PfcConfig(pause_threshold=pause, resume_threshold=0, headroom=1),
        vcs_per_vn=4, flows=RING_FLOWS,
    )


@pytest.fixture(scope="module")
def wedge_payload():
    """Run the pinned CBD scenario to its watchdog halt, once."""
    sim = Simulation(
        scenario_topology(), pfc_config(),
        FlowTraffic(ring_flow_objs(), random.Random(7)),
        halt_on_deadlock=True,
    )
    sim.run(cycles=20_000)
    assert sim.deadlocked
    payload = sim.watchdog.cycle_payload
    assert payload is not None
    return payload


class TestRefutationMatching:
    def test_dynamic_payload_is_already_canonical(self, wedge_payload):
        links = [list(pair) for pair in wedge_payload["links"]]
        assert links == canonical_cycle_links(wedge_payload)

    @pytest.mark.parametrize("pause", [1, 2, 3])
    def test_every_feasible_threshold_matches_the_wedge(
        self, wedge_payload, pause,
    ):
        cert = static_refutation(pause)
        assert not cert.certified
        assert refutation_matches(cert, wedge_payload)
        # Canonicalisation on both sides makes this plain equality.
        assert cert.counterexample["links"] == [
            list(pair) for pair in wedge_payload["links"]
        ]

    def test_certified_configuration_never_matches(self, wedge_payload):
        cert = certify_pause_configuration(
            scenario_topology(), scheme=Scheme.DRAIN,
            pfc=PfcConfig(pause_threshold=2, resume_threshold=0, headroom=1),
            vcs_per_vn=4, flows=RING_FLOWS,
        )
        assert cert.certified
        assert not refutation_matches(cert, wedge_payload)

    def test_missing_or_different_payloads_do_not_match(self, wedge_payload):
        cert = static_refutation(2)
        assert not refutation_matches(cert, None)
        other = dict(wedge_payload)
        other["links"] = [[0, 8], [8, 4], [4, 0]]
        assert not refutation_matches(cert, other)
        assert not refutation_matches(
            cert, {"kind": "ejection-wedge", "links": []}
        )


class TestStormSurvival:
    def test_drain_certificate_survives_storms(self):
        report = storm_survival_sweep(
            scenario_topology(), pfc_config(scheme=Scheme.DRAIN),
            ring_flow_objs(packets=50), seeds=(1, 2), cycles=60_000,
        )
        assert report["survived"] is True
        assert report["halts"] == 0
        assert report["mode"] == "degradation-ladder"
        assert all(r["lost_forever"] == 0 for r in report["runs"])

    @pytest.mark.parametrize("scheme", [Scheme.ESCAPE_VC, Scheme.UPDOWN])
    def test_acyclicity_certificates_survive_with_watchdog_armed(self, scheme):
        report = storm_survival_sweep(
            scenario_topology(), pfc_config(scheme=scheme),
            ring_flow_objs(packets=20, rate=0.5), seeds=(3,), cycles=30_000,
        )
        assert report["survived"] is True
        assert report["mode"] == "halt-on-deadlock"

    def test_credit_config_is_rejected(self):
        config = SimConfig(scheme=Scheme.DRAIN,
                           network=NetworkConfig(num_vns=1, vcs_per_vn=4),
                           drain=DrainConfig(epoch=2048))
        with pytest.raises(ValueError, match="pause/resume"):
            storm_survival_sweep(scenario_topology(), config,
                                 ring_flow_objs(packets=5),
                                 seeds=(1,), cycles=1000)

    def test_uncertified_scheme_is_rejected(self):
        with pytest.raises(ValueError, match="no pause certificate"):
            storm_survival_sweep(scenario_topology(), pfc_config(),
                                 ring_flow_objs(packets=5),
                                 seeds=(1,), cycles=1000)
