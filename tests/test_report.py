"""Tests for the run-report renderer."""

import random

from repro.core.config import Scheme
from repro.core.report import run_report
from repro.core.simulator import Simulation
from repro.cli import main
from repro.traffic.synthetic import SyntheticTraffic, UniformRandom
from tests.conftest import make_config


def finished_sim(mesh4, scheme=Scheme.DRAIN, rate=0.05, cycles=900):
    traffic = SyntheticTraffic(UniformRandom(16), rate, random.Random(2))
    sim = Simulation(mesh4, make_config(scheme, epoch=300), traffic)
    sim.run(cycles, warmup=200)
    return sim


class TestRunReport:
    def test_contains_all_sections(self, mesh4):
        report = run_report(finished_sim(mesh4))
        for heading in ("configuration", "traffic", "latency",
                        "deadlock handling", "router load"):
            assert heading in report

    def test_headline_numbers_present(self, mesh4):
        sim = finished_sim(mesh4)
        report = run_report(sim)
        assert f"packets delivered : {sim.stats.packets_ejected}" in report
        assert "latency histogram" in report

    def test_spin_scheme_reports_probes(self, mesh4):
        report = run_report(finished_sim(mesh4, scheme=Scheme.SPIN))
        assert "probes sent" in report
        assert "pre-drain stretch" not in report  # no drain controller

    def test_empty_run_handled(self, mesh4):
        traffic = SyntheticTraffic(UniformRandom(16), 0.0, random.Random(1))
        sim = Simulation(mesh4, make_config(Scheme.DRAIN), traffic)
        sim.run(50)
        assert "(no measured packets)" in run_report(sim)

    def test_cli_report_flag(self, capsys):
        code = main([
            "run", "--topology", "mesh:4x4", "--cycles", "600",
            "--warmup", "150", "--rate", "0.05", "--epoch", "200",
            "--report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "run report: mesh-4x4" in out
        assert "latency histogram" in out
