"""Tests for the runtime fault subsystem (schedule, recovery, injector)."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.config import DrainConfig, NetworkConfig, Scheme, SimConfig
from repro.core.simulator import Simulation
from repro.drain.path import DrainPath, DrainPathError, euler_drain_path
from repro.faults import (
    FAULT_POLICIES,
    ONSET_DISTRIBUTIONS,
    FaultEvent,
    FaultSchedule,
    recover_drain_paths,
)
from repro.network.index import FabricIndex
from repro.topology.graph import Topology
from repro.topology.mesh import make_mesh, make_ring
from repro.traffic.synthetic import SyntheticTraffic, pattern_by_name


def drain_sim(topo, schedule=None, policy="drop_retransmit", rate=0.05,
              curve_window=0, seed=1, mesh_width=None, packet_flits=1):
    config = SimConfig(
        scheme=Scheme.DRAIN,
        network=NetworkConfig(num_vns=1, vcs_per_vn=2,
                              packet_size_flits=packet_flits),
        drain=DrainConfig(epoch=256),
        seed=seed,
    )
    traffic = SyntheticTraffic(
        pattern_by_name("uniform_random", topo.num_nodes, mesh_width),
        rate,
        random.Random(seed),
    )
    return Simulation(
        topo, config, traffic,
        fault_schedule=schedule, fault_policy=policy,
        fault_curve_window=curve_window,
    )


def barbell() -> Topology:
    """Two triangles joined by a bridge edge (2, 3)."""
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    return Topology(6, edges, name="barbell")


class TestFaultSchedule:
    def test_events_sorted_and_json_roundtrip(self):
        events = (
            FaultEvent(cycle=900, kind="link", target=(1, 2)),
            FaultEvent(cycle=100, kind="router", target=(3, -1),
                       repair_cycle=600),
        )
        schedule = FaultSchedule(events=events, seed=7, onset="uniform")
        assert [e.cycle for e in schedule.events] == [100, 900]
        again = FaultSchedule.from_json(schedule.to_json())
        assert again == schedule
        assert json.loads(schedule.to_json())["seed"] == 7

    def test_generate_is_deterministic(self):
        topo = make_mesh(4, 4)
        a = FaultSchedule.generate(topo, 4, seed=9, window=(100, 900))
        b = FaultSchedule.generate(topo, 4, seed=9, window=(100, 900))
        c = FaultSchedule.generate(topo, 4, seed=10, window=(100, 900))
        assert a == b
        assert a != c

    @pytest.mark.parametrize("onset", ONSET_DISTRIBUTIONS)
    def test_onsets_fall_inside_window(self, onset):
        topo = make_mesh(4, 4)
        schedule = FaultSchedule.generate(
            topo, 6, seed=3, window=(500, 2000), onset=onset,
        )
        assert len(schedule.events) == 6
        for event in schedule.events:
            assert 500 <= event.cycle < 2000

    def test_unknown_onset_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule.generate(
                make_mesh(4, 4), 1, seed=1, window=(0, 100), onset="bogus",
            )

    def test_too_many_permanent_faults_rejected(self):
        # mesh 2x2: 4 edges, spanning tree needs 3 -> only 1 removable.
        with pytest.raises(ValueError, match="removable"):
            FaultSchedule.generate(
                make_mesh(2, 2), 2, seed=1, window=(0, 100),
            )

    def test_transient_fraction_sets_repair_cycles(self):
        schedule = FaultSchedule.generate(
            make_mesh(4, 4), 4, seed=5, window=(100, 400),
            transient_fraction=1.0, transient_duration=250,
        )
        for event in schedule.events:
            assert event.transient
            assert event.repair_cycle == event.cycle + 250

    def test_router_fraction_targets_routers(self):
        # Permanent router kills always strand traffic, so with
        # ensure_connected they only happen transiently.
        schedule = FaultSchedule.generate(
            make_mesh(4, 4), 2, seed=5, window=(100, 400),
            router_fraction=1.0, transient_fraction=1.0,
        )
        assert all(e.kind == "router" for e in schedule.events)
        assert all(e.target[1] == -1 for e in schedule.events)

    def test_permanent_router_kills_suppressed_when_connected(self):
        schedule = FaultSchedule.generate(
            make_mesh(4, 4), 3, seed=5, window=(100, 400),
            router_fraction=1.0, ensure_connected=True,
        )
        assert all(e.kind == "link" for e in schedule.events)

    def test_permanent_picks_keep_survivor_connected(self):
        topo = make_mesh(4, 4)
        schedule = FaultSchedule.generate(
            topo, 8, seed=11, window=(0, 1000), ensure_connected=True,
        )
        survivor = topo.copy()
        for event in schedule.permanent_events():
            if event.kind == "link":
                survivor.remove_edge(*event.target)
        assert survivor.is_connected()


class TestRecovery:
    def test_recovers_mesh_after_link_death(self):
        index = FabricIndex(make_mesh(4, 4))
        link = index.links[0]
        dead = {index.link_id[link], index.link_id[link.reverse]}
        index.apply_faults(dead, set())
        result = recover_drain_paths(index)
        assert result.covered_links == index.num_links - 2
        assert result.components == 1
        covered = {l for path in result.paths for l in path.links}
        alive = {l for i, l in enumerate(index.links) if i not in dead}
        assert covered == alive

    def test_split_components_each_get_a_cycle(self):
        index = FabricIndex(barbell())
        bridge = next(l for l in index.links if (l.src, l.dst) == (2, 3))
        dead = {index.link_id[bridge], index.link_id[bridge.reverse]}
        index.apply_faults(dead, set())
        result = recover_drain_paths(index)
        assert result.components == 2
        assert result.covered_links == index.num_links - 2
        # Cycles must not share links across components.
        seen = set()
        for path in result.paths:
            for link in path.links:
                assert link not in seen
                seen.add(link)

    def test_no_surviving_links_raises(self):
        index = FabricIndex(Topology(2, [(0, 1)], name="pair"))
        index.apply_faults({0, 1}, set())
        with pytest.raises(DrainPathError):
            recover_drain_paths(index)

    def test_drain_path_error_carries_link_sets(self):
        ring = make_ring(4)
        path = euler_drain_path(ring)
        with pytest.raises(DrainPathError) as info:
            DrainPath(ring, path.links[:-1])
        assert info.value.missing  # the dropped link is reported
        assert not info.value.extra


class TestFaultInjector:
    def make_schedule(self, events, seed=1):
        return FaultSchedule(events=tuple(events), seed=seed, onset="uniform")

    def test_link_fault_triggers_drain_recompute(self):
        topo = make_mesh(4, 4)
        schedule = self.make_schedule(
            [FaultEvent(cycle=300, kind="link", target=(5, 6))]
        )
        sim = drain_sim(topo, schedule, mesh_width=4)
        sim.run(1200, warmup=100)
        index = sim.index
        assert sim.stats.drain_recomputes == 1
        assert len(index.dead_links) == 2
        controller = sim.drain_controller
        assert controller.total_path_length() == index.num_links - 2
        assert controller.reinstalls == 1
        summary = sim.fault_injector.summary()
        assert summary["faults_applied"] == 1
        assert summary["events_remaining"] == 0
        assert summary["unreachable_pairs"] == 0
        assert summary["recomputes"][0]["covered_links"] == index.num_links - 2

    def test_policies_handle_inflight_flits(self):
        # Multi-flit packets at moderate load guarantee flits are on the
        # wire when a whole router dies.
        topo = make_mesh(4, 4)
        events = [FaultEvent(cycle=400, kind="router", target=(5, -1))]
        results = {}
        for policy in FAULT_POLICIES:
            sim = drain_sim(topo, self.make_schedule(events), policy=policy,
                            rate=0.20, mesh_width=4, packet_flits=4)
            sim.run(1200, warmup=100)
            results[policy] = sim.stats
        assert results["drop_retransmit"].packets_lost > 0
        assert results["drop_retransmit"].packets_retransmitted > 0
        assert results["source_reroute"].packets_retransmitted == 0

    def test_transient_fault_heals(self):
        topo = make_mesh(4, 4)
        schedule = self.make_schedule(
            [FaultEvent(cycle=200, kind="link", target=(1, 2),
                        repair_cycle=500)]
        )
        sim = drain_sim(topo, schedule, mesh_width=4)
        sim.run(900, warmup=100)
        assert sim.stats.faults_applied == 1
        assert sim.stats.faults_revived == 1
        assert not sim.index.dead_links
        # Once healed, the recomputed drain path covers the full graph.
        assert sim.drain_controller.total_path_length() == sim.index.num_links
        assert sim.stats.drain_recomputes == 2  # death + revival

    def test_ring_survives_becoming_a_line(self):
        topo = make_ring(6)
        schedule = self.make_schedule(
            [FaultEvent(cycle=250, kind="link", target=(0, 1))]
        )
        sim = drain_sim(topo, schedule)
        sim.run(1000, warmup=100)
        assert sim.drain_controller.total_path_length() == 2 * 5
        assert sim.index.unreachable_pairs() == 0
        assert sim.stats.packets_ejected > 0

    def test_recovery_curve_sampling(self):
        topo = make_mesh(4, 4)
        schedule = self.make_schedule(
            [FaultEvent(cycle=300, kind="link", target=(9, 10))]
        )
        sim = drain_sim(topo, schedule, curve_window=100, mesh_width=4)
        sim.run(800, warmup=100)
        curve = sim.fault_injector.curve
        assert [s["cycle"] for s in curve] == [100, 200, 300, 400, 500, 600, 700]
        for sample in curve:
            assert set(sample) >= {
                "cycle", "throughput", "avg_latency", "ejected", "lost",
                "retransmitted", "in_network", "faults_active",
            }
        assert curve[0]["faults_active"] == 0
        assert curve[-1]["faults_active"] == 1

    def test_wormhole_fabric_rejected(self):
        topo = make_mesh(4, 4)
        schedule = self.make_schedule(
            [FaultEvent(cycle=100, kind="link", target=(0, 1))]
        )
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=256),
            seed=1,
        )
        traffic = SyntheticTraffic(
            pattern_by_name("uniform_random", 16, 4), 0.05, random.Random(1)
        )
        with pytest.raises(ValueError, match="wormhole"):
            Simulation(topo, config, traffic, flow_control="wormhole",
                       fault_schedule=schedule)

    def test_two_node_network_link_death_isolates(self):
        # Smallest possible network: losing its only edge leaves two
        # single-router components with no drainable links.
        topo = Topology(2, [(0, 1)], name="pair")
        schedule = self.make_schedule(
            [FaultEvent(cycle=200, kind="link", target=(0, 1))],
        )
        sim = drain_sim(topo, schedule, rate=0.10)
        sim.run(600, warmup=50)
        assert sim.index.unreachable_pairs() == 2
        assert sim.fault_injector.summary()["faults_applied"] == 1
