"""Unit tests for the channel-dependency (turn) graph."""

from repro.topology.dependency import build_dependency_graph
from repro.topology.graph import Link, Topology
from repro.topology.mesh import make_mesh, make_ring


class TestDependencyGraph:
    def test_nodes_are_unidirectional_links(self):
        topo = make_mesh(2, 2)
        graph = build_dependency_graph(topo)
        assert graph.num_links == 8  # 4 bidirectional links

    def test_turns_connect_head_to_tail(self):
        topo = make_mesh(3, 3)
        graph = build_dependency_graph(topo)
        for link in graph.links:
            for nxt in graph.successors(link):
                assert nxt.src == link.dst

    def test_u_turn_present_by_default(self):
        topo = make_ring(4)
        graph = build_dependency_graph(topo)
        link = Link(0, 1)
        assert graph.has_turn(link, link.reverse)

    def test_u_turn_absent_when_disabled(self):
        topo = make_ring(4)
        graph = build_dependency_graph(topo, allow_u_turns=False)
        link = Link(0, 1)
        assert not graph.has_turn(link, link.reverse)
        # Other turns survive.
        assert graph.has_turn(link, Link(1, 2))

    def test_turn_counts_with_u_turns(self):
        # Each link l has one successor per outgoing link of l.dst.
        topo = make_ring(5)
        graph = build_dependency_graph(topo)
        # Every node has degree 2, so every link has 2 successors.
        assert graph.num_turns == graph.num_links * 2

    def test_successor_lists_are_copies(self):
        graph = build_dependency_graph(make_ring(4))
        link = graph.links[0]
        succ = graph.successors(link)
        succ.clear()
        assert graph.successors(link)

    def test_index_of_is_bijective(self):
        graph = build_dependency_graph(make_mesh(3, 3))
        index = graph.index_of()
        assert len(index) == graph.num_links
        assert sorted(index.values()) == list(range(graph.num_links))

    def test_adjacency_indices_match_successors(self):
        graph = build_dependency_graph(make_mesh(2, 3))
        index = graph.index_of()
        adjacency = graph.adjacency_indices()
        for link in graph.links:
            expected = sorted(index[m] for m in graph.successors(link))
            assert adjacency[index[link]] == expected

    def test_chain_topology_endpoints_only_u_turn(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        graph = build_dependency_graph(topo)
        # At node 0 the only outgoing link is 0->1, so 1->0's successors are
        # exactly the U-turn.
        assert graph.successors(Link(1, 0)) == [Link(0, 1)]
