"""Unit tests for deadlock analysis: oracle fixpoint, cycle extraction, rotation."""

import random

import pytest

from repro.core.config import NetworkConfig, Scheme, SimConfig
from repro.network.deadlock import (
    extract_cycle,
    find_deadlocked_slots,
    has_deadlock,
    rotate_cycle,
)
from repro.network.fabric import Fabric
from repro.network.index import FabricIndex
from repro.router.packet import MessageClass, Packet
from repro.routing.adaptive import AdaptiveMinimalRouting
from repro.topology.mesh import make_mesh, make_ring


def ring_fabric(n=4, vcs=1):
    topo = make_ring(n)
    index = FabricIndex(topo)
    config = SimConfig(
        scheme=Scheme.NONE, network=NetworkConfig(num_vns=1, vcs_per_vn=vcs)
    )
    return Fabric(index, config, AdaptiveMinimalRouting(index), rng=random.Random(1))


def plant_ring_deadlock(fabric, n=4):
    """Fill the clockwise ring links with packets all needing 2 more hops.

    On a 4-ring with minimal routing the opposite node is 2 hops away in
    either direction, so a packet at link (i -> i+1) heading to i+3 may
    continue clockwise; with every clockwise link full and 1 VC, the wait
    cycle is closed.
    """
    index = fabric.index
    slots = []
    for i in range(n):
        src = i
        dst_router = (i + 1) % n
        link = index.link_id[[l for l in index.topology.links_out_of(src)
                              if l.dst == dst_router][0]]
        packet = Packet(i, src, (i + 3) % n, MessageClass.REQ)
        packet.blocked_since = 0
        fabric.buf[link][0][0] = packet
        fabric.packets_in_network += 1
        slots.append((link, 0, 0))
    return slots


class TestOracle:
    def test_empty_network_has_no_deadlock(self):
        fabric = ring_fabric()
        assert not has_deadlock(fabric)

    def test_planted_ring_deadlock_detected(self):
        fabric = ring_fabric()
        slots = plant_ring_deadlock(fabric)
        deadlocked = find_deadlocked_slots(fabric)
        # The planted cycle may resolve clockwise or counterclockwise; with
        # 1 VC and all clockwise links full, counterclockwise links are
        # free, so packets CAN move counterclockwise (minimal both ways).
        # Therefore this particular plant is NOT a true deadlock...
        # unless we also fill the counterclockwise links. Check exactly.
        ccw_free = all(
            fabric.buf[fabric.index.link_reverse[s[0]]][0][0] is None
            for s in slots
        )
        assert ccw_free
        assert deadlocked == set()

    def test_full_ring_both_directions_deadlocks(self):
        fabric = ring_fabric()
        cw = plant_ring_deadlock(fabric)
        # Also fill all counterclockwise links with packets 2 hops away.
        index = fabric.index
        n = 4
        ccw = []
        for i in range(n):
            src = i
            dst_router = (i - 1) % n
            link = index.link_id[[l for l in index.topology.links_out_of(src)
                                  if l.dst == dst_router][0]]
            packet = Packet(10 + i, src, (i + 2) % n, MessageClass.REQ)
            packet.blocked_since = 0
            fabric.buf[link][0][0] = packet
            fabric.packets_in_network += 1
            ccw.append((link, 0, 0))
        deadlocked = find_deadlocked_slots(fabric)
        assert set(cw) | set(ccw) <= deadlocked

    def test_packet_at_destination_is_not_deadlocked(self):
        fabric = ring_fabric()
        index = fabric.index
        link = index.out_links[0][0]
        packet = Packet(0, 0, index.link_dst[link], MessageClass.REQ)
        fabric.buf[link][0][0] = packet
        fabric.packets_in_network += 1
        assert not has_deadlock(fabric)

    def test_blocked_but_live_chain_not_flagged(self):
        """A chain of waiting packets with a free head must all be live."""
        fabric = ring_fabric(6)
        index = fabric.index
        # Packets at links 0->1 and 1->2 both heading to 3 (clockwise
        # minimal); link 2->3 is free, so nothing is deadlocked.
        for i in (0, 1):
            link = index.link_id[[l for l in index.topology.links_out_of(i)
                                  if l.dst == i + 1][0]]
            packet = Packet(i, i, 3, MessageClass.REQ)
            fabric.buf[link][0][0] = packet
            fabric.packets_in_network += 1
        assert not has_deadlock(fabric)

    def test_protocol_wedge_visible_without_drain_assumption(self):
        """Destination reached but ejection queue full: flagged only when
        assume_ejection_drains=False and the class is not a sink."""
        fabric = ring_fabric()
        index = fabric.index
        link = index.out_links[0][0]
        dst = index.link_dst[link]
        packet = Packet(0, 0, dst, MessageClass.REQ)
        fabric.buf[link][0][0] = packet
        fabric.packets_in_network += 1
        for i in range(fabric._ej_depth):
            fabric.ej_queues[dst][MessageClass.REQ].append(
                Packet(100 + i, 0, dst, MessageClass.REQ)
            )
        assert not has_deadlock(fabric, assume_ejection_drains=True)
        assert has_deadlock(fabric, assume_ejection_drains=False)

    def test_sink_class_never_wedges_on_full_queue(self):
        fabric = ring_fabric()
        index = fabric.index
        link = index.out_links[0][0]
        dst = index.link_dst[link]
        packet = Packet(0, 0, dst, MessageClass.RESP)
        fabric.buf[link][0][0] = packet
        fabric.packets_in_network += 1
        for i in range(fabric._ej_depth):
            fabric.ej_queues[dst][MessageClass.RESP].append(
                Packet(100 + i, 0, dst, MessageClass.RESP)
            )
        assert not has_deadlock(fabric, assume_ejection_drains=False)


class TestCycleExtractionAndRotation:
    def _wedged_fabric(self):
        fabric = ring_fabric()
        plant_ring_deadlock(fabric)
        index = fabric.index
        for i in range(4):
            dst_router = (i - 1) % 4
            link = index.link_id[[l for l in index.topology.links_out_of(i)
                                  if l.dst == dst_router][0]]
            packet = Packet(10 + i, i, (i + 2) % 4, MessageClass.REQ)
            packet.blocked_since = 0
            fabric.buf[link][0][0] = packet
            fabric.packets_in_network += 1
        return fabric

    def test_extract_cycle_returns_consistent_cycle(self):
        fabric = self._wedged_fabric()
        deadlocked = find_deadlocked_slots(fabric)
        cycle = extract_cycle(fabric, deadlocked)
        assert cycle is not None
        assert len(cycle) >= 2
        index = fabric.index
        for i, slot in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            # The next slot's link must leave the router of this slot.
            assert index.link_src[nxt[0]] == index.port_router[slot[0]]

    def test_extract_cycle_none_for_empty_set(self):
        fabric = ring_fabric()
        assert extract_cycle(fabric, set()) is None

    def test_rotation_preserves_packets(self):
        fabric = self._wedged_fabric()
        before = {p.pid for _1, _2, _3, p in fabric.occupied_slots()}
        cycle = extract_cycle(fabric, find_deadlocked_slots(fabric))
        moved = rotate_cycle(fabric, cycle, forced_kind="spin")
        assert moved == len(cycle)
        after = {p.pid for _1, _2, _3, p in fabric.occupied_slots()}
        assert before == after

    def test_rotation_counts_hops_and_spins(self):
        fabric = self._wedged_fabric()
        cycle = extract_cycle(fabric, find_deadlocked_slots(fabric))
        packets = [fabric.buf[p][vn][vc] for p, vn, vc in cycle]
        rotate_cycle(fabric, cycle, forced_kind="spin")
        for packet in packets:
            assert packet.hops == 1
            assert packet.spin_moves == 1

    def test_rotation_eventually_breaks_wedge(self):
        """Rotating + normal stepping must dissolve the planted deadlock."""
        fabric = self._wedged_fabric()
        for _ in range(50):
            deadlocked = find_deadlocked_slots(fabric)
            if not deadlocked:
                break
            cycle = extract_cycle(fabric, deadlocked)
            if cycle is None:
                break
            rotate_cycle(fabric, cycle, forced_kind="ideal")
            fabric.step()
            for node in range(4):
                for cls in MessageClass:
                    while fabric.peek_ejection(node, cls):
                        fabric.pop_ejection(node, cls)
        assert not find_deadlocked_slots(fabric)

    def test_short_cycle_rejected(self):
        fabric = ring_fabric()
        with pytest.raises(ValueError):
            rotate_cycle(fabric, [(0, 0, 0)], forced_kind="spin")

    def test_empty_slot_in_cycle_rejected(self):
        fabric = ring_fabric()
        with pytest.raises(ValueError):
            rotate_cycle(fabric, [(0, 0, 0), (1, 0, 0)], forced_kind="spin")
