"""Unit tests for configuration dataclasses and the RNG discipline."""

import pytest

from repro.core import rng as rng_mod
from repro.core.config import (
    DrainConfig,
    NetworkConfig,
    ProtocolConfig,
    Scheme,
    SimConfig,
    SpinConfig,
    drain_default,
)


class TestNetworkConfig:
    def test_defaults_match_table2(self):
        net = NetworkConfig()
        assert net.num_vns == 3
        assert net.vcs_per_vn == 2
        assert net.link_bandwidth_bits == 128
        assert net.router_latency == 1

    def test_total_vcs(self):
        assert NetworkConfig(num_vns=3, vcs_per_vn=2).total_vcs == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(num_vns=0)
        with pytest.raises(ValueError):
            NetworkConfig(vcs_per_vn=0)
        with pytest.raises(ValueError):
            NetworkConfig(ejection_queue_depth=0)


class TestDrainConfig:
    def test_default_epoch_is_64k(self):
        assert DrainConfig().epoch == 64 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            DrainConfig(epoch=0)
        with pytest.raises(ValueError):
            DrainConfig(drain_window=0)
        with pytest.raises(ValueError):
            DrainConfig(full_drain_period=0)
        with pytest.raises(ValueError):
            DrainConfig(hops_per_drain=0)

    def test_pre_drain_window_may_be_zero(self):
        assert DrainConfig(pre_drain_window=0).pre_drain_window == 0


class TestSpinConfig:
    def test_default_timeout_is_1024(self):
        assert SpinConfig().timeout == 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            SpinConfig(timeout=0)


class TestProtocolConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProtocolConfig(mshrs_per_node=0)
        with pytest.raises(ValueError):
            ProtocolConfig(forward_probability=1.2)


class TestSimConfig:
    def test_with_scheme_copies(self):
        cfg = SimConfig()
        other = cfg.with_scheme(Scheme.SPIN)
        assert other.scheme is Scheme.SPIN
        assert cfg.scheme is Scheme.DRAIN

    def test_with_seed_copies(self):
        assert SimConfig().with_seed(9).seed == 9

    def test_drain_default_shape(self):
        cfg = drain_default()
        assert cfg.scheme is Scheme.DRAIN
        assert cfg.network.num_vns == 1
        assert cfg.network.vcs_per_vn == 2
        assert drain_default(epoch=128).drain.epoch == 128


class TestRng:
    def test_derive_seed_deterministic(self):
        assert rng_mod.derive_seed(1, "a", 2) == rng_mod.derive_seed(1, "a", 2)

    def test_labels_change_stream(self):
        assert rng_mod.derive_seed(1, "a") != rng_mod.derive_seed(1, "b")

    def test_spawn_streams_independent(self):
        a = rng_mod.spawn(7, "x")
        b = rng_mod.spawn(7, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_spawn_reproducible(self):
        a = rng_mod.spawn(7, "x")
        b = rng_mod.spawn(7, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]
