"""Property-based tests (hypothesis) on the core invariants.

These complement the unit tests with randomised exploration of:
- drain-path existence and turn-table consistency on arbitrary connected
  topologies (the paper's Section III-A guarantee);
- packet conservation of the drain rotation (a permutation, never needing
  free buffers);
- soundness of the deadlock oracle (anything it calls live must actually
  be able to move under fair scheduling).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DrainConfig, NetworkConfig, Scheme, SimConfig
from repro.core.simulator import Simulation
from repro.drain.controller import DrainController
from repro.drain.path import euler_drain_path
from repro.drain.turntable import build_turn_tables
from repro.network.deadlock import find_deadlocked_slots
from repro.network.fabric import Fabric
from repro.network.index import FabricIndex
from repro.router.packet import MessageClass, Packet
from repro.routing.adaptive import AdaptiveMinimalRouting
from repro.routing.updown import UpDownRouting
from repro.topology.irregular import random_connected_topology
from repro.traffic.synthetic import SyntheticTraffic, UniformRandom

topologies = st.builds(
    lambda n, extra, seed: random_connected_topology(
        n, extra, random.Random(seed)
    ),
    st.integers(min_value=3, max_value=12),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=2**16),
)


@given(topologies)
@settings(max_examples=30, deadline=None)
def test_turn_tables_consistent_on_random_topologies(topo):
    path = euler_drain_path(topo)
    tables = build_turn_tables(path)
    # Walking the tables from any link traverses the full cycle.
    link = path.links[0]
    for _ in range(len(path)):
        link = tables[link.dst].output_for(link)
    assert link == path.links[0]


@given(topologies, st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None)
def test_drain_rotation_is_a_permutation(topo, seed):
    """Rotation never loses, duplicates or strands packets, no matter how
    the escape VCs are populated."""
    index = FabricIndex(topo)
    config = SimConfig(
        scheme=Scheme.DRAIN,
        network=NetworkConfig(num_vns=1, vcs_per_vn=1),
        drain=DrainConfig(epoch=10**9),
    )
    fabric = Fabric(index, config, AdaptiveMinimalRouting(index),
                    escape_mode="drain", rng=random.Random(seed))
    controller = DrainController(fabric, config.drain)
    rng = random.Random(seed)
    planted = []
    for port in controller.path_ports:
        if rng.random() < 0.6:
            router = index.link_dst[port]
            dst = rng.randrange(topo.num_nodes)
            if dst == router:
                dst = (dst + 1) % topo.num_nodes
            packet = Packet(len(planted), router, dst)
            fabric.buf[port][0][0] = packet
            fabric.packets_in_network += 1
            planted.append(packet)
    # Block all ejection so the rotation is a pure permutation.
    for node in topo.nodes:
        for _ in range(fabric._ej_depth):
            fabric.ej_queues[node][MessageClass.REQ].append(
                Packet(10_000 + node, (node + 1) % topo.num_nodes, node)
            )
    controller._rotate_once()
    surviving = {p.pid for _1, _2, _3, p in fabric.occupied_slots()}
    assert surviving == {p.pid for p in planted}
    for packet in planted:
        assert packet.hops == 1


@given(topologies, st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_oracle_live_packets_eventually_move(topo, seed):
    """Run a short random simulation; any slot the oracle calls live must
    empty (or its packet move) within a bounded horizon when injection
    stops — soundness of the liveness fixpoint."""
    config = SimConfig(
        scheme=Scheme.NONE, network=NetworkConfig(num_vns=1, vcs_per_vn=2)
    )
    traffic = SyntheticTraffic(
        UniformRandom(topo.num_nodes), 0.3, random.Random(seed)
    )
    sim = Simulation(topo, config, traffic)
    for _ in range(60):
        sim.step()
    fabric = sim.fabric
    deadlocked = find_deadlocked_slots(fabric)
    live = {
        (port, vn, vc): packet.pid
        for port, vn, vc, packet in fabric.occupied_slots()
        if (port, vn, vc) not in deadlocked
    }
    # Stop injecting; let the network run.
    traffic.injection_rate = 0.0
    for node in topo.nodes:
        traffic._backlog[node].clear()
    fabric.inj_queues = [
        [type(q)() for q in queues] for queues in fabric.inj_queues
    ]
    horizon = 50 * (topo.num_nodes + 5)
    for _ in range(horizon):
        sim.step()
    for slot, pid in live.items():
        current = fabric.buf[slot[0]][slot[1]][slot[2]]
        assert current is None or current.pid != pid, (
            f"live packet {pid} never moved out of {slot}"
        )


@given(topologies)
@settings(max_examples=20, deadline=None)
def test_updown_reaches_all_destinations_on_random_topologies(topo):
    index = FabricIndex(topo)
    routing = UpDownRouting(index)
    for src in topo.nodes:
        for dst in topo.nodes:
            if src != dst:
                assert routing.route_length(src, dst) >= index.dist[src][dst]
