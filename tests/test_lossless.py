"""Lossless-fabric robustness: PFC pause/resume, CBD deadlock, ladder.

Covers the datacenter topology builders, the ``PfcConfig`` validation
surface, :class:`repro.network.PauseResumeFabric` hysteresis and the
escape-VC pause exemption, the pause-aware deadlock oracle payload,
pause-storm schedules and their injector pipeline, flow-level traffic,
the staged :class:`repro.drain.DegradationLadder`, retransmission under
pause-frozen sources, the ``lossless`` harness runner, and the CLI
surface (topology specs, ``--pfc``, ``--halt-on-deadlock``).
"""

import random

import pytest

from repro.cli import main, parse_topology
from repro.core.config import (
    DrainConfig,
    NetworkConfig,
    PfcConfig,
    Scheme,
    SimConfig,
)
from repro.core.configio import config_from_dict, config_to_dict
from repro.core.simulator import Simulation
from repro.drain import DegradationLadder
from repro.faults import FaultInjector, PauseStormEvent, PauseStormSchedule
from repro.harness import execute_trial, lossless_trial
from repro.network import find_deadlocked_slots
from repro.network.deadlock import WaitForGraph
from repro.network.pause import PauseResumeFabric
from repro.router.packet import MessageClass, Packet
from repro.topology import make_fat_tree, make_leaf_spine
from repro.traffic import Flow, FlowTraffic


def pfc_config(scheme=Scheme.NONE, pause=2, resume=0, headroom=1, **kwargs):
    return SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=1, vcs_per_vn=4),
        drain=DrainConfig(epoch=2048),
        flow_control="pause_resume",
        pfc=PfcConfig(pause_threshold=pause, resume_threshold=resume,
                      headroom=headroom),
        **kwargs,
    )


def ring_flows(rate=0.9, packets=None):
    return [Flow(i, (i + 2) % 8, rate, packets=packets) for i in range(8)]


def build_sim(scheme=Scheme.NONE, flows=None, seed=7, **sim_kwargs):
    """The pinned CBD scenario: 8x4 leaf-spine with an east-west ring."""
    topo = make_leaf_spine(8, 4, uplinks=1, east_west=True)
    traffic = FlowTraffic(flows or ring_flows(), random.Random(seed))
    return Simulation(topo, pfc_config(scheme), traffic, **sim_kwargs)


# ---------------------------------------------------------------------------
# Topology builders
# ---------------------------------------------------------------------------
class TestLeafSpine:
    def test_full_bipartite_default(self):
        topo = make_leaf_spine(4, 3)
        assert topo.num_nodes == 7
        assert topo.num_edges == 12
        assert topo.name == "leafspine-4x3"
        assert topo.is_connected()

    def test_striped_uplinks(self):
        topo = make_leaf_spine(8, 4, uplinks=2)
        assert topo.num_edges == 16
        assert topo.name == "leafspine-8x4-u2"
        # Leaf 0 stripes onto spines 8 and 9.
        assert {n for n in topo.neighbors(0)} == {8, 9}

    def test_east_west_ring(self):
        topo = make_leaf_spine(8, 4, uplinks=1, east_west=True)
        assert topo.name == "leafspine-8x4-u1-ew"
        # 8 uplinks + 8 ring edges.
        assert topo.num_edges == 16
        assert 1 in topo.neighbors(0) and 7 in topo.neighbors(0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least two leaves"):
            make_leaf_spine(1, 2)
        with pytest.raises(ValueError, match="at least one spine"):
            make_leaf_spine(4, 0)
        with pytest.raises(ValueError, match="uplinks"):
            make_leaf_spine(4, 2, uplinks=3)
        with pytest.raises(ValueError, match="at least three leaves"):
            make_leaf_spine(2, 2, east_west=True)

    def test_disconnected_rejected(self):
        # 2 leaves striping one uplink each onto different spines.
        with pytest.raises(ValueError, match="disconnected"):
            make_leaf_spine(2, 2, uplinks=1)


class TestFatTree:
    def test_k4_shape(self):
        topo = make_fat_tree(4)
        assert topo.num_nodes == 20  # 5k^2/4
        # k*(k/2)^2 edge-agg + k*(k/2)*(k/2) agg-core = 16 + 16.
        assert topo.num_edges == 32
        assert topo.name == "fattree-k4"
        assert topo.is_connected()

    def test_reduced_uplinks(self):
        topo = make_fat_tree(8, uplinks=2)
        assert topo.name == "fattree-k8-u2"
        # k*(k/2)^2 edge-agg + k*(k/2)*uplinks agg-core.
        assert topo.num_edges == 128 + 64
        assert topo.is_connected()

    def test_validation(self):
        with pytest.raises(ValueError, match="even"):
            make_fat_tree(3)
        with pytest.raises(ValueError, match="uplinks"):
            make_fat_tree(4, uplinks=3)
        # One uplink splits the pod-core graph into parity classes.
        with pytest.raises(ValueError, match="disconnected"):
            make_fat_tree(4, uplinks=1)


# ---------------------------------------------------------------------------
# PfcConfig / SimConfig / configio
# ---------------------------------------------------------------------------
class TestPfcConfig:
    def test_defaults_valid(self):
        pfc = PfcConfig()
        assert (pfc.pause_threshold, pfc.resume_threshold, pfc.headroom) == (
            1, 0, 1)

    @pytest.mark.parametrize("kwargs,match", [
        (dict(pause_threshold=0), "at least 1"),
        (dict(resume_threshold=-1), "non-negative"),
        (dict(pause_threshold=2, resume_threshold=2), "strictly below"),
        (dict(headroom=-1), "non-negative"),
    ])
    def test_field_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            PfcConfig(**kwargs)

    def test_simconfig_feasibility(self):
        with pytest.raises(ValueError, match="exceeds the buffer depth"):
            pfc_config(pause=4, headroom=1)
        with pytest.raises(ValueError, match="headroom"):
            pfc_config(pause=1, headroom=5)
        # Credit mode never checks PFC feasibility.
        SimConfig(network=NetworkConfig(num_vns=1, vcs_per_vn=4),
                  pfc=PfcConfig(pause_threshold=4, headroom=4))

    def test_unknown_flow_control(self):
        with pytest.raises(ValueError, match="flow_control"):
            SimConfig(flow_control="wormhole")

    def test_configio_round_trip(self):
        config = pfc_config(pause=3, resume=1, headroom=1, seed=9)
        data = config_to_dict(config)
        assert data["flow_control"] == "pause_resume"
        assert data["pfc"] == {"pause_threshold": 3, "resume_threshold": 1,
                               "headroom": 1}
        assert config_from_dict(data) == config

    def test_configio_default_is_credit(self):
        data = config_to_dict(SimConfig())
        del data["flow_control"]
        assert config_from_dict(data).flow_control == "credit"

    def test_configio_rejects_unknown_pfc_key(self):
        data = config_to_dict(pfc_config())
        data["pfc"]["xon_delay"] = 3
        with pytest.raises(ValueError, match=r"\[pfc\]"):
            config_from_dict(data)


# ---------------------------------------------------------------------------
# PauseResumeFabric
# ---------------------------------------------------------------------------
def row_packet(pid, src=0, dst=4):
    return Packet(pid, src, dst, MessageClass.REQ, gen_cycle=0)


class TestPauseResumeFabric:
    def test_fabric_class_selected_by_config(self):
        sim = build_sim()
        assert isinstance(sim.fabric, PauseResumeFabric)
        credit = Simulation(
            make_leaf_spine(8, 4, uplinks=1, east_west=True),
            SimConfig(scheme=Scheme.NONE,
                      network=NetworkConfig(num_vns=1, vcs_per_vn=4)),
            FlowTraffic(ring_flows(), random.Random(1)),
        )
        assert not isinstance(credit.fabric, PauseResumeFabric)

    def test_hysteresis(self):
        fabric = build_sim().fabric  # pause=2, resume=0
        row = 0  # port 0, vn 0
        fabric._slot_set(0, 0, 0, row_packet(0))
        assert not fabric._xoff[row]
        fabric._slot_set(0, 0, 1, row_packet(1))
        assert fabric._xoff[row] and fabric.pfc_pauses == 1
        # Occupancy 1 > resume_threshold 0: still XOFF.
        fabric._slot_set(0, 0, 1, None)
        assert fabric._xoff[row] and fabric.pfc_resumes == 0
        fabric._slot_set(0, 0, 0, None)
        assert not fabric._xoff[row] and fabric.pfc_resumes == 1

    def test_resume_jitter_defers_xon(self):
        fabric = build_sim().fabric
        fabric.resume_jitter = 5
        fabric._slot_set(0, 0, 0, row_packet(0))
        fabric._slot_set(0, 0, 1, row_packet(1))
        fabric._slot_set(0, 0, 0, None)
        fabric._slot_set(0, 0, 1, None)
        # Row is empty but XON is parked until cycle + jitter.
        assert fabric._xoff[0] and fabric._pause_until[0] == fabric.cycle + 5
        fabric.cycle += 5
        fabric.movement_stage()
        assert not fabric._xoff[0] and fabric.pfc_resumes == 1

    def test_force_pause_pins_row(self):
        fabric = build_sim().fabric
        fabric.force_pause(3, 0, until_cycle=50)
        assert fabric._xoff[3] and fabric.pfc_forced == 1
        assert fabric.paused_row_count() == 1
        assert (3, 0) in fabric.paused_rows()
        # Empty row stays XOFF until the pin expires.
        fabric.movement_stage()
        assert fabric._xoff[3]
        fabric.cycle = 50
        fabric.movement_stage()
        assert not fabric._xoff[3]

    def test_force_pause_rejects_non_link_port(self):
        fabric = build_sim().fabric
        with pytest.raises(ValueError, match="link port"):
            fabric.force_pause(fabric.index.num_links, 0, 10)

    def test_xoff_blocks_allocation_without_escape(self):
        fabric = build_sim().fabric  # Scheme.NONE: no escape discipline
        assert not fabric.pause_exempt_escape
        fabric.force_pause(0, 0, 1000)
        assert fabric._pick_vc(0, 0, 0, set()) == -1
        assert fabric.pfc_stalls == 1

    def test_escape_vc_exempt_under_drain(self):
        fabric = build_sim(scheme=Scheme.DRAIN).fabric
        assert fabric.pause_exempt_escape
        fabric.force_pause(0, 0, 1000)
        # Adaptive-only requests stall; escape-capable ones land on VC 0.
        assert fabric._pick_vc(0, 0, 3, set()) == -1
        assert fabric._pick_vc(0, 0, 0, set()) == 0
        # With VC 0 occupied the exemption has nothing to offer.
        fabric._slot_set(0, 0, 0, row_packet(0))
        assert fabric._pick_vc(0, 0, 0, set()) == -1

    def test_pfc_summary_keys(self):
        summary = build_sim().fabric.pfc_summary()
        assert set(summary) == {"pauses_asserted", "resumes", "pause_stalls",
                                "forced_pauses", "rows_paused"}

    def test_scalar_fallback_reason_recorded(self):
        sim = build_sim()
        assert sim.fabric.engine_fallback_reason is not None


# ---------------------------------------------------------------------------
# Pause-aware deadlock oracle + payload
# ---------------------------------------------------------------------------
class TestPauseDeadlock:
    def test_pinned_scenario_wedges_and_names_cycle(self):
        sim = build_sim(halt_on_deadlock=True)
        sim.run(cycles=20_000)
        assert sim.deadlocked
        payload = sim.watchdog.cycle_payload
        assert payload is not None
        assert payload["kind"] == "buffer-cycle"
        assert payload["length"] == len(payload["cycle"]) >= 3
        assert sorted(set(payload["routers"])) == sorted(payload["routers"])
        for hop in payload["cycle"]:
            assert set(hop) == {"router", "port", "vn", "vc", "link",
                                "packet"}
            assert set(hop["packet"]) == {"pid", "src", "dst", "msg_class",
                                          "hops"}

    def test_paused_free_slots_are_not_an_exit(self):
        # The wedge is *pause-induced*: buffer rows pause at occupancy 2
        # of 4, so every stuck packet still sees free slots downstream.
        # The pause-aware oracle must not treat them as exits — and with
        # the pause model removed the very same state is no deadlock at
        # all under credit semantics.
        sim = build_sim(halt_on_deadlock=True)
        sim.run(cycles=20_000)
        assert sim.deadlocked
        graph = WaitForGraph(sim.fabric, assume_ejection_drains=False)
        stuck = graph.deadlocked()
        assert stuck
        assert any(
            t not in graph.occupant and graph.paused.get((t[0], t[1]))
            for slot in stuck for t in graph.targets[slot]
        )
        graph.paused = None
        assert graph.deadlocked() == set()

    def test_escape_exemption_mirrored_in_oracle(self):
        # Flipping the escape exemption on over the wedged state makes
        # every free escape slot claimable again: the oracle must agree
        # that the DRAIN escape channel dissolves the pause-induced CBD.
        sim = build_sim(halt_on_deadlock=True)
        sim.run(cycles=20_000)
        assert sim.deadlocked
        fabric = sim.fabric
        assert find_deadlocked_slots(fabric, assume_ejection_drains=False)
        fabric.pause_exempt_escape = True
        assert not find_deadlocked_slots(fabric,
                                         assume_ejection_drains=False)


# ---------------------------------------------------------------------------
# Pause-storm schedules + injector pipeline
# ---------------------------------------------------------------------------
class TestStormSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="kind"):
            PauseStormEvent(0, "flood", (0, 0))
        with pytest.raises(ValueError, match="cycle 0"):
            PauseStormEvent(-1, "burst", (0, 1), value=2)
        with pytest.raises(ValueError, match="duration"):
            PauseStormEvent(0, "stuck_xoff", (0, 0), duration=0)
        with pytest.raises(ValueError, match="packet count"):
            PauseStormEvent(0, "burst", (0, 1), value=0)

    def test_round_trip_and_ordering(self):
        storm = PauseStormSchedule((
            PauseStormEvent(50, "burst", (0, 3), value=4),
            PauseStormEvent(10, "stuck_xoff", (2, 0), duration=100),
        ), seed=5)
        assert [e.cycle for e in storm] == [10, 50]
        assert PauseStormSchedule.from_json(storm.to_json()) == storm
        assert PauseStormSchedule.from_dict(storm.as_dict()) == storm

    def test_generate_deterministic(self):
        topo = make_leaf_spine(8, 4, uplinks=1, east_west=True)
        a = PauseStormSchedule.generate(topo, 12, seed=3, window=(0, 500))
        b = PauseStormSchedule.generate(topo, 12, seed=3, window=(0, 500))
        c = PauseStormSchedule.generate(topo, 12, seed=4, window=(0, 500))
        assert a == b and a != c
        assert len(a) == 12
        assert all(0 <= e.cycle < 500 for e in a)
        num_links = 2 * topo.num_edges
        for e in a:
            if e.kind == "stuck_xoff":
                assert 0 <= e.target[0] < num_links
            elif e.kind == "burst":
                assert e.target[0] != e.target[1]

    def test_generate_validation(self):
        topo = make_leaf_spine(4, 2)
        with pytest.raises(ValueError, match="window"):
            PauseStormSchedule.generate(topo, 4, seed=1, window=(5, 5))
        with pytest.raises(ValueError, match="num_events"):
            PauseStormSchedule.generate(topo, -1, seed=1, window=(0, 10))
        with pytest.raises(ValueError, match="fraction"):
            PauseStormSchedule.generate(topo, 4, seed=1, window=(0, 10),
                                        stuck_fraction=0.9,
                                        jitter_fraction=0.9)


class TestInjectorStorm:
    def test_storm_steps_through_injector(self):
        storm = PauseStormSchedule((
            PauseStormEvent(5, "stuck_xoff", (0, 0), duration=40),
            PauseStormEvent(6, "resume_jitter", (0, 0), duration=30,
                            value=4),
            PauseStormEvent(8, "burst", (0, 5), value=6),
        ))
        sim = build_sim(flows=[Flow(0, 4, 0.0)], pause_storm=storm)
        assert sim.fault_injector is not None
        sim.run(cycles=20)
        assert sim.fault_injector.storm_applied == 3
        assert sim.fabric.pfc_forced == 1
        assert sim.traffic.generated >= 6  # the burst packets
        summary = sim.fault_injector.summary()
        assert summary["storm_applied"] == 3
        assert summary["storm_events_remaining"] == 0
        # Jitter window expires and the fabric setting is restored.
        sim.run(cycles=60)
        assert sim.fabric.resume_jitter == 0

    def test_storm_requires_pause_fabric(self):
        storm = PauseStormSchedule((
            PauseStormEvent(5, "stuck_xoff", (0, 0), duration=40),
        ))
        topo = make_leaf_spine(8, 4, uplinks=1, east_west=True)
        config = SimConfig(scheme=Scheme.NONE,
                           network=NetworkConfig(num_vns=1, vcs_per_vn=4))
        traffic = FlowTraffic(ring_flows(), random.Random(1))
        with pytest.raises(ValueError, match="pause/resume fabric"):
            Simulation(topo, config, traffic, pause_storm=storm)


# ---------------------------------------------------------------------------
# Flow-level traffic
# ---------------------------------------------------------------------------
class _AcceptAll:
    def offer_packet(self, packet):
        return True


class TestFlowTraffic:
    def test_flow_validation(self):
        with pytest.raises(ValueError, match="differ"):
            Flow(1, 1, 0.5)
        with pytest.raises(ValueError, match="rate"):
            Flow(0, 1, 1.5)
        with pytest.raises(ValueError, match="at least one packet"):
            Flow(0, 1, 0.5, packets=0)
        assert Flow(0, 1, 0.5, packets=3).as_tuple() == (0, 1, 0.5, 3)

    def test_finite_flows_terminate(self):
        traffic = FlowTraffic([Flow(0, 1, 1.0, packets=2)], random.Random(1))
        fabric = _AcceptAll()
        assert not traffic.done()
        for cycle in range(4):
            traffic.generate(fabric, cycle)
        assert traffic.generated == 2
        assert not traffic.done()  # generated but not yet delivered
        traffic.delivered = 2
        assert traffic.done()

    def test_queue_burst(self):
        traffic = FlowTraffic([Flow(0, 1, 0.0)], random.Random(1))
        traffic.queue_burst(2, 3, 5, cycle=7)
        assert traffic.generated == 5
        assert traffic.backlog_size() == 5
        with pytest.raises(ValueError, match="differ"):
            traffic.queue_burst(2, 2, 1, cycle=7)

    def test_idle_generate_replays_draw_order(self):
        flows = [Flow(0, 4, 0.3), Flow(1, 5, 0.2, packets=3)]
        live = FlowTraffic(flows, random.Random(42))
        replay = FlowTraffic(flows, random.Random(42))
        fabric = _AcceptAll()
        for cycle in range(200):
            live.generate(fabric, cycle)
        consumed = 0
        while consumed < 200:
            consumed += replay.idle_generate(fabric, consumed,
                                             200 - consumed)
        assert consumed == 200
        assert replay.generated == live.generated
        assert replay.rng.random() == live.rng.random()


# ---------------------------------------------------------------------------
# Degradation ladder
# ---------------------------------------------------------------------------
class TestDegradationLadder:
    def test_requires_drain_controller(self):
        with pytest.raises(ValueError, match="scheme=DRAIN"):
            build_sim(scheme=Scheme.NONE, degradation_ladder=True)

    def test_constructor_validation(self):
        sim = build_sim(scheme=Scheme.DRAIN)
        with pytest.raises(ValueError, match="check_interval"):
            DegradationLadder(sim.fabric, sim.drain_controller,
                              check_interval=0)
        with pytest.raises(ValueError, match="retry"):
            DegradationLadder(sim.fabric, sim.drain_controller,
                              drain_retries=0)

    def test_ladder_rescues_pinned_scenario(self):
        sim = build_sim(scheme=Scheme.DRAIN,
                        flows=ring_flows(packets=50),
                        degradation_ladder=True)
        sim.run(cycles=120_000)
        assert sim.traffic.done()
        summary = sim.degradation_ladder.summary()
        assert summary["detections"] >= 1
        assert summary["forced_drains"] >= 1
        assert summary["packets_lost_forever"] == 0
        # The run may end mid-episode (done() halts before the ladder's
        # confirming re-check), so recoveries only bound detections.
        assert summary["recoveries"] <= summary["detections"]
        assert len(summary["recovery_cycles"]) == summary["recoveries"]
        assert all(c >= 0 for c in summary["recovery_cycles"])
        payload = summary["deadlock_cycle"]
        assert payload is not None and payload["kind"] == "buffer-cycle"
        # Ladder counters never leak into the golden stats dict.
        assert "forced_drains" not in sim.stats.as_dict()

    def test_next_event_cycle(self):
        sim = build_sim(scheme=Scheme.DRAIN)
        ladder = DegradationLadder(sim.fabric, sim.drain_controller,
                                   check_interval=128)
        assert ladder.next_event_cycle(0) == 0
        assert ladder.next_event_cycle(1) == 128
        assert ladder.next_event_cycle(128) == 128
        ladder._state = "waiting"
        ladder._deadline = 500
        assert ladder.next_event_cycle(130) == 500
        ladder._retransmit.append((200, 0, 0, row_packet(0)))
        assert ladder.next_event_cycle(130) == 200

    def test_escalation_backoff_doubles(self):
        sim = build_sim(scheme=Scheme.DRAIN)
        ladder = DegradationLadder(sim.fabric, sim.drain_controller,
                                   check_interval=100)
        ladder._escalate(1000)
        assert ladder._deadline == 1100
        ladder._escalate(1100)
        assert ladder._deadline == 1300  # 100 << 1
        assert ladder.forced_drains >= 1


class TestRetransmitUnderPause:
    """Satellite: retransmission backoff when the source NI is frozen."""

    def _frozen_source_sim(self):
        # Pin every outbound row of node 0 XOFF under Scheme.NONE (no
        # escape exemption), then saturate its NI queue: offers fail and
        # retransmissions must back off instead of being lost.
        sim = build_sim(flows=[Flow(0, 4, 0.0)])
        fabric = sim.fabric
        for link in fabric.index.out_links[0]:
            fabric.force_pause(link, 0, 10_000_000)
        pid = 100
        while fabric.offer_packet(row_packet(pid, src=0, dst=4)):
            pid += 1
        assert fabric.injection_space(0, 0) == 0
        return sim

    def test_ladder_pump_backs_off_and_bounds_loss(self):
        sim = self._frozen_source_sim()
        drain_sim = build_sim(scheme=Scheme.DRAIN)
        ladder = DegradationLadder(sim.fabric, drain_sim.drain_controller,
                                   retransmit_backoff_base=8,
                                   retransmit_backoff_max=64,
                                   max_retransmit_attempts=3)
        packet = row_packet(999, src=0, dst=4)
        ladder._schedule_retransmit(0, 0, packet)
        assert ladder._retransmit[0][0] == 8  # base << 0
        ladder._pump_retransmits(8)
        # Offer failed: rescheduled with doubled backoff, nothing lost.
        assert ladder.packets_retransmitted == 0
        (ready, _, attempt, same) = ladder._retransmit[0]
        assert (ready, attempt, same) == (8 + 16, 1, packet)
        ladder._pump_retransmits(24)
        assert ladder._retransmit[0][0] == 24 + 32
        ladder._pump_retransmits(56)  # attempt 3 == budget: lost forever
        assert ladder._retransmit == []
        assert ladder.packets_lost_forever == 1
        assert ladder.summary()["pending_retransmits"] == 0

    def test_ladder_backoff_is_capped(self):
        sim = build_sim(scheme=Scheme.DRAIN)
        ladder = DegradationLadder(sim.fabric, sim.drain_controller,
                                   retransmit_backoff_base=8,
                                   retransmit_backoff_max=64,
                                   max_retransmit_attempts=8)
        ladder._schedule_retransmit(0, 6, row_packet(1))
        assert ladder._retransmit[0][0] == 64  # min(8 << 6, 64)

    def test_injector_pump_backs_off_under_pause(self):
        sim = self._frozen_source_sim()
        injector = FaultInjector(sim, backoff_base=4, backoff_max=1024,
                                 max_retransmit_attempts=2)
        injector._schedule_retransmit(0, 0, row_packet(999, src=0, dst=4))
        injector._pump_retransmits(4)
        assert sim.stats.packets_retransmitted == 0
        assert injector._retransmit[0][2] == 1  # attempt bumped
        injector._pump_retransmits(4 + 8)
        # Attempt budget exhausted: queue drains without a retransmit.
        assert injector._retransmit == []

    def test_pump_succeeds_once_pause_clears(self):
        sim = self._frozen_source_sim()
        fabric = sim.fabric
        drain_sim = build_sim(scheme=Scheme.DRAIN)
        ladder = DegradationLadder(fabric, drain_sim.drain_controller)
        ladder._schedule_retransmit(0, 0, row_packet(999, src=0, dst=4))
        # Unfreeze: run the sim so the NI queue drains into the fabric.
        for row in list(fabric._pause_until):
            fabric._pause_until[row] = 0
        sim.run(cycles=30)
        ladder._pump_retransmits(fabric.cycle)
        assert ladder.packets_retransmitted == 1
        assert ladder.packets_lost_forever == 0


# ---------------------------------------------------------------------------
# Harness runner
# ---------------------------------------------------------------------------
class TestLosslessTrial:
    def _spec(self, **kwargs):
        topo = make_leaf_spine(8, 4, uplinks=1, east_west=True)
        return lossless_trial(topo, pfc_config(), ring_flows(), cycles=20_000,
                              **kwargs)

    def test_digest_stable_and_param_sensitive(self):
        assert self._spec().digest() == self._spec().digest()
        assert (self._spec().digest()
                != self._spec(halt_on_deadlock=True).digest())

    def test_none_row_reports_deadlock(self):
        result = execute_trial(self._spec(halt_on_deadlock=True))
        assert result["deadlocked"] and not result["finished"]
        assert result["deadlock_cycle"]["kind"] == "buffer-cycle"
        assert result["recovery_ratio"] < 1.0
        assert set(result["pfc"]) >= {"pauses_asserted", "pause_stalls"}

    def test_drain_row_recovers(self):
        topo = make_leaf_spine(8, 4, uplinks=1, east_west=True)
        spec = lossless_trial(topo, pfc_config(scheme=Scheme.DRAIN),
                              ring_flows(packets=20), cycles=120_000,
                              degradation_ladder=True)
        result = execute_trial(spec)
        assert result["finished"] and not result["deadlocked"]
        assert result["recovery_ratio"] == 1.0
        assert result["lost_forever"] == 0
        assert result["ladder"]["forced_drains"] >= 1

    def test_storm_round_trips_through_params(self):
        storm = PauseStormSchedule((
            PauseStormEvent(5, "stuck_xoff", (0, 0), duration=40),
        ), seed=2)
        topo = make_leaf_spine(8, 4, uplinks=1, east_west=True)
        spec = lossless_trial(topo, pfc_config(),
                              [Flow(0, 4, 0.05, packets=5)], cycles=2_000,
                              storm=storm.as_dict())
        result = execute_trial(spec)
        assert result["storm_applied"] == 1
        assert result["pfc"]["forced_pauses"] == 1


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCliLossless:
    def test_parse_leafspine(self):
        assert parse_topology("leafspine:8x4").num_nodes == 12
        topo = parse_topology("leafspine:8x4u1ew")
        assert topo.name == "leafspine-8x4-u1-ew"
        assert parse_topology("leafspine:8x4u2").num_edges == 16

    def test_parse_fattree(self):
        assert parse_topology("fattree:4").num_nodes == 20
        assert parse_topology("fattree:8u2").name == "fattree-k8-u2"

    def test_parse_errors(self):
        for spec in ("leafspine:8", "leafspine:abc", "fattree:x",
                     "leafspine:8x4uXew"):
            with pytest.raises(ValueError, match="bad spec"):
                parse_topology(spec)

    def test_run_pfc_halts_with_cycle(self, capsys):
        rc = main(["run", "--topology", "leafspine:8x4u1ew",
                   "--scheme", "none", "--pfc", "--pause-threshold", "1",
                   "--resume-threshold", "0", "--rate", "0.5",
                   "--cycles", "20000", "--halt-on-deadlock", "--seed", "3"])
        assert rc == 2
        captured = capsys.readouterr()
        assert "pfc:" in captured.out
        err = captured.err.strip().splitlines()
        assert len(err) == 1
        assert err[0].startswith("error: deadlock detected at cycle")
        assert "buffer-cycle" in err[0]

    def test_run_rejects_infeasible_pfc(self, capsys):
        rc = main(["run", "--topology", "leafspine:4x2", "--pfc",
                   "--pause-threshold", "9", "--cycles", "100"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "exceeds the buffer depth" in err

    def test_run_pfc_completes_without_halt(self, capsys):
        rc = main(["run", "--topology", "leafspine:4x4", "--pfc",
                   "--pause-threshold", "1", "--cycles", "2000",
                   "--rate", "0.05", "--seed", "2"])
        assert rc == 0
        assert "pfc:" in capsys.readouterr().out

    def test_experiment_registered(self):
        from repro.cli import EXPERIMENTS
        assert "lossless-pfc" in EXPERIMENTS
