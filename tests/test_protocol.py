"""Unit + integration tests for the coherence-protocol traffic model."""

import random

import pytest

from repro.core.config import NetworkConfig, ProtocolConfig, Scheme, SimConfig
from repro.core.simulator import Simulation
from repro.protocol.coherence import CoherenceTraffic
from repro.router.packet import MessageClass
from repro.topology.mesh import make_mesh
from tests.conftest import make_config


def run_protocol(scheme, vns, vcs, topo, issue=0.08, txns_per_node=20,
                 cycles=30_000, fwd=0.5, epoch=400, halt=False, seed=5,
                 ejection_depth=2):
    config = SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=vns, vcs_per_vn=vcs,
                              ejection_queue_depth=ejection_depth),
        drain=make_config(Scheme.DRAIN, epoch=epoch).drain,
        seed=seed,
    )
    traffic = CoherenceTraffic(
        topo.num_nodes,
        ProtocolConfig(mshrs_per_node=8, forward_probability=fwd),
        issue,
        random.Random(seed),
        total_transactions=txns_per_node * topo.num_nodes,
    )
    sim = Simulation(topo, config, traffic, halt_on_deadlock=halt)
    sim.run(cycles)
    return sim, traffic


class TestTransactionMechanics:
    def test_transactions_complete(self, mesh4):
        sim, traffic = run_protocol(Scheme.ESCAPE_VC, 3, 2, mesh4)
        assert traffic.done()
        assert traffic.completed == 20 * 16

    def test_every_completion_consumes_a_response(self, mesh4):
        sim, traffic = run_protocol(Scheme.ESCAPE_VC, 3, 2, mesh4)
        assert sim.stats.transactions_completed == traffic.completed

    def test_mshr_bound_respected(self, mesh4):
        config = ProtocolConfig(mshrs_per_node=4)
        traffic = CoherenceTraffic(16, config, 1.0, random.Random(1))
        sim = Simulation(mesh4, make_config(Scheme.ESCAPE_VC, num_vns=3), traffic)
        for _ in range(500):
            sim.step()
            assert all(0 <= o <= 4 for o in traffic.outstanding)

    def test_outstanding_returns_to_zero(self, mesh4):
        sim, traffic = run_protocol(Scheme.ESCAPE_VC, 3, 2, mesh4)
        assert all(o == 0 for o in traffic.outstanding)
        assert traffic.in_flight() == 0

    def test_forward_probability_zero_gives_two_hop_only(self, mesh4):
        sim, traffic = run_protocol(Scheme.ESCAPE_VC, 3, 2, mesh4, fwd=0.0)
        # With no forwards, FWD packets never appear.
        assert traffic.done()
        fwd_ejections = sum(
            len(qs[MessageClass.FWD]) for qs in sim.fabric.ej_queues
        )
        assert fwd_ejections == 0

    def test_three_hop_chain_produces_forwards(self, mesh4):
        config = ProtocolConfig(mshrs_per_node=8, forward_probability=1.0)
        traffic = CoherenceTraffic(16, config, 0.05, random.Random(2),
                                   total_transactions=50)
        sim = Simulation(mesh4, make_config(Scheme.ESCAPE_VC, num_vns=3), traffic)
        sim.run(20_000)
        assert traffic.done()
        # 3-hop transactions inject 3 packets each: REQ + FWD + RESP.
        assert sim.stats.packets_injected == 3 * 50

    def test_issue_probability_validated(self):
        with pytest.raises(ValueError):
            CoherenceTraffic(16, ProtocolConfig(), 1.5, random.Random(1))

    def test_small_networks_rejected(self):
        with pytest.raises(ValueError):
            CoherenceTraffic(2, ProtocolConfig(), 0.1, random.Random(1))

    def test_locality_biases_homes_nearby(self):
        rng = random.Random(3)
        traffic = CoherenceTraffic(
            16, ProtocolConfig(), 0.1, rng, locality=1.0, mesh_width=4
        )
        mesh = make_mesh(4, 4)
        for _ in range(100):
            home = traffic._pick_home(5)
            assert mesh.has_edge(5, home)


class TestProtocolDeadlockStory:
    """The paper's core protocol claim (Figure 2, Section III-D2)."""

    def test_single_vn_without_protection_wedges(self, faulty4):
        sim, traffic = run_protocol(
            Scheme.NONE, 1, 1, faulty4, issue=0.15, cycles=15_000, halt=True
        )
        assert sim.deadlocked
        assert not traffic.done()

    def test_virtual_networks_prevent_protocol_deadlock(self, faulty4):
        sim, traffic = run_protocol(Scheme.ESCAPE_VC, 3, 2, faulty4, issue=0.15)
        assert traffic.done()

    def test_drain_single_vn_completes(self, faulty4):
        sim, traffic = run_protocol(Scheme.DRAIN, 1, 2, faulty4, issue=0.15)
        assert traffic.done()

    def test_drain_single_vn_single_vc_completes(self, faulty4):
        sim, traffic = run_protocol(
            Scheme.DRAIN, 1, 1, faulty4, issue=0.12, txns_per_node=10,
            cycles=60_000, epoch=200,
        )
        assert traffic.done()

    def test_spin_needs_virtual_networks(self, faulty4):
        """SPIN with 3 VNs completes its quota (routing-level recovery +
        proactive protocol protection)."""
        sim, traffic = run_protocol(Scheme.SPIN, 3, 2, faulty4, issue=0.15)
        assert traffic.done()
