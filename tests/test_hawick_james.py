"""Unit tests for the Hawick-James elementary-circuit enumerator."""

from repro.drain.hawick_james import count_circuits, elementary_circuits, find_circuit


def canonical(circuits):
    """Rotate each circuit so it starts at its minimum and sort the set."""
    result = set()
    for circ in circuits:
        i = circ.index(min(circ))
        result.add(tuple(circ[i:] + circ[:i]))
    return result


class TestElementaryCircuits:
    def test_empty_graph(self):
        assert list(elementary_circuits([[], []])) == []

    def test_self_loop(self):
        assert canonical(elementary_circuits([[0]])) == {(0,)}

    def test_two_cycle(self):
        assert canonical(elementary_circuits([[1], [0]])) == {(0, 1)}

    def test_triangle_both_directions(self):
        # Complete digraph on 3 vertices: 2 three-cycles + 3 two-cycles.
        adj = [[1, 2], [0, 2], [0, 1]]
        circuits = canonical(elementary_circuits(adj))
        assert (0, 1, 2) in circuits and (0, 2, 1) in circuits
        assert (0, 1) in circuits and (0, 2) in circuits and (1, 2) in circuits
        assert len(circuits) == 5

    def test_directed_square(self):
        adj = [[1], [2], [3], [0]]
        assert canonical(elementary_circuits(adj)) == {(0, 1, 2, 3)}

    def test_dag_has_no_circuits(self):
        adj = [[1, 2], [3], [3], []]
        assert list(elementary_circuits(adj)) == []

    def test_two_disjoint_cycles(self):
        adj = [[1], [0], [3], [2]]
        assert canonical(elementary_circuits(adj)) == {(0, 1), (2, 3)}

    def test_circuits_are_elementary(self):
        adj = [[1, 2], [0, 2], [0, 1]]
        for circ in elementary_circuits(adj):
            assert len(circ) == len(set(circ))

    def test_max_circuits_caps_enumeration(self):
        adj = [[1, 2], [0, 2], [0, 1]]
        assert len(list(elementary_circuits(adj, max_circuits=2))) == 2

    def test_known_count_complete_digraph_k4(self):
        # K4 digraph: C(4,2) 2-cycles + 8 three-cycles + 6 four-cycles = 20.
        adj = [[j for j in range(4) if j != i] for i in range(4)]
        assert count_circuits(adj) == 20


class TestFindCircuit:
    def test_finds_matching_circuit(self):
        adj = [[1, 2], [0, 2], [0, 1]]
        found = find_circuit(adj, predicate=lambda c: len(c) == 3)
        assert found is not None and len(found) == 3

    def test_returns_none_when_no_match(self):
        adj = [[1], [0]]
        assert find_circuit(adj, predicate=lambda c: len(c) == 5) is None

    def test_early_termination_returns_first_match(self):
        adj = [[1], [0]]
        assert find_circuit(adj, predicate=lambda c: True) == [0, 1]
