"""Unit + property tests for statistics collection."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import NetworkStats, RunningStats, SampleStats, percentile


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 5.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_property_bounded_by_min_max(self, data):
        p = percentile(data, 99)
        assert min(data) <= p <= max(data)


class TestRunningStats:
    def test_mean_and_variance(self):
        stats = RunningStats()
        for v in (2.0, 4.0, 6.0):
            stats.add(v)
        assert stats.mean == pytest.approx(4.0)
        assert stats.variance == pytest.approx(8.0 / 3.0)
        assert stats.min == 2.0 and stats.max == 6.0

    def test_empty_stats_are_zero(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.count == 0

    def test_merge_matches_single_stream(self):
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        data1 = [1.0, 5.0, 2.0]
        data2 = [9.0, 3.0]
        for v in data1:
            a.add(v)
            c.add(v)
        for v in data2:
            b.add(v)
            c.add(v)
        a.merge(b)
        assert a.count == c.count
        assert a.mean == pytest.approx(c.mean)
        assert a.variance == pytest.approx(c.variance)
        assert a.min == c.min and a.max == c.max

    def test_merge_with_empty_is_identity(self):
        a = RunningStats()
        a.add(3.0)
        a.merge(RunningStats())
        assert a.count == 1 and a.mean == 3.0

    def test_merge_into_empty_copies(self):
        a = RunningStats()
        b = RunningStats()
        b.add(4.0)
        b.add(8.0)
        a.merge(b)
        assert a.count == 2 and a.mean == 6.0

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_property_matches_naive_mean(self, data):
        stats = RunningStats()
        for v in data:
            stats.add(v)
        assert stats.mean == pytest.approx(sum(data) / len(data), abs=1e-6)
        assert stats.stddev == pytest.approx(math.sqrt(stats.variance))


class TestSampleStats:
    def test_keeps_samples(self):
        stats = SampleStats()
        for v in (3.0, 1.0, 2.0):
            stats.add(v)
        assert stats.samples == [3.0, 1.0, 2.0]
        assert stats.percentile(100) == 3.0

    def test_inherits_running_summary(self):
        stats = SampleStats()
        stats.add(10.0)
        stats.add(20.0)
        assert stats.mean == 15.0


class TestNetworkStats:
    def test_throughput_units(self):
        stats = NetworkStats()
        stats.packets_ejected_measured = 640
        stats.measured_cycles = 1000
        assert stats.throughput(64) == pytest.approx(0.01)

    def test_throughput_zero_guard(self):
        stats = NetworkStats()
        assert stats.throughput(64) == 0.0
        stats.measured_cycles = 10
        assert stats.throughput(0) == 0.0

    def test_p99_requires_samples(self):
        stats = NetworkStats()
        with pytest.raises(ValueError):
            _ = stats.p99_latency

    def test_as_dict_contains_headlines(self):
        stats = NetworkStats()
        stats.latency.add(5.0)
        flat = stats.as_dict()
        assert flat["avg_latency"] == 5.0
        assert "drain_windows" in flat and "probes_sent" in flat
