"""Unit tests for the cycle-level fabric: buffers, allocation, movement."""

import random

import pytest

from repro.core.config import NetworkConfig, Scheme, SimConfig
from repro.network.fabric import Fabric
from repro.network.index import FabricIndex
from repro.router.packet import MessageClass, Packet
from repro.routing.adaptive import AdaptiveMinimalRouting
from repro.topology.mesh import make_mesh
from tests.conftest import make_config


def make_fabric(topo=None, num_vns=1, vcs=2, scheme=Scheme.NONE, escape_mode=None):
    topo = topo if topo is not None else make_mesh(4, 4)
    index = FabricIndex(topo)
    config = SimConfig(
        scheme=scheme, network=NetworkConfig(num_vns=num_vns, vcs_per_vn=vcs)
    )
    routing = AdaptiveMinimalRouting(index)
    return Fabric(index, config, routing, escape_mode=escape_mode,
                  rng=random.Random(1))


class TestFabricIndex:
    def test_port_layout(self):
        topo = make_mesh(4, 4)
        index = FabricIndex(topo)
        assert index.num_links == 48
        assert index.num_ports == 48 + 16
        assert index.injection_port(0) == 48
        assert index.is_injection_port(48)
        assert not index.is_injection_port(47)

    def test_in_ports_include_injection(self):
        index = FabricIndex(make_mesh(4, 4))
        for r in range(16):
            assert index.injection_port(r) in index.in_ports[r]

    def test_port_router_mapping(self):
        index = FabricIndex(make_mesh(4, 4))
        for i, link in enumerate(index.links):
            assert index.port_router[i] == link.dst
        for r in range(16):
            assert index.port_router[index.injection_port(r)] == r

    def test_link_reverse_mapping(self):
        index = FabricIndex(make_mesh(3, 3))
        for i in range(index.num_links):
            j = index.link_reverse[i]
            assert index.link_src[j] == index.link_dst[i]
            assert index.link_dst[j] == index.link_src[i]


class TestInjectionEjection:
    def test_offer_accepts_until_queue_full(self):
        fabric = make_fabric()
        depth = fabric._inj_depth
        for i in range(depth):
            assert fabric.offer_packet(Packet(i, 0, 5))
        assert not fabric.offer_packet(Packet(depth, 0, 5))

    def test_injection_space_tracks_queue(self):
        fabric = make_fabric()
        assert fabric.injection_space(0, MessageClass.REQ) == fabric._inj_depth
        fabric.offer_packet(Packet(0, 0, 5))
        assert fabric.injection_space(0, MessageClass.REQ) == fabric._inj_depth - 1

    def test_single_hop_delivery_latency(self):
        fabric = make_fabric()
        packet = Packet(0, 0, 1, gen_cycle=0)
        fabric.offer_packet(packet)
        for _ in range(10):
            fabric.step()
            if fabric.peek_ejection(1, MessageClass.REQ):
                break
        delivered = fabric.pop_ejection(1, MessageClass.REQ)
        assert delivered is packet
        assert delivered.hops == 1
        # cycle 0: NI -> injection VC; cycle 1: traverse link; cycle 2: eject.
        assert delivered.eject_cycle == 2

    def test_multi_hop_hop_count(self):
        fabric = make_fabric()
        packet = Packet(0, 0, 15, gen_cycle=0)  # corner to corner: 6 hops
        fabric.offer_packet(packet)
        for _ in range(30):
            fabric.step()
        assert packet.eject_cycle is not None
        assert packet.hops == 6
        assert packet.misroutes == 0

    def test_ejection_per_class_queues(self):
        fabric = make_fabric(num_vns=3)
        req = Packet(0, 0, 1, MessageClass.REQ)
        resp = Packet(1, 4, 1, MessageClass.RESP)
        fabric.offer_packet(req)
        fabric.offer_packet(resp)
        for _ in range(10):
            fabric.step()
        assert fabric.peek_ejection(1, MessageClass.REQ) is req
        assert fabric.peek_ejection(1, MessageClass.RESP) is resp

    def test_vn_assignment_folds_classes(self):
        fabric = make_fabric(num_vns=1)
        resp = Packet(0, 0, 2, MessageClass.RESP)
        fabric.offer_packet(resp)
        fabric.step()
        assert resp.vn == 0

    def test_ejection_queue_backpressure(self):
        """A full per-class ejection queue must stall further ejections."""
        fabric = make_fabric()
        depth = fabric._ej_depth
        senders = [4, 2, 5, 8, 6, 9]  # neighbours/near nodes targeting 1...
        packets = [Packet(i, src, 1) for i, src in enumerate(senders)]
        for p in packets:
            fabric.offer_packet(p)
        for _ in range(20):
            fabric.step()  # nothing consumes the queue
        assert len(fabric.ej_queues[1][MessageClass.REQ]) == depth
        ejected = sum(1 for p in packets if p.eject_cycle is not None)
        assert ejected == depth


class TestConservationInvariants:
    @pytest.mark.parametrize("escape_mode", [None, "drain"])
    def test_no_packet_lost_or_duplicated(self, escape_mode):
        fabric = make_fabric(escape_mode=escape_mode)
        rng = random.Random(7)
        offered = 0
        for cycle in range(300):
            for node in range(16):
                if rng.random() < 0.3:
                    dst = rng.randrange(16)
                    if dst != node and fabric.offer_packet(
                        Packet(offered, node, dst, gen_cycle=cycle)
                    ):
                        offered += 1
            fabric.step()
            # Conservation: injected == in-network + ejected (queued at NI
            # ejection queues counts as ejected).
            assert (
                fabric.stats.packets_injected
                == fabric.count_packets() + fabric.stats.packets_ejected
            )
            assert fabric.count_packets() == fabric.packets_in_network
            for node in range(16):
                for cls in MessageClass:
                    while fabric.peek_ejection(node, cls):
                        fabric.pop_ejection(node, cls)

    def test_single_packet_per_vc_never_violated(self):
        fabric = make_fabric(vcs=2)
        rng = random.Random(9)
        pid = 0
        for cycle in range(200):
            for node in range(16):
                dst = rng.randrange(16)
                if dst != node:
                    if fabric.offer_packet(Packet(pid, node, dst, gen_cycle=cycle)):
                        pid += 1
            fabric.step()
            seen_ids = set()
            for _port, _vn, _vc, packet in fabric.occupied_slots():
                assert packet.pid not in seen_ids
                seen_ids.add(packet.pid)
            for node in range(16):
                for cls in MessageClass:
                    while fabric.peek_ejection(node, cls):
                        fabric.pop_ejection(node, cls)


class TestCrossbarConstraints:
    def test_one_packet_per_output_link_per_cycle(self):
        """Packets on different VCs of one input port serialise: the port
        grants one packet per cycle (crossbar input constraint)."""
        fabric = make_fabric(vcs=4)
        for i in range(4):
            fabric.offer_packet(Packet(i, 0, 12, gen_cycle=0))
        for _ in range(4):  # one injection per VN per cycle
            fabric.inject_stage()
        before = [p for _p, _vn, _vc, p in fabric.occupied_slots()]
        assert len(before) == 4
        fabric.step()
        moved = sum(1 for p in before if p.hops == 1)
        assert moved == 1  # injection port sends at most one per cycle

    def test_frozen_fabric_moves_nothing(self):
        fabric = make_fabric()
        fabric.offer_packet(Packet(0, 0, 5))
        fabric.step()
        fabric.frozen = True
        occupied_before = [
            (s[0], s[1], s[2], s[3].pid) for s in fabric.occupied_slots()
        ]
        for _ in range(5):
            fabric.step()
        occupied_after = [
            (s[0], s[1], s[2], s[3].pid) for s in fabric.occupied_slots()
        ]
        assert occupied_before == occupied_after


class TestForceMove:
    def test_force_move_between_slots(self):
        fabric = make_fabric()
        packet = Packet(0, 0, 5)
        fabric.offer_packet(packet)
        fabric.inject_stage()
        (port, vn, vc, found) = fabric.occupied_slots()[0]
        target_link = fabric.index.out_links[0][0]
        fabric.force_move((port, vn, vc), (target_link, vn, 0))
        assert fabric.buf[target_link][vn][0] is packet
        assert fabric.buf[port][vn][vc] is None

    def test_force_move_to_occupied_slot_rejected(self):
        fabric = make_fabric()
        fabric.offer_packet(Packet(0, 0, 5))
        fabric.offer_packet(Packet(1, 4, 6))
        fabric.inject_stage()
        slots = fabric.occupied_slots()
        assert len(slots) == 2
        with pytest.raises(ValueError):
            fabric.force_move(slots[0][:3], slots[1][:3])

    def test_force_move_from_empty_slot_rejected(self):
        fabric = make_fabric()
        with pytest.raises(ValueError):
            fabric.force_move((0, 0, 0), (1, 0, 0))


class TestUtilizationProbes:
    def test_link_utilization_counts_traversals(self):
        fabric = make_fabric()
        packet = Packet(0, 0, 3, gen_cycle=0)  # 3 hops east
        fabric.offer_packet(packet)
        for _ in range(12):
            fabric.step()
        rates = fabric.link_utilization()
        assert sum(fabric.link_util) == 3
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_router_load_sums_incoming_links(self):
        fabric = make_fabric()
        for i, dst in enumerate((1, 2, 3)):
            fabric.offer_packet(Packet(i, 0, dst, gen_cycle=0))
        for _ in range(30):
            fabric.step()
        load = fabric.router_load()
        assert load[1] > 0  # all three packets crossed router 1
        assert load[0] == 0.0  # nothing routes INTO node 0

    def test_empty_network_zero_utilization(self):
        fabric = make_fabric()
        assert fabric.link_utilization() == [0.0] * fabric.index.num_links
