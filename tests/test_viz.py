"""Tests for the plain-text visualisation helpers."""

import random

import pytest

from repro.drain.path import euler_drain_path
from repro.topology.graph import Topology
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh
from repro.viz import render_drain_path, render_heat, render_histogram, render_mesh


class TestRenderMesh:
    def test_full_mesh_has_all_connectors(self):
        art = render_mesh(make_mesh(3, 3))
        assert art.count("o") == 9
        assert art.count("--") == 6  # horizontal links of a 3x3 mesh
        assert art.count("|") == 6  # vertical links of a 3x3 mesh

    def test_faulty_link_leaves_gap(self):
        topo = make_mesh(3, 3)
        healthy = render_mesh(topo)
        topo.remove_edge(0, 1)
        faulty = render_mesh(topo)
        assert faulty.count("--") == healthy.count("--") - 1

    def test_marks_override_labels(self):
        art = render_mesh(make_mesh(2, 2), mark={0: "D"})
        assert "D" in art

    def test_requires_coordinates(self):
        with pytest.raises(ValueError):
            render_mesh(Topology(3, [(0, 1), (1, 2)]))


class TestRenderDrainPath:
    def test_all_links_listed(self):
        topo = make_mesh(2, 2)
        path = euler_drain_path(topo)
        art = render_drain_path(path, per_line=4)
        assert art.count("->") == len(path)
        assert "[   0]" in art

    def test_per_line_validated(self):
        path = euler_drain_path(make_mesh(2, 2))
        with pytest.raises(ValueError):
            render_drain_path(path, per_line=0)


class TestRenderHistogram:
    def test_empty(self):
        assert "(no samples)" in render_histogram([], title="t")

    def test_constant_samples(self):
        art = render_histogram([3.0, 3.0, 3.0])
        assert "#" in art and "(3)" in art

    def test_bins_and_counts(self):
        art = render_histogram([1.0, 1.1, 9.0], bins=2, width=10)
        assert " 2" in art and " 1" in art

    def test_validation(self):
        with pytest.raises(ValueError):
            render_histogram([1.0], bins=0)


class TestRenderHeat:
    def test_extremes_use_ramp_ends(self):
        topo = make_mesh(2, 2)
        art = render_heat({0: 0.0, 1: 1.0, 2: 0.5, 3: 0.5}, topo)
        assert "@" in art  # the hottest router
        assert " " in art or "." in art

    def test_uniform_values(self):
        topo = make_mesh(2, 2)
        art = render_heat({n: 1.0 for n in range(4)}, topo)
        assert art  # renders without dividing by zero

    def test_requires_values(self):
        with pytest.raises(ValueError):
            render_heat({}, make_mesh(2, 2))
