"""Tests for the content-addressed compiled-structure store.

Covers the tentpole guarantees: digest stability across processes,
warm-vs-cold bit-identical trial rows, corruption-detect-and-recompute,
fault-epoch invalidation of adopted tables, and the compile-once
warm-start protocol under concurrent workers.
"""

from __future__ import annotations

import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro import structcache
from repro.core.config import Scheme
from repro.core.configio import config_to_dict
from repro.core.simulator import Simulation
from repro.experiments.common import Scale, scheme_config, synthetic_trial_for
from repro.harness import Harness, execute_trial
from repro.harness.trials import structural_params, topology_to_spec
from repro.network.index import DenseCandidateTables, FabricIndex
from repro.routing.adaptive import AdaptiveMinimalRouting
from repro.topology.datacenter import make_leaf_spine
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh, make_torus

TINY = Scale(warmup=60, measure=200, fault_patterns=1,
             sweep_rates=(0.04,), epoch=256, spin_timeout=64)


@pytest.fixture()
def store(tmp_path):
    """A fresh active store for one test; deactivated afterwards."""
    structcache.clear_memos()
    st = structcache.activate(tmp_path / "structs")
    yield st
    structcache.deactivate()
    structcache.clear_memos()


@pytest.fixture(autouse=True)
def _inactive_by_default():
    """Tests not using the ``store`` fixture run store-less (the library
    default); whatever a test did, the next one starts clean."""
    yield
    structcache.deactivate()
    structcache.clear_memos()


def tiny_spec(seed=1, scheme=Scheme.DRAIN, rate=0.05):
    return synthetic_trial_for(
        make_mesh(4, 4), scheme, rate, TINY, mesh_width=4, seed=seed
    )


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------
class TestDigests:
    def test_topology_payload_matches_trial_spec(self):
        # The store's digest payload deliberately mirrors the harness's
        # topology serialisation field for field (duplicated to avoid an
        # import cycle). If this drifts, trial caching and structure
        # caching would key the same topology differently.
        for topology in (
            make_mesh(4, 4),
            make_torus(3, 3),
            make_leaf_spine(8, 4, uplinks=1, east_west=True),
            inject_link_faults(make_mesh(4, 4), 3, random.Random(7)),
        ):
            assert (
                structcache.topology_payload(topology)
                == topology_to_spec(topology)
            ), topology.name

    def test_digest_stable_across_processes(self):
        code = (
            "from repro.structcache import structure_digest, "
            "topology_digest, topology_payload\n"
            "from repro.core.configio import config_to_dict\n"
            "from repro.experiments.common import scheme_config, Scale\n"
            "from repro.core.config import Scheme\n"
            "from repro.topology.mesh import make_mesh\n"
            "t = make_mesh(4, 4)\n"
            "c = config_to_dict(scheme_config("
            "Scheme.DRAIN, Scale.ci(), seed=5))\n"
            "print(topology_digest(t))\n"
            "print(structure_digest(topology_payload(t), c))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        ).stdout.split()
        topology = make_mesh(4, 4)
        config = config_to_dict(scheme_config(Scheme.DRAIN, Scale.ci(), seed=5))
        assert out[0] == structcache.topology_digest(topology)
        assert out[1] == structcache.structure_digest(
            structcache.topology_payload(topology), config
        )

    def test_structure_digest_ignores_seed_only(self):
        topology = structcache.topology_payload(make_mesh(4, 4))
        base = config_to_dict(scheme_config(Scheme.DRAIN, TINY, seed=1))
        reseeded = dict(base, seed=99)
        rescheme = dict(base, scheme="spin")
        assert (structcache.structure_digest(topology, base)
                == structcache.structure_digest(topology, reseeded))
        assert (structcache.structure_digest(topology, base)
                != structcache.structure_digest(topology, rescheme))

    def test_structural_params_of_specs(self):
        spec = tiny_spec()
        topo, config = structural_params(spec)
        assert topo == spec.params["topology"]
        assert config == spec.params["config"]


# ----------------------------------------------------------------------
# Store round-trips and corruption
# ----------------------------------------------------------------------
class TestStoreArtifacts:
    def test_distances_roundtrip_and_counters(self, store):
        topology = make_mesh(4, 4)
        cold = structcache.distances(topology)
        assert store.compiles == 1 and store.misses == 1
        structcache.clear_memos()
        warm = structcache.distances(topology)
        assert warm == cold == topology.all_pairs_distances(scalar=True)
        assert store.hits == 1 and store.compiles == 1

    def test_distances_rows_are_fresh_copies(self, store):
        # FabricIndex.apply_faults overwrites rows in place; a shared
        # cached list would poison every later consumer.
        topology = make_mesh(4, 4)
        first = structcache.distances(topology)
        first[0][1] = -77
        assert structcache.distances(topology)[0][1] == 1

    def test_truncated_array_recomputes(self, store):
        topology = make_mesh(4, 4)
        reference = structcache.distances(topology)
        [npy] = list(store.root.glob("dist/*/*/dist.npy"))
        npy.write_bytes(npy.read_bytes()[: npy.stat().st_size // 2])
        structcache.clear_memos()
        assert structcache.distances(topology) == reference
        assert store.corrupt == 1
        # The corrupt entry was replaced by a fresh, loadable one.
        structcache.clear_memos()
        assert structcache.distances(topology) == reference
        assert store.corrupt == 1

    def test_garbage_meta_recomputes(self, store):
        topology = make_mesh(4, 4)
        reference = structcache.distances(topology)
        [meta] = list(store.root.glob("dist/*/*/meta.json"))
        meta.write_text("{not json")
        structcache.clear_memos()
        assert structcache.distances(topology) == reference
        assert store.corrupt == 1

    def test_parts_roundtrip(self, store):
        topology = make_mesh(4, 4)
        config = scheme_config(Scheme.DRAIN, TINY, seed=1)
        cold = structcache.parts_for(topology, config)
        assert cold.routing is not None and cold.drain_links is not None
        compiled = store.compiles
        structcache.clear_memos()
        warm = structcache.parts_for(topology, config)
        assert store.compiles == compiled  # pure load, no recompile
        for a, b in zip(cold.routing, warm.routing):
            assert a.tolist() == b.tolist()
        assert warm.drain_links == cold.drain_links

    def test_parts_inactive_store_is_none(self):
        config = scheme_config(Scheme.DRAIN, TINY, seed=1)
        assert structcache.parts_for(make_mesh(4, 4), config) is None

    def test_truncated_routing_recomputes(self, store):
        topology = make_mesh(4, 4)
        config = scheme_config(Scheme.DRAIN, TINY, seed=1)
        cold = structcache.parts_for(topology, config)
        [npy] = list(store.root.glob("routing/*/*/links.npy"))
        npy.write_bytes(npy.read_bytes()[:64])
        structcache.clear_memos()
        warm = structcache.parts_for(topology, config)
        assert store.corrupt == 1
        for a, b in zip(cold.routing, warm.routing):
            assert a.tolist() == b.tolist()


# ----------------------------------------------------------------------
# Simulator adoption + fault-epoch invalidation
# ----------------------------------------------------------------------
class TestAdoption:
    def test_sim_results_identical_with_store(self, store, tmp_path):
        spec = tiny_spec()
        cold = json.loads(json.dumps(execute_trial(spec)))
        structcache.clear_memos()
        warm = json.loads(json.dumps(execute_trial(spec)))
        structcache.deactivate()
        structcache.clear_memos()
        bare = json.loads(json.dumps(execute_trial(spec)))
        assert cold == warm == bare

    def test_fault_epoch_invalidates_adopted_tables(self, store):
        topology = make_mesh(4, 4)
        index = FabricIndex(topology)
        config = scheme_config(Scheme.DRAIN, TINY, seed=1)
        parts = structcache.parts_for(topology, config)
        tables = DenseCandidateTables.from_arrays(index, *parts.routing)
        routing = AdaptiveMinimalRouting(index, tables=tables)
        assert routing.compiled_tables is tables
        reference = {
            (s, d): routing.raw_candidates(s, d)
            for s in range(4) for d in range(4) if s != d
        }

        # Kill one bidirectional link mid-run: the epoch advances and the
        # pre-fault tables must not survive the rebuild.
        dead = 0
        index.apply_faults({dead, index.link_reverse[dead]}, set())
        assert index.fault_epoch == 1
        routing.rebuild()
        assert routing.compiled_tables is None

        # Stale tables (epoch 0) offered to a faulted index are refused.
        refused = AdaptiveMinimalRouting(index, tables=tables)
        assert refused.compiled_tables is None

        # A fresh index at epoch 0 adopts again and agrees with scratch.
        fresh = AdaptiveMinimalRouting(
            FabricIndex(topology),
            tables=DenseCandidateTables.from_arrays(
                FabricIndex(topology), *parts.routing
            ),
        )
        for (s, d), cands in reference.items():
            assert fresh.raw_candidates(s, d) == cands

    def test_boot_adoption_matches_scratch_build(self, store):
        topology = make_leaf_spine(8, 4, uplinks=1, east_west=True)
        config = scheme_config(Scheme.DRAIN, TINY, seed=1)
        parts = structcache.parts_for(topology, config)
        index = FabricIndex(topology)
        adopted = AdaptiveMinimalRouting(
            index, tables=DenseCandidateTables.from_arrays(
                index, *parts.routing
            ),
        )
        scratch = AdaptiveMinimalRouting(FabricIndex(topology))
        n = topology.num_nodes
        for s in range(n):
            for d in range(n):
                if s != d:
                    assert (adopted.raw_candidates(s, d)
                            == scratch.raw_candidates(s, d))


# ----------------------------------------------------------------------
# Harness warm start
# ----------------------------------------------------------------------
class TestHarnessWarmStart:
    def test_warm_vs_cold_rows_bit_identical(self, store):
        specs = [tiny_spec(seed=s) for s in (1, 2, 3)]
        cold = Harness(workers=1, cache=None).run(specs)
        structcache.clear_memos()
        warm = Harness(workers=1, cache=None).run(specs)
        structcache.deactivate()
        structcache.clear_memos()
        bare = Harness(workers=1, cache=None).run(specs)
        dump = lambda rows: json.dumps(rows, sort_keys=True)  # noqa: E731
        assert dump(cold) == dump(warm) == dump(bare)

    def test_concurrent_workers_compile_once(self, store):
        # Four trials over ONE structure, two workers: the parent's warm
        # start compiles each artefact exactly once; workers only load.
        specs = [tiny_spec(seed=s) for s in (1, 2, 3, 4)]
        results = Harness(workers=2, cache=None).run(specs)
        assert len(results) == 4
        counts = store.entry_counts()
        assert counts["dist"] == 1, counts
        assert counts["routing"] == 1, counts
        assert counts["drain"] == 1, counts
        # dist + routing + drain compiled once each, never again.
        assert store.compiles == 3, store.stats()
        assert store.corrupt == 0

    def test_two_structures_two_compiles(self, store):
        specs = [tiny_spec(seed=1), tiny_spec(seed=2, scheme=Scheme.SPIN)]
        Harness(workers=1, cache=None).run(specs)
        counts = store.entry_counts()
        # One topology (shared dist/) but two (topology, config) routing
        # structures; drain tables only exist for the DRAIN scheme.
        assert counts["dist"] == 1, counts
        assert counts["routing"] == 2, counts
        assert counts["drain"] == 1, counts


# ----------------------------------------------------------------------
# Certificates
# ----------------------------------------------------------------------
class TestCertificates:
    def test_preflight_certificate_persists(self, store):
        from repro.analysis.preflight import (
            clear_preflight_cache,
            validate_spec,
        )

        spec = tiny_spec()
        clear_preflight_cache()
        first = validate_spec(spec)
        assert first is not None and store.entry_counts()["certs"] == 1
        clear_preflight_cache()
        second = validate_spec(spec)
        assert second.as_dict() == first.as_dict()
        assert store.entry_counts()["certs"] == 1
