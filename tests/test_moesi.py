"""Tests for the MOESI six-class protocol model."""

import random

import pytest

from repro.core.config import NetworkConfig, ProtocolConfig, Scheme, SimConfig
from repro.core.simulator import Simulation
from repro.protocol.moesi import MoesiTraffic
from repro.router.packet import MessageClass
from tests.conftest import make_config


def run_moesi(scheme, vns, vcs, topo, issue=0.10, txns=200, cycles=40_000,
              wb=0.3, epoch=256, halt=False, seed=5):
    config = SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=vns, vcs_per_vn=vcs,
                              ejection_queue_depth=2),
        drain=make_config(Scheme.DRAIN, epoch=epoch).drain,
        seed=seed,
    )
    traffic = MoesiTraffic(
        topo.num_nodes,
        ProtocolConfig(mshrs_per_node=8, forward_probability=0.5),
        issue,
        random.Random(seed),
        total_transactions=txns,
        writeback_fraction=wb,
    )
    sim = Simulation(topo, config, traffic, halt_on_deadlock=halt)
    sim.run(cycles)
    return sim, traffic


class TestMoesiMechanics:
    def test_transactions_complete_with_six_vns(self, mesh4):
        sim, traffic = run_moesi(Scheme.ESCAPE_VC, 6, 2, mesh4)
        assert traffic.done()
        assert traffic.completed == 200

    def test_all_six_classes_travel(self, mesh4):
        sim, traffic = run_moesi(Scheme.ESCAPE_VC, 6, 2, mesh4, wb=0.4)
        hops = sim.stats.vn_hops
        for vn in range(6):
            assert hops.get(vn, 0) > 0, f"class {MessageClass(vn).name} idle"

    def test_pure_reads_use_no_wb_classes(self, mesh4):
        sim, traffic = run_moesi(Scheme.ESCAPE_VC, 6, 2, mesh4, wb=0.0)
        assert traffic.done()
        assert sim.stats.vn_hops.get(int(MessageClass.WB), 0) == 0
        assert sim.stats.vn_hops.get(int(MessageClass.WB_ACK), 0) == 0

    def test_pure_writebacks_two_hop_only(self, mesh4):
        sim, traffic = run_moesi(Scheme.ESCAPE_VC, 6, 2, mesh4, wb=1.0)
        assert traffic.done()
        # WB + WB_ACK only: exactly two packets per transaction.
        assert sim.stats.packets_injected == 2 * 200

    def test_mshr_bound(self, mesh4):
        config = ProtocolConfig(mshrs_per_node=4)
        traffic = MoesiTraffic(16, config, 1.0, random.Random(1))
        sim = Simulation(mesh4, make_config(Scheme.ESCAPE_VC, num_vns=6), traffic)
        for _ in range(400):
            sim.step()
            assert all(0 <= o <= 4 for o in traffic.outstanding)

    def test_read_transaction_injects_unblock(self, mesh4):
        sim, traffic = run_moesi(Scheme.ESCAPE_VC, 6, 2, mesh4, wb=0.0,
                                 txns=50)
        assert traffic.done()
        # 2-hop reads: REQ + RESP + UNBLOCK = 3 packets; 3-hop adds FWD.
        assert sim.stats.packets_injected >= 3 * 50

    def test_validation(self):
        with pytest.raises(ValueError):
            MoesiTraffic(2, ProtocolConfig(), 0.1, random.Random(1))
        with pytest.raises(ValueError):
            MoesiTraffic(16, ProtocolConfig(), 0.1, random.Random(1),
                         writeback_fraction=1.5)


class TestMoesiDeadlockStory:
    """Deeper class chains, same subactive cure."""

    def test_shared_vn_without_protection_wedges(self, faulty4):
        sim, traffic = run_moesi(
            Scheme.NONE, 1, 1, faulty4, issue=0.2, cycles=20_000, halt=True,
        )
        assert sim.deadlocked
        assert not traffic.done()

    def test_drain_single_vn_completes(self, faulty4):
        sim, traffic = run_moesi(Scheme.DRAIN, 1, 2, faulty4, issue=0.2,
                                 cycles=120_000, epoch=128)
        assert traffic.done()

    def test_six_vns_prevent_protocol_deadlock(self, faulty4):
        sim, traffic = run_moesi(Scheme.ESCAPE_VC, 6, 2, faulty4, issue=0.2)
        assert traffic.done()
