"""Smoke coverage for the example scripts.

Each example must at least byte-compile; the fastest one is executed
end-to-end so a broken public API surfaces here before a user hits it.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "fault_tolerance.py",
        "coherence_protocol.py",
        "walkthrough_fig8.py",
        "chiplet_interposer.py",
        "wearout_lifetime.py",
        "trace_replay.py",
        "wormhole_truncation.py",
        "lossless_pfc.py",
    } <= names


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(example, tmp_path):
    py_compile.compile(str(example), cfile=str(tmp_path / "c.pyc"), doraise=True)


def test_walkthrough_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "walkthrough_fig8.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    assert "Deadlock fully removed" in result.stdout
