"""Tests for the wormhole (flit-based) fabric and DRAIN packet truncation."""

import random

import pytest

from repro.core.config import DrainConfig, NetworkConfig, Scheme, SimConfig
from repro.core.simulator import Simulation
from repro.drain.controller import DrainController
from repro.network.index import FabricIndex
from repro.network.wormhole import WormholeFabric
from repro.router.flit import Flit, FlitType, make_flits
from repro.router.packet import Packet
from repro.routing.adaptive import AdaptiveMinimalRouting
from repro.topology.mesh import make_mesh
from repro.traffic.synthetic import SyntheticTraffic, UniformRandom


def make_wormhole(topo=None, vcs=2, flits=4, depth=4, escape_mode="drain",
                  epoch=10**9):
    topo = topo if topo is not None else make_mesh(4, 4)
    index = FabricIndex(topo)
    config = SimConfig(
        scheme=Scheme.DRAIN,
        network=NetworkConfig(num_vns=1, vcs_per_vn=vcs),
        drain=DrainConfig(epoch=epoch),
    )
    fabric = WormholeFabric(
        index, config, AdaptiveMinimalRouting(index),
        escape_mode=escape_mode, flits_per_packet=flits,
        vc_depth_flits=depth, rng=random.Random(1),
    )
    return fabric


class TestFlits:
    def test_make_flits_single(self):
        flits = make_flits(Packet(0, 0, 1), 1)
        assert len(flits) == 1
        assert flits[0].kind is FlitType.HEAD_TAIL
        assert flits[0].is_head and flits[0].is_tail

    def test_make_flits_multi(self):
        flits = make_flits(Packet(0, 0, 1), 4)
        kinds = [f.kind for f in flits]
        assert kinds == [FlitType.HEAD, FlitType.BODY, FlitType.BODY,
                         FlitType.TAIL]
        assert [f.index for f in flits] == [0, 1, 2, 3]

    def test_zero_flits_rejected(self):
        with pytest.raises(ValueError):
            make_flits(Packet(0, 0, 1), 0)


class TestWormholeBasics:
    def test_single_packet_delivery(self):
        fabric = make_wormhole()
        packet = Packet(0, 0, 5, gen_cycle=0)
        fabric.offer_packet(packet)
        for _ in range(40):
            fabric.step()
        assert packet.eject_cycle is not None
        assert fabric.count_flits() == 0
        assert fabric.stats.packets_ejected == 1

    def test_flit_count_matches_packet_size(self):
        fabric = make_wormhole(flits=6, depth=6)
        packet = Packet(0, 0, 5, gen_cycle=0)
        fabric.offer_packet(packet)
        fabric.step()  # injection writes all flits
        assert fabric.count_flits() == 6

    def test_longer_packets_take_longer(self):
        def latency(flits):
            fabric = make_wormhole(flits=flits, depth=flits)
            packet = Packet(0, 0, 15, gen_cycle=0)
            fabric.offer_packet(packet)
            for _ in range(100):
                fabric.step()
                if packet.eject_cycle is not None:
                    return packet.eject_cycle
            raise AssertionError("packet never delivered")

        assert latency(8) > latency(2)

    def test_many_packets_all_delivered(self):
        topo = make_mesh(4, 4)
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=500),
        )
        traffic = SyntheticTraffic(UniformRandom(16), 0.06, random.Random(2))
        sim = Simulation(topo, config, traffic, flow_control="wormhole")
        stats = sim.run(3000, warmup=500)
        assert stats.packets_ejected > 1500
        # conservation: injected = delivered + in flight
        assert (
            stats.packets_injected
            == stats.packets_ejected + sim.fabric.packets_in_flight
        )

    def test_vc_holds_single_segment(self):
        """Atomic VC reuse: flits of two packets never interleave in a VC."""
        fabric = make_wormhole(flits=3, depth=6)
        rng = random.Random(4)
        pid = 0
        for cycle in range(200):
            for node in range(16):
                if rng.random() < 0.4:
                    dst = rng.randrange(16)
                    if dst != node:
                        fabric.offer_packet(Packet(pid, node, dst,
                                                   gen_cycle=cycle))
                        pid += 1
            fabric.step()
            for port in range(fabric.index.num_ports):
                for vn in range(fabric.num_vns):
                    for state in fabric.vcs[port][vn]:
                        owners = {
                            (f.packet.pid, f.segment) for f in state.flits
                        }
                        assert len(owners) <= 1

    def test_baseline_scheme_restriction(self):
        topo = make_mesh(4, 4)
        config = SimConfig(scheme=Scheme.SPIN)
        traffic = SyntheticTraffic(UniformRandom(16), 0.05, random.Random(1))
        with pytest.raises(ValueError):
            Simulation(topo, config, traffic, flow_control="wormhole")


class TestTruncation:
    def _fabric_with_inflight_packet(self):
        """Stretch an 8-flit packet across several VCs with tiny buffers."""
        fabric = make_wormhole(flits=8, depth=2)
        packet = Packet(0, 0, 15, gen_cycle=0)
        # Give the injection VC enough room for the whole packet.
        fabric.vc_depth = 2
        inj_port = fabric.index.num_links + 0
        fabric.seed_flits(inj_port, 0, 0, make_flits(packet, 8))
        fabric._packet_sizes[0] = 8
        fabric.packets_in_flight += 1
        for _ in range(4):
            fabric.step()  # the worm stretches over 2-3 VCs
        return fabric, packet

    def test_worm_spans_multiple_vcs(self):
        fabric, _packet = self._fabric_with_inflight_packet()
        occupied = [
            (port, vn, vc)
            for port in range(fabric.index.num_ports)
            for vn in range(fabric.num_vns)
            for vc, state in enumerate(fabric.vcs[port][vn])
            if state.flits
        ]
        assert len(occupied) >= 2

    def test_truncation_retags_segments(self):
        fabric, _packet = self._fabric_with_inflight_packet()
        fabric._drain_generation += 1
        fabric._truncate_all()
        for port in range(fabric.index.num_ports):
            for vn in range(fabric.num_vns):
                for state in fabric.vcs[port][vn]:
                    if not state.flits:
                        continue
                    flits = list(state.flits)
                    assert flits[0].is_head
                    assert flits[-1].is_tail
                    for mid in flits[1:-1]:
                        assert mid.kind is FlitType.BODY
                    assert state.out_link is None

    def test_truncated_packet_fully_reassembles(self):
        fabric, packet = self._fabric_with_inflight_packet()
        controller = DrainController(fabric, fabric.config.drain)
        fabric.frozen = True
        controller._rotate_once()  # truncates the worm
        fabric.frozen = False
        for _ in range(300):
            fabric.step()
            if packet.eject_cycle is not None:
                break
        assert packet.eject_cycle is not None, "truncated packet lost"
        assert fabric.count_flits() == 0
        assert fabric.stats.packets_ejected == 1

    def test_no_flit_duplication_across_drains(self):
        """Exactly-once flit delivery even with frequent truncation."""
        topo = make_mesh(4, 4)
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=40),  # truncate often
        )
        traffic = SyntheticTraffic(UniformRandom(16), 0.08, random.Random(3))
        sim = Simulation(topo, config, traffic, flow_control="wormhole")
        stats = sim.run(4000)  # _eject_flit raises on duplicate delivery
        assert stats.drain_windows > 10
        assert stats.packets_ejected > 500


class TestWormholeDrainCorrectness:
    def test_wedged_wormhole_drains_out(self):
        """Burst-overload the network, stop traffic, and require full
        delivery — eventual delivery under truncation."""
        topo = make_mesh(4, 4)
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2),
            drain=DrainConfig(epoch=128, full_drain_period=8),
        )

        class Burst(SyntheticTraffic):
            def generate(self, fabric, cycle):
                if cycle < 150:
                    super().generate(fabric, cycle)
                else:
                    for node in range(16):
                        b = self._backlog[node]
                        while b and fabric.offer_packet(b[0]):
                            b.popleft()

        traffic = Burst(UniformRandom(16), 0.5, random.Random(5))
        sim = Simulation(topo, config, traffic, flow_control="wormhole")
        for _ in range(60_000):
            sim.step()
            if (
                sim.fabric.cycle > 200
                and traffic.backlog_size() == 0
                and sim.fabric.count_flits() == 0
                and all(not q for qs in sim.fabric.inj_queues for q in qs)
            ):
                break
        assert sim.fabric.count_flits() == 0
        assert sim.stats.packets_ejected == traffic.generated
