"""Unit + property tests for fault injection and random topologies."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.irregular import (
    inject_link_faults,
    random_connected_topology,
    random_fault_patterns,
)
from repro.topology.mesh import make_mesh


class TestInjectLinkFaults:
    def test_removes_requested_count(self):
        topo = make_mesh(4, 4)
        faulty = inject_link_faults(topo, 5, random.Random(1))
        assert faulty.num_edges == topo.num_edges - 5

    def test_stays_connected(self):
        topo = make_mesh(4, 4)
        faulty = inject_link_faults(topo, 8, random.Random(2))
        assert faulty.is_connected()

    def test_original_untouched(self):
        topo = make_mesh(4, 4)
        inject_link_faults(topo, 4, random.Random(3))
        assert topo.num_edges == 24

    def test_zero_faults_is_copy(self):
        topo = make_mesh(4, 4)
        faulty = inject_link_faults(topo, 0, random.Random(4))
        assert faulty.num_edges == topo.num_edges

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            inject_link_faults(make_mesh(4, 4), -1, random.Random(5))

    def test_impossible_count_raises(self):
        # A 4x4 mesh needs >= 15 links to stay connected; 24-15=9 removable.
        with pytest.raises(ValueError):
            inject_link_faults(make_mesh(4, 4), 20, random.Random(6))

    def test_ring_has_exactly_one_removable_link(self):
        from repro.topology.mesh import make_ring

        faulty = inject_link_faults(make_ring(6), 1, random.Random(6))
        assert faulty.is_connected()
        with pytest.raises(ValueError):
            inject_link_faults(make_ring(6), 2, random.Random(6))

    def test_two_node_network_has_no_removable_link(self):
        from repro.topology.graph import Topology

        pair = Topology(2, [(0, 1)], name="pair")
        with pytest.raises(ValueError):
            inject_link_faults(pair, 1, random.Random(6))

    def test_maximum_removable_leaves_spanning_tree(self):
        topo = make_mesh(4, 4)
        faulty = inject_link_faults(topo, 9, random.Random(7))
        assert faulty.num_edges == 15  # spanning tree of 16 nodes
        assert faulty.is_connected()

    def test_deterministic_given_rng(self):
        a = inject_link_faults(make_mesh(4, 4), 6, random.Random(42))
        b = inject_link_faults(make_mesh(4, 4), 6, random.Random(42))
        assert a.bidirectional_links() == b.bidirectional_links()

    def test_name_records_fault_count(self):
        faulty = inject_link_faults(make_mesh(4, 4), 3, random.Random(8))
        assert "f3" in faulty.name

    @given(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_property_connected_and_exact(self, faults, seed):
        faulty = inject_link_faults(make_mesh(4, 4), faults, random.Random(seed))
        assert faulty.is_connected()
        assert faulty.num_edges == 24 - faults


class TestRandomFaultPatterns:
    def test_count(self):
        patterns = random_fault_patterns(make_mesh(4, 4), 4, 5, seed=1)
        assert len(patterns) == 5

    def test_patterns_differ(self):
        patterns = random_fault_patterns(make_mesh(8, 8), 8, 4, seed=1)
        edge_sets = {tuple(p.bidirectional_links()) for p in patterns}
        assert len(edge_sets) > 1

    def test_reproducible(self):
        a = random_fault_patterns(make_mesh(4, 4), 4, 3, seed=9)
        b = random_fault_patterns(make_mesh(4, 4), 4, 3, seed=9)
        assert [p.bidirectional_links() for p in a] == [
            p.bidirectional_links() for p in b
        ]


class TestRandomConnectedTopology:
    @given(st.integers(min_value=2, max_value=24), st.integers(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_property_always_connected(self, nodes, extra):
        topo = random_connected_topology(nodes, extra, random.Random(nodes * 31 + extra))
        assert topo.is_connected()
        assert topo.num_edges >= nodes - 1

    def test_extra_edges_bounded_by_complete_graph(self):
        topo = random_connected_topology(4, 100, random.Random(1))
        assert topo.num_edges == 6  # K4
