"""Unit tests for drain turn-tables (Figure 7's per-router registers)."""

import pytest

from repro.drain.path import euler_drain_path
from repro.drain.turntable import TurnTable, build_turn_tables
from repro.topology.graph import Link
from repro.topology.mesh import make_mesh, make_ring


class TestBuildTurnTables:
    def test_one_table_per_router(self):
        topo = make_mesh(3, 3)
        tables = build_turn_tables(euler_drain_path(topo))
        assert set(tables) == set(topo.nodes)

    def test_entries_cover_all_input_links(self):
        topo = make_mesh(4, 4)
        tables = build_turn_tables(euler_drain_path(topo))
        for n, table in tables.items():
            assert set(table.input_links()) == set(topo.links_into(n))

    def test_outputs_leave_the_router(self):
        topo = make_ring(5)
        tables = build_turn_tables(euler_drain_path(topo))
        for n, table in tables.items():
            for in_link in table.input_links():
                out = table.output_for(in_link)
                assert out.src == n

    def test_tables_reassemble_the_path(self):
        topo = make_mesh(3, 3)
        path = euler_drain_path(topo)
        tables = build_turn_tables(path)
        # Walk the turn tables starting from the path's first link; we must
        # traverse every link exactly once and return to the start.
        start = path.links[0]
        seen = []
        link = start
        for _ in range(len(path)):
            seen.append(link)
            link = tables[link.dst].output_for(link)
        assert link == start
        assert len(set(seen)) == len(path)

    def test_entry_count_matches_degree(self):
        topo = make_mesh(4, 4)
        tables = build_turn_tables(euler_drain_path(topo))
        for n in topo.nodes:
            assert len(tables[n]) == topo.degree(n)


class TestTurnTableValidation:
    def test_wrong_router_rejected(self):
        with pytest.raises(ValueError):
            TurnTable(0, {Link(1, 2): Link(2, 3)})

    def test_output_from_other_router_rejected(self):
        with pytest.raises(ValueError):
            TurnTable(2, {Link(1, 2): Link(3, 4)})

    def test_missing_input_link_raises_keyerror(self):
        table = TurnTable(2, {Link(1, 2): Link(2, 1)})
        with pytest.raises(KeyError):
            table.output_for(Link(3, 2))
