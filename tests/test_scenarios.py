"""Tests for the executable Figure 1 / Figure 2 scenarios."""

from repro.experiments.fig1_fig2_scenarios import (
    protocol_deadlock_scenario,
    routing_deadlock_scenario,
)


class TestFigure1:
    def test_all_four_panels(self):
        rows = {r["panel"]: r for r in routing_deadlock_scenario()}
        assert set(rows) == {
            "1a_no_protection", "1b_turn_restrictions", "1c_spin", "1d_drain",
        }

    def test_unprotected_wedge_persists(self):
        rows = {r["panel"]: r for r in routing_deadlock_scenario()}
        panel = rows["1a_no_protection"]
        assert panel["still_deadlocked"]
        assert not panel["resolved"]
        assert panel["delivered"] == 0

    def test_turn_restrictions_prevent_cycles(self):
        rows = {r["panel"]: r for r in routing_deadlock_scenario()}
        assert rows["1b_turn_restrictions"]["restricted_turn_cycles"] == 0

    def test_spin_detects_and_resolves(self):
        rows = {r["panel"]: r for r in routing_deadlock_scenario()}
        panel = rows["1c_spin"]
        assert panel["resolved"]
        assert panel["probes"] > 0  # SPIN pays for detection
        assert panel["spins"] >= 1

    def test_drain_resolves_without_detection(self):
        rows = {r["panel"]: r for r in routing_deadlock_scenario()}
        panel = rows["1d_drain"]
        assert panel["resolved"]
        assert panel["probes"] == 0  # subactive: no detection traffic
        assert panel["drain_windows"] >= 1


class TestFigure2:
    def test_all_three_panels(self):
        rows = {r["panel"]: r for r in protocol_deadlock_scenario()}
        assert set(rows) == {
            "2a_shared_vn_no_protection",
            "2b_virtual_networks",
            "2c_drain_single_vn",
        }

    def test_shared_vn_wedges(self):
        rows = {r["panel"]: r for r in protocol_deadlock_scenario()}
        panel = rows["2a_shared_vn_no_protection"]
        assert panel["wedged"]
        assert panel["completed"] < panel["quota"]

    def test_virtual_networks_complete(self):
        rows = {r["panel"]: r for r in protocol_deadlock_scenario()}
        assert rows["2b_virtual_networks"]["resolved"]

    def test_drain_completes_on_one_vn(self):
        rows = {r["panel"]: r for r in protocol_deadlock_scenario()}
        assert rows["2c_drain_single_vn"]["resolved"]
