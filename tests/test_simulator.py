"""End-to-end tests for the Simulation facade."""

import random

import pytest

from repro.core.config import Scheme
from repro.core.simulator import Simulation
from repro.traffic.synthetic import SyntheticTraffic, UniformRandom
from tests.conftest import make_config


def make_sim(topo, scheme, rate=0.05, seed=3, **cfg_kwargs):
    config = make_config(scheme, **cfg_kwargs).with_seed(seed)
    traffic = SyntheticTraffic(
        UniformRandom(topo.num_nodes), rate, random.Random(seed)
    )
    return Simulation(topo, config, traffic)


class TestSchemeWiring:
    def test_drain_gets_controller(self, mesh4):
        sim = make_sim(mesh4, Scheme.DRAIN)
        assert sim.drain_controller is not None
        assert sim.spin_controller is None

    def test_spin_gets_controller(self, mesh4):
        sim = make_sim(mesh4, Scheme.SPIN, num_vns=3)
        assert sim.spin_controller is not None
        assert sim.drain_controller is None

    def test_ideal_gets_resolver(self, mesh4):
        sim = make_sim(mesh4, Scheme.IDEAL)
        assert sim.ideal_resolver is not None

    def test_none_gets_watchdog(self, mesh4):
        sim = make_sim(mesh4, Scheme.NONE)
        assert sim.watchdog is not None

    def test_escape_vc_uses_dor_on_fault_free_mesh(self, mesh4):
        from repro.routing.dor import DimensionOrderRouting

        sim = make_sim(mesh4, Scheme.ESCAPE_VC, num_vns=3)
        assert isinstance(sim.fabric.escape_routing, DimensionOrderRouting)

    def test_escape_vc_uses_updown_on_faulty_mesh(self, faulty8):
        from repro.routing.updown import UpDownRouting

        sim = make_sim(faulty8, Scheme.ESCAPE_VC, num_vns=3)
        assert isinstance(sim.fabric.escape_routing, UpDownRouting)

    def test_updown_scheme_routes_everything_updown(self, faulty8):
        from repro.routing.updown import UpDownRouting

        sim = make_sim(faulty8, Scheme.UPDOWN)
        assert isinstance(sim.fabric.routing, UpDownRouting)


class TestRunSemantics:
    def test_warmup_must_be_shorter_than_run(self, mesh4):
        sim = make_sim(mesh4, Scheme.DRAIN)
        with pytest.raises(ValueError):
            sim.run(100, warmup=100)

    def test_measured_cycles_recorded(self, mesh4):
        sim = make_sim(mesh4, Scheme.DRAIN)
        stats = sim.run(500, warmup=100)
        assert stats.measured_cycles == 400
        assert stats.cycles == 500

    def test_all_schemes_deliver_at_low_load(self, faulty8):
        for scheme in (Scheme.DRAIN, Scheme.SPIN, Scheme.ESCAPE_VC,
                       Scheme.UPDOWN, Scheme.IDEAL):
            sim = make_sim(
                faulty8, scheme, rate=0.03,
                num_vns=3 if scheme in (Scheme.SPIN, Scheme.ESCAPE_VC) else 1,
            )
            stats = sim.run(1500, warmup=300)
            assert stats.packets_ejected > 500, scheme
            assert stats.avg_latency > 0, scheme

    def test_throughput_tracks_offered_load_at_low_rate(self, mesh4):
        sim = make_sim(mesh4, Scheme.DRAIN, rate=0.05)
        sim.run(2000, warmup=500)
        assert sim.throughput() == pytest.approx(0.05, rel=0.15)

    def test_deterministic_given_seed(self, faulty8):
        a = make_sim(faulty8, Scheme.DRAIN, rate=0.08, seed=11)
        b = make_sim(faulty8, Scheme.DRAIN, rate=0.08, seed=11)
        sa = a.run(1000, warmup=200)
        sb = b.run(1000, warmup=200)
        assert sa.packets_ejected == sb.packets_ejected
        assert sa.avg_latency == sb.avg_latency
        assert sa.misroutes == sb.misroutes

    def test_different_seeds_differ(self, faulty8):
        a = make_sim(faulty8, Scheme.DRAIN, rate=0.08, seed=11)
        b = make_sim(faulty8, Scheme.DRAIN, rate=0.08, seed=12)
        sa = a.run(1000, warmup=200)
        sb = b.run(1000, warmup=200)
        assert sa.packets_ejected != sb.packets_ejected


class TestSchemeBehaviour:
    def test_drain_windows_happen(self, mesh4):
        sim = make_sim(mesh4, Scheme.DRAIN, epoch=200)
        stats = sim.run(1500)
        assert stats.drain_windows >= 5

    def test_short_epoch_causes_misroutes(self, mesh8):
        sim = make_sim(mesh8, Scheme.DRAIN, rate=0.08, epoch=64)
        stats = sim.run(1500)
        assert stats.misroutes > 0

    def test_long_epoch_low_load_no_misroutes(self, mesh8):
        sim = make_sim(mesh8, Scheme.DRAIN, rate=0.02, epoch=10**6)
        stats = sim.run(1500)
        assert stats.misroutes == 0
        assert stats.drain_windows == 0

    def test_updown_latency_worse_than_adaptive(self, faulty8):
        adaptive = make_sim(faulty8, Scheme.IDEAL, rate=0.02, seed=4)
        updown = make_sim(faulty8, Scheme.UPDOWN, rate=0.02, seed=4)
        la = adaptive.run(2500, warmup=500).avg_latency
        lu = updown.run(2500, warmup=500).avg_latency
        assert lu > la

    def test_halt_on_deadlock_stops_early(self, faulty8):
        config = make_config(Scheme.NONE, num_vns=1, vcs_per_vn=1)
        traffic = SyntheticTraffic(UniformRandom(64), 0.4, random.Random(5))
        sim = Simulation(faulty8, config, traffic, halt_on_deadlock=True)
        stats = sim.run(20_000)
        assert sim.deadlocked
        assert stats.cycles < 20_000
