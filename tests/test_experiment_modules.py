"""Unit tests for experiment modules not covered by test_experiments.py
(application engine, Section VI, lifetime), on a tiny scale."""

import pytest

from repro.experiments import heterogeneous, lifetime
from repro.experiments.applications import (
    APP_CONFIGS,
    AppConfig,
    application_study,
    run_application,
)
from repro.experiments.common import Scale
from repro.topology.mesh import make_mesh
from repro.traffic.workloads import PARSEC, workload_by_name


@pytest.fixture
def micro_scale():
    return Scale(
        warmup=100,
        measure=400,
        fault_patterns=1,
        sweep_rates=(0.05,),
        low_load_rate=0.02,
        epoch=256,
        spin_timeout=64,
        app_transactions_per_node=5,
        app_max_cycles=15_000,
    )


class TestAppConfigs:
    def test_five_paper_configurations(self):
        labels = [c.label for c in APP_CONFIGS]
        assert labels == [
            "escape_vc", "spin", "drain_vn3_vc2", "drain_vn1_vc6",
            "drain_vn1_vc2",
        ]

    def test_drain_default_is_single_vn(self):
        default = next(c for c in APP_CONFIGS if c.label == "drain_vn1_vc2")
        assert default.num_vns == 1 and default.vcs_per_vn == 2

    def test_vc6_matches_baseline_total(self):
        baseline = next(c for c in APP_CONFIGS if c.label == "escape_vc")
        vc6 = next(c for c in APP_CONFIGS if c.label == "drain_vn1_vc6")
        assert baseline.num_vns * baseline.vcs_per_vn == vc6.vcs_per_vn


class TestRunApplication:
    def test_completes_and_reports(self, micro_scale, mesh4):
        row = run_application(
            workload_by_name("blackscholes"), mesh4, APP_CONFIGS[0],
            micro_scale, mesh_width=4,
        )
        assert row["finished"]
        assert row["completed"] == 5 * 16
        assert row["latency"] > 0
        assert row["runtime"] > 0

    def test_study_normalises_against_escape(self, micro_scale):
        rows = application_study(
            [PARSEC[0]], faults=(0,), scale=micro_scale, mesh_width=4,
            configs=APP_CONFIGS[:3],
        )
        baseline = next(r for r in rows if r["config"] == "escape_vc")
        assert baseline["norm_latency"] == pytest.approx(1.0)
        assert baseline["norm_runtime"] == pytest.approx(1.0)
        assert all("norm_latency" in r for r in rows)

    def test_study_rows_per_config_and_fault(self, micro_scale):
        rows = application_study(
            [PARSEC[0]], faults=(0, 2), scale=micro_scale, mesh_width=4,
            configs=APP_CONFIGS[:2],
        )
        assert len(rows) == 2 * 2


class TestHeterogeneous:
    def test_rows_and_columns(self, micro_scale):
        rows = heterogeneous.heterogeneous_study(scale=micro_scale)
        assert len(rows) == 4
        for row in rows:
            assert {"topology", "drain_latency", "updown_latency",
                    "drain_hops", "updown_hops"} <= set(row)
            assert row["drain_latency"] > 0

    def test_covers_chiplet_and_random(self, micro_scale):
        names = [r["topology"] for r in
                 heterogeneous.heterogeneous_study(scale=micro_scale)]
        assert any(n.startswith("chiplet") for n in names)
        assert any(n.startswith("smallworld") for n in names)


class TestLifetime:
    def test_path_tracks_surviving_links(self, micro_scale):
        rows = lifetime.lifetime_study(
            total_failures=4, measure_every=2, mesh_width=4,
            scale=micro_scale,
        )
        assert rows[0]["failures"] == 0
        for row in rows:
            assert row["drain_path_length"] == 2 * row["links_left"]
            assert row["drain_delivered"] > 0

    def test_links_strictly_decrease(self, micro_scale):
        rows = lifetime.lifetime_study(
            total_failures=4, measure_every=2, mesh_width=4,
            scale=micro_scale,
        )
        links = [r["links_left"] for r in rows]
        assert links == sorted(links, reverse=True)
        assert links[0] > links[-1]
