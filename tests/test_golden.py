"""Golden-snapshot regression tests.

Each snapshot in ``tests/golden/`` pins the full summary-statistics dict
of one fixed-seed simulation. The simulator is bit-deterministic (see
``test_determinism.py``), so any diff here is a real behavioural change —
either a bug or an intentional modelling change that must be acknowledged
by regenerating the snapshots with ``--update-golden``.
"""

from __future__ import annotations

import pytest

from repro.core.config import Scheme
from repro.experiments.common import Scale, synthetic_trial_for
from repro.harness import execute_trial
from repro.topology.mesh import make_mesh

# Deliberately small but non-trivial: long enough for DRAIN epochs and
# SPIN timeouts to fire at least once.
GOLD_SCALE = Scale(
    warmup=200,
    measure=800,
    fault_patterns=1,
    sweep_rates=(0.06,),
    epoch=256,
    spin_timeout=64,
)
GOLD_RATE = 0.06
GOLD_SEED = 7


def golden_trial(scheme: Scheme):
    return synthetic_trial_for(
        make_mesh(4, 4), scheme, GOLD_RATE, GOLD_SCALE, mesh_width=4,
        seed=GOLD_SEED,
    )


@pytest.mark.parametrize("scheme", list(Scheme), ids=lambda s: s.value)
def test_scheme_summary_matches_snapshot(scheme, golden_check):
    result = execute_trial(golden_trial(scheme))
    golden_check(f"synthetic_{scheme.value}", result)


def test_snapshots_have_signal(golden_check):
    """Guard against snapshotting a degenerate (empty) simulation."""
    result = execute_trial(golden_trial(Scheme.DRAIN))
    assert result["ejected"] > 0
    assert result["throughput"] > 0
    assert result["avg_latency"] > 0
