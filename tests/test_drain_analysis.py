"""Tests for drain-path analysis and overhead accounting."""

import pytest

from repro.core.config import DrainConfig
from repro.drain.analysis import (
    drain_overhead_fraction,
    misroute_expectation,
    path_report,
    router_visit_counts,
)
from repro.drain.path import euler_drain_path
from repro.topology.mesh import make_mesh, make_ring


class TestMisrouteExpectation:
    def test_in_unit_interval(self):
        path = euler_drain_path(make_mesh(4, 4))
        assert 0.0 <= misroute_expectation(path) <= 1.0

    def test_nonzero_on_mesh(self):
        """A covering cycle on a mesh necessarily drags some packets away
        from some destinations."""
        path = euler_drain_path(make_mesh(4, 4))
        assert misroute_expectation(path) > 0.0

    def test_ring_expectation_below_half(self):
        """On a ring, following the cycle direction is productive for at
        least half the destinations."""
        path = euler_drain_path(make_ring(8))
        assert misroute_expectation(path) < 0.5


class TestRouterVisitCounts:
    def test_visits_match_degree(self):
        topo = make_mesh(3, 3)
        path = euler_drain_path(topo)
        visits = router_visit_counts(path)
        for node in topo.nodes:
            assert visits[node] == topo.degree(node)

    def test_total_visits_equals_path_length(self):
        path = euler_drain_path(make_mesh(4, 4))
        assert sum(router_visit_counts(path).values()) == len(path)


class TestOverheadFraction:
    def test_decreases_with_epoch(self):
        short = drain_overhead_fraction(DrainConfig(epoch=64), 200)
        long = drain_overhead_fraction(DrainConfig(epoch=65536), 200)
        assert short > long
        assert 0.0 < long < short < 1.0

    def test_full_drain_amortisation(self):
        frequent = drain_overhead_fraction(
            DrainConfig(epoch=1024, full_drain_period=2), 400
        )
        rare = drain_overhead_fraction(
            DrainConfig(epoch=1024, full_drain_period=1000), 400
        )
        assert frequent > rare

    def test_bad_path_length_rejected(self):
        with pytest.raises(ValueError):
            drain_overhead_fraction(DrainConfig(), 0)

    def test_paper_default_is_negligible(self):
        """64K epochs + 5-cycle windows: overhead far below 0.1%."""
        fraction = drain_overhead_fraction(DrainConfig(), 224)
        assert fraction < 0.001


class TestPathReport:
    def test_report_keys(self):
        path = euler_drain_path(make_mesh(3, 3))
        report = path_report(path, DrainConfig(epoch=1024))
        assert set(report) == {
            "path_length",
            "misroute_expectation",
            "max_router_visits",
            "min_router_visits",
            "overhead_fraction",
        }
        assert report["path_length"] == len(path)
        assert report["min_router_visits"] >= 1.0
