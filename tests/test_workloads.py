"""Unit tests for the surrogate application workload profiles."""

import random

import pytest

from repro.protocol.coherence import CoherenceTraffic
from repro.traffic.workloads import (
    ALL_WORKLOADS,
    LIGRA,
    PARSEC,
    SPLASH2,
    make_workload_traffic,
    workload_by_name,
)


class TestProfiles:
    def test_all_suites_populated(self):
        assert len(PARSEC) == 5
        assert len(SPLASH2) == 5
        assert len(LIGRA) == 7

    def test_no_duplicate_names(self):
        names = [w.name for w in PARSEC + SPLASH2 + LIGRA]
        assert len(names) == len(set(names))

    def test_canneal_is_heaviest_parsec(self):
        """Section II-A: canneal has the highest injection rate."""
        canneal = workload_by_name("canneal")
        assert all(
            w.issue_probability <= canneal.issue_probability for w in PARSEC
        )

    def test_suites_tagged(self):
        assert all(w.suite == "parsec" for w in PARSEC)
        assert all(w.suite == "splash2" for w in SPLASH2)
        assert all(w.suite == "ligra" for w in LIGRA)

    def test_probabilities_in_range(self):
        for w in ALL_WORKLOADS.values():
            assert 0.0 < w.issue_probability <= 1.0
            assert 0.0 <= w.forward_probability <= 1.0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            workload_by_name("doom")


class TestMakeWorkloadTraffic:
    def test_builds_coherence_traffic(self):
        traffic = make_workload_traffic(
            workload_by_name("bfs"), 64, random.Random(1), mesh_width=8
        )
        assert isinstance(traffic, CoherenceTraffic)
        assert traffic.issue_probability == workload_by_name("bfs").issue_probability

    def test_forward_probability_transferred(self):
        profile = workload_by_name("canneal")
        traffic = make_workload_traffic(profile, 16, random.Random(2))
        assert traffic.config.forward_probability == profile.forward_probability

    def test_intensity_scale(self):
        profile = workload_by_name("bfs")
        traffic = make_workload_traffic(
            profile, 64, random.Random(3), intensity_scale=2.0
        )
        assert traffic.issue_probability == pytest.approx(
            min(1.0, profile.issue_probability * 2.0)
        )

    def test_transaction_quota_passed(self):
        traffic = make_workload_traffic(
            workload_by_name("fft"), 16, random.Random(4), total_transactions=99
        )
        assert traffic.total_transactions == 99
