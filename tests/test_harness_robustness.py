"""Crash-proofing tests for the sweep harness.

A long sweep must survive everything short of the host losing power:
workers segfaulting mid-trial, trials wedging forever, the parent being
SIGKILLed between journal writes, and cache entries torn by earlier
crashes. Each case here either recovers to the byte-identical artefact an
uninterrupted run would have produced, or fails loudly with a typed error
after bounded retries.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.config import Scheme
from repro.experiments.common import Scale
from repro.faults import FaultSchedule
from repro.harness import (
    Harness,
    ResultCache,
    SweepJournal,
    TrialExecutionError,
    TrialSpec,
    TrialTimeoutError,
    fault_recovery_trial,
    register_runner,
    synthetic_trial,
)
from repro.experiments.common import scheme_config, synthetic_trial_for
from repro.topology.mesh import make_mesh

TINY = Scale(warmup=100, measure=300, fault_patterns=1,
             sweep_rates=(0.04,), epoch=256, spin_timeout=64)


# --- misbehaving runners, registered once at import (workers fork) --------

@register_runner("crash_once")
def _crash_once(params):
    flag = params["flag"]
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("crashed")
        os._exit(42)  # simulates a segfaulting worker, not an exception
    return {"value": params["value"] * 2}


@register_runner("always_crashes")
def _always_crashes(params):
    os._exit(13)


@register_runner("sleepy")
def _sleepy(params):
    time.sleep(params["seconds"])
    return {"value": params["value"]}


@register_runner("always_raises")
def _always_raises(params):
    raise ValueError("deterministic bug in the trial itself")


def fault_specs(seeds=(1, 2)):
    """A couple of realistic fault-injected trials."""
    topo = make_mesh(4, 4)
    specs = []
    for seed in seeds:
        schedule = FaultSchedule.generate(
            topo, 2, seed=seed, window=(150, 350),
        )
        config = scheme_config(Scheme.DRAIN, TINY, seed=seed)
        specs.append(
            fault_recovery_trial(
                topo, config, 0.05, cycles=800, warmup=100,
                schedule=schedule, policy="drop_retransmit",
                curve_window=100, mesh_width=4,
            )
        )
    return specs


class TestWorkerCrash:
    def test_dead_worker_detected_and_trial_requeued(self, tmp_path):
        flag = tmp_path / "crashed.flag"
        spec = TrialSpec("crash_once", {"flag": str(flag), "value": 21})
        harness = Harness(workers=2, cache=None, timeout=30)
        (result,) = harness.run([spec])
        assert result == {"value": 42}
        assert flag.exists()
        assert harness.retries_performed == 1

    def test_crash_mid_sweep_same_artefact_as_clean_run(self, tmp_path):
        specs = fault_specs()
        clean = Harness(workers=1, cache=None).run(list(specs))
        flag = tmp_path / "mid.flag"
        crashy = [TrialSpec("crash_once", {"flag": str(flag), "value": 1})]
        crashy += fault_specs()
        harness = Harness(workers=2, cache=None, timeout=60)
        results = harness.run(crashy)
        assert results[0] == {"value": 2}
        assert json.dumps(results[1:], sort_keys=True) == json.dumps(
            clean, sort_keys=True
        )

    def test_exhausted_retries_raise(self, tmp_path):
        # A runner that always dies: every respawn crashes again.
        spec = TrialSpec("always_crashes", {"value": 1})
        harness = Harness(workers=1, cache=None, timeout=30, max_retries=1,
                          retry_backoff=0.01)
        with pytest.raises(TrialExecutionError):
            harness.run([spec])


class TestTimeouts:
    def test_wedged_trial_times_out_with_typed_error(self):
        spec = TrialSpec("sleepy", {"seconds": 60, "value": 1})
        harness = Harness(workers=1, cache=None, timeout=0.3, max_retries=1,
                          retry_backoff=0.01)
        with pytest.raises(TrialTimeoutError):
            harness.run([spec])

    def test_fast_trials_unaffected_by_timeout(self):
        specs = [TrialSpec("sleepy", {"seconds": 0, "value": v})
                 for v in range(4)]
        harness = Harness(workers=2, cache=None, timeout=30)
        results = harness.run(specs)
        assert [r["value"] for r in results] == [0, 1, 2, 3]
        assert harness.retries_performed == 0

    def test_deterministic_trial_bug_is_not_retried(self):
        spec = TrialSpec("always_raises", {})
        harness = Harness(workers=1, cache=None, timeout=30, max_retries=2)
        with pytest.raises(TrialExecutionError, match="deterministic bug"):
            harness.run([spec])
        assert harness.retries_performed == 0


class TestJournalResume:
    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path):
        specs = fault_specs()
        journal_path = tmp_path / "sweep.journal"
        with SweepJournal(journal_path) as journal:
            first = Harness(workers=1, cache=None, journal=journal).run(
                list(specs)
            )
        # Simulate SIGKILL mid-write: a torn record plus plain corruption
        # at the tail of the journal file.
        with open(journal_path, "a") as fh:
            fh.write('{"digest": "deadbeef", "result"')
            fh.write("\nnot json at all\n")
        with SweepJournal(journal_path) as journal:
            assert journal.corrupt_lines == 2
            harness = Harness(workers=1, cache=None, journal=journal)
            second = harness.run(list(specs))
        assert harness.trials_executed == 0  # everything replayed
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_journal_preferred_over_cache(self, tmp_path):
        spec = synthetic_trial_for(make_mesh(4, 4), Scheme.DRAIN, 0.05, TINY,
                                   mesh_width=4, seed=1)
        cache = ResultCache(tmp_path / "cache")
        with SweepJournal(tmp_path / "sweep.journal") as journal:
            harness = Harness(workers=1, cache=cache, journal=journal)
            (first,) = harness.run([spec])
            # Poison the cache entry; the journal copy must win.
            cache.put(spec.digest(), {"result": {"poisoned": True}})
            harness2 = Harness(workers=1, cache=cache, journal=journal)
            (second,) = harness2.run([spec])
        assert second == first
        assert harness2.trials_executed == 0


class TestCorruptCache:
    def test_torn_cache_entry_recomputed(self, tmp_path):
        spec = synthetic_trial_for(make_mesh(4, 4), Scheme.DRAIN, 0.05, TINY,
                                   mesh_width=4, seed=1)
        cache = ResultCache(tmp_path / "cache")
        (first,) = Harness(workers=1, cache=cache).run([spec])
        path = cache.path_for(spec.digest())
        path.write_text('{"spec": {}, "resu')  # torn mid-write
        harness = Harness(workers=1, cache=cache)
        (second,) = harness.run([spec])
        assert harness.trials_executed == 1
        assert second == first

    def test_valid_json_but_not_a_payload_recomputed(self, tmp_path):
        spec = synthetic_trial_for(make_mesh(4, 4), Scheme.DRAIN, 0.05, TINY,
                                   mesh_width=4, seed=1)
        cache = ResultCache(tmp_path / "cache")
        (first,) = Harness(workers=1, cache=cache).run([spec])
        cache.path_for(spec.digest()).write_text('["wrong", "shape"]')
        (second,) = Harness(workers=1, cache=cache).run([spec])
        assert second == first


class TestFaultDeterminism:
    def test_recovery_curves_identical_across_worker_counts(self):
        specs = fault_specs(seeds=(1, 2, 3))
        serial = Harness(workers=1, cache=None).run(list(specs))
        parallel = Harness(workers=4, cache=None).run(list(specs))
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )
        # The curves themselves are present and non-trivial.
        for res in serial:
            assert len(res["faults"]["recovery_curve"]) >= 5
            assert res["faults"]["faults_applied"] == 2
