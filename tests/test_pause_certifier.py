"""Pause-aware static certifier + engine-parity lint rules (DET007-012).

Known-answer coverage for the lossless certification matrix on the pinned
leaf-spine CBD scenario and the fat-tree up*/down* fabric, unit coverage
for the cycle canonicalisation helpers, the preflight pause gate, the
``repro-drain check --flow-control pause_resume`` CLI, and the four
engine-parity lint rules.
"""

import json

import pytest

from repro.analysis import (
    CERTIFIED,
    REFUTED,
    build_pause_bdg,
    canonical_rotation,
    certify_pause_configuration,
    is_kernel_path,
    lint_source,
    minimal_cycles,
    validate_spec,
)
from repro.analysis.certifier import routing_for
from repro.analysis.preflight import PreflightError, clear_preflight_cache
from repro.cli import main
from repro.core.config import (
    DrainConfig,
    NetworkConfig,
    PfcConfig,
    Scheme,
    SimConfig,
)
from repro.harness.trials import lossless_trial
from repro.network.index import FabricIndex
from repro.topology.datacenter import make_fat_tree, make_leaf_spine
from repro.traffic.flows import Flow


def scenario_topology():
    return make_leaf_spine(8, 4, uplinks=1, east_west=True)


#: The pinned CBD flow set: leaf i -> leaf (i+2) % 8 over the east-west
#: ring (matching tests/test_lossless.py's ring_flows).
RING_FLOWS = [(i, (i + 2) % 8) for i in range(8)]

#: The buffer cycle those flows close, already in canonical rotation.
RING_LINKS = [[i, (i + 1) % 8] for i in range(8)]


def pfc(pause=2, resume=0, headroom=1):
    return PfcConfig(pause_threshold=pause, resume_threshold=resume,
                     headroom=headroom)


# ---------------------------------------------------------------------------
# Cycle canonicalisation helpers
# ---------------------------------------------------------------------------
class TestCanonicalRotation:
    def test_rotations_collapse_to_one_representative(self):
        cycle = [[3, 4], [4, 5], [1, 2], [2, 3]]
        want = canonical_rotation(cycle)
        for k in range(len(cycle)):
            assert canonical_rotation(cycle[k:] + cycle[:k]) == want
        assert want[0] == [1, 2]

    def test_short_sequences_unchanged(self):
        assert canonical_rotation([]) == []
        assert canonical_rotation([7]) == [7]

    def test_ties_resolved_by_subsequent_elements(self):
        assert canonical_rotation([1, 9, 1, 2]) == [1, 2, 1, 9]


class TestMinimalCycles:
    def test_single_triangle(self):
        assert minimal_cycles([[1], [2], [0]]) == [[0, 1, 2]]

    def test_acyclic_graph_is_empty(self):
        assert minimal_cycles([[1], [2], []]) == []

    def test_shorter_cycle_wins(self):
        # A 2-cycle (3<->4) beats the 3-cycle (0->1->2->0).
        adjacency = [[1], [2], [0], [4], [3]]
        assert minimal_cycles(adjacency) == [[3, 4]]

    def test_distinct_minimal_cycles_all_reported(self):
        adjacency = [[1], [0], [3], [2]]
        assert minimal_cycles(adjacency) == [[0, 1], [2, 3]]

    def test_rotational_duplicates_collapse(self):
        # One triangle found from each of its three nodes: one cycle out.
        assert len(minimal_cycles([[1], [2], [0]])) == 1


# ---------------------------------------------------------------------------
# Known answers (satellite: leaf-spine ring + fat-tree up*/down*)
# ---------------------------------------------------------------------------
class TestKnownAnswers:
    @pytest.mark.parametrize("pause", [1, 2, 3])
    def test_ring_flows_refuted_at_every_feasible_threshold(self, pause):
        cert = certify_pause_configuration(
            scenario_topology(), scheme=Scheme.NONE, pfc=pfc(pause),
            vcs_per_vn=4, flows=RING_FLOWS,
        )
        assert cert.verdict == REFUTED
        counter = cert.counterexample
        assert counter["kind"] == "buffer-cycle"
        assert counter["length"] == 8
        # Canonical rotation at emission: plain equality, no rotation math.
        assert counter["links"] == RING_LINKS
        # First-seen hop order: each hop's router is its link's dst.
        assert counter["routers"] == [1, 2, 3, 4, 5, 6, 7, 0]
        for hop in counter["cycle"]:
            assert hop["vc"] is None and hop["packet"] is None
            assert hop["router"] == hop["link"][1]

    @pytest.mark.parametrize("pause", [1, 2, 3])
    def test_drain_certified_via_pause_exempt_cover(self, pause):
        cert = certify_pause_configuration(
            scenario_topology(), scheme=Scheme.DRAIN, pfc=pfc(pause),
            vcs_per_vn=4, flows=RING_FLOWS,
        )
        assert cert.verdict == CERTIFIED
        assert cert.proof["method"] == "pause-exempt-drain-cover"
        assert cert.proof["exemption"]["pause_exempt_escape"] is True
        assert cert.proof["pfc"]["row_depth"] == 4

    def test_escape_vc_certified_via_exempt_acyclicity(self):
        cert = certify_pause_configuration(
            scenario_topology(), scheme=Scheme.ESCAPE_VC, pfc=pfc(),
            vcs_per_vn=4, flows=RING_FLOWS,
        )
        assert cert.verdict == CERTIFIED
        assert cert.proof["method"] == "pause-exempt-escape-acyclicity"

    def test_fat_tree_updown_certified_with_pause(self):
        cert = certify_pause_configuration(
            make_fat_tree(4), scheme=Scheme.UPDOWN, pfc=pfc(pause=1),
            vcs_per_vn=2,
        )
        assert cert.verdict == CERTIFIED
        proof = cert.proof
        assert proof["method"] == "pause-augmented-topological-link-order"
        assert len(proof["link_order"]) == proof["links"]
        assert cert.subject["routing"] == "updown"

    def test_summary_renders_buffer_cycle(self):
        cert = certify_pause_configuration(
            scenario_topology(), scheme=Scheme.NONE, pfc=pfc(),
            vcs_per_vn=4, flows=RING_FLOWS,
        )
        assert "buffer-cycle of length 8" in cert.summary()
        assert "0->1" in cert.summary()

    def test_infeasible_pfc_is_rejected(self):
        with pytest.raises(ValueError, match="exceeds the buffer depth"):
            certify_pause_configuration(
                scenario_topology(), scheme=Scheme.DRAIN,
                pfc=pfc(headroom=9), vcs_per_vn=4,
            )
        with pytest.raises(ValueError, match="pause_threshold"):
            certify_pause_configuration(
                scenario_topology(), scheme=Scheme.DRAIN,
                pfc=pfc(pause=4, headroom=1), vcs_per_vn=4,
            )

    def test_malformed_flows_are_rejected(self):
        with pytest.raises(ValueError, match="outside the topology"):
            certify_pause_configuration(
                scenario_topology(), pfc=pfc(), vcs_per_vn=4,
                flows=[(0, 99)],
            )
        with pytest.raises(ValueError, match="identical endpoints"):
            certify_pause_configuration(
                scenario_topology(), pfc=pfc(), vcs_per_vn=4,
                flows=[(3, 3)],
            )

    def test_vn_bounds_checked(self):
        with pytest.raises(ValueError, match="vn"):
            certify_pause_configuration(
                scenario_topology(), pfc=pfc(), vcs_per_vn=4, num_vns=1,
                vn=1,
            )


class TestBuildPauseBdg:
    def test_all_pairs_superset_of_flow_restricted(self):
        index = FabricIndex(scenario_topology())
        routing = routing_for("adaptive", index)
        full = build_pause_bdg(index, routing)
        restricted = build_pause_bdg(index, routing, flows=RING_FLOWS)
        for link, succ in enumerate(restricted):
            assert set(succ) <= set(full[link])

    def test_one_hop_flows_add_no_dependencies(self):
        # A packet that ejects after its first link holds no buffer while
        # requesting another: adjacent-leaf flows build an empty BDG.
        index = FabricIndex(scenario_topology())
        routing = routing_for("adaptive", index)
        adjacency = build_pause_bdg(
            index, routing, flows=[(i, (i + 1) % 8) for i in range(8)]
        )
        assert all(not succ for succ in adjacency)

    def test_ring_flows_close_the_ring(self):
        index = FabricIndex(scenario_topology())
        routing = routing_for("adaptive", index)
        adjacency = build_pause_bdg(index, routing, flows=RING_FLOWS)
        by_pair = {
            (index.link_src[l], index.link_dst[l]): l
            for l in range(index.num_links)
        }
        for i in range(8):
            held = by_pair[(i, (i + 1) % 8)]
            wanted = by_pair[((i + 1) % 8, (i + 2) % 8)]
            assert wanted in adjacency[held]


# ---------------------------------------------------------------------------
# Engine-parity lint rules
# ---------------------------------------------------------------------------
KERNEL = "src/repro/network/demo.py"


def codes(source, path):
    return [f.code for f in lint_source(source, path)]


class TestIsKernelPath:
    def test_network_directory_is_kernel(self):
        assert is_kernel_path("src/repro/network/vectorized.py")
        assert is_kernel_path("repro/network/pause.py")

    def test_filename_alone_does_not_count(self):
        assert not is_kernel_path("src/repro/analysis/network.py")
        assert not is_kernel_path("src/repro/harness/pool.py")


class TestDet007RngInKernelLoop:
    def test_draw_inside_loop_fires(self):
        src = "for i in range(4):\n    x = rng.random()\n"
        assert codes(src, KERNEL) == ["DET007"]

    def test_draw_inside_while_fires(self):
        src = "while busy:\n    rng.shuffle(items)\n"
        assert codes(src, KERNEL) == ["DET007"]

    def test_draw_outside_loop_is_fine(self):
        assert codes("x = rng.random()\n", KERNEL) == []

    def test_non_kernel_path_is_exempt(self):
        src = "for i in range(4):\n    x = rng.random()\n"
        assert codes(src, "src/repro/harness/demo.py") == []


class TestDet008TablesMutation:
    def test_attribute_write_fires(self):
        src = ("tables = index.export_tables()\n"
               "tables.epoch = 2\n")
        assert codes(src, KERNEL) == ["DET008"]

    def test_subscript_write_into_field_fires(self):
        src = ("tables = DenseCandidateTables(index)\n"
               "tables.counts[0] = 1\n")
        assert codes(src, KERNEL) == ["DET008"]

    def test_augmented_write_fires(self):
        src = ("tables = index.export_tables()\n"
               "tables.epoch += 1\n")
        assert codes(src, KERNEL) == ["DET008"]

    def test_reads_are_fine(self):
        src = ("tables = index.export_tables()\n"
               "n = tables.counts[0]\n")
        assert codes(src, KERNEL) == []

    def test_non_kernel_path_is_exempt(self):
        src = ("tables = index.export_tables()\n"
               "tables.epoch = 2\n")
        assert codes(src, "src/repro/analysis/demo.py") == []


class TestDet009UnorderedIteration:
    def test_set_literal_fires(self):
        assert codes("for x in {1, 2}:\n    pass\n", KERNEL) == ["DET009"]

    def test_index_dead_links_fires(self):
        src = "for link in index.dead_links:\n    pass\n"
        assert codes(src, KERNEL) == ["DET009"]

    def test_tracked_set_variable_fires(self):
        src = "live = set(links)\nfor x in live:\n    pass\n"
        assert codes(src, KERNEL) == ["DET009"]

    def test_sorted_iteration_is_fine(self):
        src = "for link in sorted(index.dead_links):\n    pass\n"
        assert codes(src, KERNEL) == []

    def test_non_kernel_path_is_exempt(self):
        src = "for x in {1, 2}:\n    pass\n"
        assert codes(src, "src/repro/experiments/demo.py") == []


class TestDet010WallClockFromImport:
    def test_from_import_fires_anywhere(self):
        src = "from time import perf_counter\n"
        assert codes(src, "src/repro/experiments/demo.py") == ["DET010"]

    def test_alias_reported_too(self):
        src = "from time import monotonic as clock\n"
        findings = lint_source(src, "src/repro/core/demo.py")
        assert [f.code for f in findings] == ["DET010"]
        assert "'clock'" in findings[0].message

    def test_module_import_is_fine(self):
        # DET003 sees attribute reads through the module; only the bare
        # binding evades it.
        assert codes("import time\n", "src/repro/core/demo.py") == []

    def test_allowlisted_boundary_file_is_exempt(self):
        src = "from time import perf_counter\n"
        assert codes(src, "src/repro/bench/runner.py") == []

    def test_pragma_suppresses(self):
        src = "from time import perf_counter  # det: allow\n"
        assert codes(src, "src/repro/core/demo.py") == []


class TestDet011BatchInnerLoopBranching:
    DISPATCH = ("while live:\n"
                "    for m in live:\n"
                "        if m.ctrl_due <= cycle:\n"
                "            pass\n")

    def test_member_attr_branch_fires(self):
        assert codes(self.DISPATCH, KERNEL) == ["DET011"]

    def test_live_mask_fields_are_allowed(self):
        src = ("while live:\n"
               "    for m in live:\n"
               "        grant = quantum\n"
               "        while grant and not m.retired:\n"
               "            step(m)\n"
               "            grant -= 1\n"
               "        if not m.retired:\n"
               "            nxt.append(m)\n")
        assert codes(src, KERNEL) == []

    def test_while_test_and_ternary_fire(self):
        src = ("while live:\n"
               "    for m in self.members:\n"
               "        while m.backlog:\n"
               "            pass\n"
               "        x = 1 if m.sim else 0\n")
        assert codes(src, KERNEL) == ["DET011", "DET011"]

    def test_top_level_member_loop_is_setup_not_dispatch(self):
        # Validation sweeps before the scheduling rounds may branch on
        # anything — only nested (round-robin) loops are dispatch.
        src = ("for m in members:\n"
               "    if m.sim.cycle != 0:\n"
               "        raise ValueError\n")
        assert codes(src, KERNEL) == []

    def test_non_member_collections_are_exempt(self):
        src = ("while work:\n"
               "    for job in queue:\n"
               "        if job.priority:\n"
               "            pass\n")
        assert codes(src, KERNEL) == []

    def test_non_kernel_path_is_exempt(self):
        assert codes(self.DISPATCH, "src/repro/harness/demo.py") == []

    def test_pragma_suppresses(self):
        src = ("while live:\n"
               "    for m in live:\n"
               "        if m.ctrl_due <= cycle:  # det: allow\n"
               "            pass\n")
        assert codes(src, KERNEL) == []

    def test_real_batch_kernel_is_clean(self):
        # The shipped batch runner must satisfy its own dispatch rule
        # without pragmas.
        from pathlib import Path
        root = Path(__file__).resolve().parents[1]
        path = root / "src" / "repro" / "network" / "batched.py"
        found = [f.code for f in lint_source(path.read_text(), str(path))]
        assert found == []


class TestDet012DirectAllPairs:
    SRC = "d = topology.all_pairs_distances()\n"

    def test_direct_call_fires_anywhere(self):
        assert codes(self.SRC, "src/repro/drain/demo.py") == ["DET012"]
        assert codes(self.SRC, KERNEL) == ["DET012"]

    def test_message_points_at_the_memo_layer(self):
        [finding] = lint_source(self.SRC, "src/repro/faults/demo.py")
        assert "repro.structcache.distances" in finding.message

    def test_entry_points_are_allowlisted(self):
        # The topology method itself and the store's compile path are the
        # only sanctioned callers of the raw all-pairs BFS.
        assert codes(self.SRC, "src/repro/topology/graph.py") == []
        assert codes(self.SRC, "src/repro/structcache/store.py") == []

    def test_pragma_suppresses(self):
        src = "d = topology.all_pairs_distances()  # det: allow\n"
        assert codes(src, "src/repro/drain/demo.py") == []


# ---------------------------------------------------------------------------
# Preflight pause gate
# ---------------------------------------------------------------------------
def pause_config(scheme=Scheme.DRAIN, pause=2, headroom=1):
    return SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=1, vcs_per_vn=4),
        drain=DrainConfig(epoch=2048),
        flow_control="pause_resume",
        pfc=PfcConfig(pause_threshold=pause, resume_threshold=0,
                      headroom=headroom),
    )


def ring_flow_objs(packets=20):
    return [Flow(s, d, 0.9, packets=packets) for s, d in RING_FLOWS]


class TestPreflightPause:
    def setup_method(self):
        clear_preflight_cache()

    def test_drain_pause_spec_certifies_and_memoizes(self):
        spec = lossless_trial(scenario_topology(), pause_config(),
                              ring_flow_objs(), cycles=1000)
        cert = validate_spec(spec)
        assert cert is not None and cert.certified
        assert cert.proof["method"] == "pause-exempt-drain-cover"
        assert validate_spec(spec) is cert

    def test_flow_set_enters_the_memo_key(self):
        topo = scenario_topology()
        a = validate_spec(lossless_trial(topo, pause_config(),
                                         ring_flow_objs(), cycles=1000))
        b = validate_spec(lossless_trial(
            topo, pause_config(),
            [Flow(0, 4, 0.5, packets=5)], cycles=1000,
        ))
        assert a is not b

    def test_reactive_scheme_is_not_gated(self):
        # The lossless experiment deliberately wedges scheme-none rows;
        # preflight must keep letting them through.
        spec = lossless_trial(scenario_topology(),
                              pause_config(scheme=Scheme.NONE),
                              ring_flow_objs(), cycles=1000)
        assert validate_spec(spec) is None

    def test_infeasible_pfc_rejected_with_detail(self):
        spec = lossless_trial(scenario_topology(), pause_config(),
                              ring_flow_objs(), cycles=1000)
        spec.params["config"]["pfc"]["headroom"] = 9
        with pytest.raises(PreflightError, match="infeasible"):
            validate_spec(spec)


# ---------------------------------------------------------------------------
# CLI: repro-drain check --flow-control pause_resume
# ---------------------------------------------------------------------------
RING_ARGS = [arg for s, d in RING_FLOWS for arg in ("--flow", f"{s}-{d}")]


class TestCheckCli:
    def test_refuted_ring_exits_1_with_payload(self, capsys):
        code = main([
            "check", "--topology", "leafspine:8x4u1ew", "--scheme", "none",
            "--flow-control", "pause_resume", "--pfc-threshold", "2",
            "--vcs", "4", "--json", *RING_ARGS,
        ])
        assert code == 1
        cert = json.loads(capsys.readouterr().out)
        assert cert["verdict"] == "REFUTED"
        assert cert["counterexample"]["links"] == RING_LINKS

    def test_certified_drain_exits_0(self, capsys):
        code = main([
            "check", "--topology", "leafspine:8x4u1ew", "--scheme", "drain",
            "--flow-control", "pause_resume", "--pfc-threshold", "2",
            "--vcs", "4",
        ])
        assert code == 0
        assert "pause-exempt-drain-cover" in capsys.readouterr().out

    def test_certified_fat_tree_updown_exits_0(self, capsys):
        code = main([
            "check", "--topology", "fattree:4", "--scheme", "updown",
            "--flow-control", "pause_resume",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pause-augmented-topological-link-order" in out

    def test_infeasible_pfc_exits_2_one_line(self, capsys):
        code = main([
            "check", "--topology", "leafspine:8x4u1ew", "--scheme", "drain",
            "--flow-control", "pause_resume", "--pfc-headroom", "9",
            "--vcs", "4",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "exceeds the buffer depth" in err
        assert len(err.strip().splitlines()) == 1

    def test_omit_link_disallowed_under_pause(self, capsys):
        code = main([
            "check", "--topology", "leafspine:8x4u1ew", "--scheme", "drain",
            "--flow-control", "pause_resume", "--omit-link", "0-1",
        ])
        assert code == 2
        assert "--omit-link" in capsys.readouterr().err

    def test_bad_flow_spec_exits_2(self, capsys):
        code = main([
            "check", "--topology", "leafspine:8x4u1ew", "--scheme", "none",
            "--flow-control", "pause_resume", "--flow", "nonsense",
        ])
        assert code == 2
        assert "--flow" in capsys.readouterr().err
