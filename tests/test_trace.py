"""Tests for trace recording and replay."""

import io
import random

import pytest

from repro.core.config import Scheme
from repro.core.simulator import Simulation
from repro.traffic.synthetic import UniformRandom
from repro.traffic.trace import (
    TraceRecord,
    TraceRecorder,
    TraceTraffic,
    load_trace,
    record_synthetic,
    save_trace,
)
from tests.conftest import make_config


class TestTraceRecord:
    def test_roundtrip(self):
        record = TraceRecord(10, 3, 7, 2)
        assert TraceRecord.from_line(record.to_line()) == record

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("1 2 3")

    def test_ordering_by_cycle(self):
        records = [TraceRecord(5, 0, 1), TraceRecord(2, 1, 0)]
        assert sorted(records)[0].cycle == 2


class TestSaveLoad:
    def test_stream_roundtrip(self):
        records = record_synthetic(UniformRandom(8), 0.2, 50, seed=3)
        buf = io.StringIO()
        save_trace(records, buf)
        buf.seek(0)
        assert load_trace(buf) == sorted(records)

    def test_file_roundtrip(self, tmp_path):
        records = record_synthetic(UniformRandom(8), 0.2, 30, seed=4)
        path = tmp_path / "trace.txt"
        save_trace(records, path)
        assert load_trace(path) == sorted(records)

    def test_comments_and_blanks_skipped(self):
        buf = io.StringIO("# header\n\n3 0 1 0\n")
        assert load_trace(buf) == [TraceRecord(3, 0, 1, 0)]


class TestRecordSynthetic:
    def test_rate_approximated(self):
        records = record_synthetic(UniformRandom(16), 0.1, 1000, seed=5)
        expected = 0.1 * 16 * 1000
        assert abs(len(records) - expected) / expected < 0.1

    def test_deterministic(self):
        a = record_synthetic(UniformRandom(8), 0.1, 100, seed=6)
        b = record_synthetic(UniformRandom(8), 0.1, 100, seed=6)
        assert a == b


class TestReplay:
    def test_replay_delivers_everything(self, mesh4):
        records = record_synthetic(UniformRandom(16), 0.05, 300, seed=7)
        traffic = TraceTraffic(records, 16)
        sim = Simulation(mesh4, make_config(Scheme.DRAIN, epoch=512), traffic)
        sim.run(3000)
        assert traffic.done()
        assert sim.stats.packets_ejected == len(records)

    def test_out_of_range_records_rejected(self):
        with pytest.raises(ValueError):
            TraceTraffic([TraceRecord(0, 0, 99)], 16)

    def test_replay_matches_recorder(self, mesh4):
        """Recording a run and replaying it injects the same stream."""
        recorder = TraceRecorder(UniformRandom(16), 0.05, random.Random(8))
        sim = Simulation(mesh4, make_config(Scheme.DRAIN, epoch=512), recorder)
        sim.run(500)
        replay = TraceTraffic(recorder.records, 16)
        sim2 = Simulation(mesh4, make_config(Scheme.DRAIN, epoch=512), replay)
        sim2.run(3000)
        assert replay.done()
        assert sim2.stats.packets_ejected == len(recorder.records)

    def test_same_trace_different_schemes_same_delivery(self, mesh4):
        """The point of traces: identical offered load across schemes."""
        records = record_synthetic(UniformRandom(16), 0.04, 300, seed=9)
        delivered = {}
        for scheme in (Scheme.DRAIN, Scheme.ESCAPE_VC):
            traffic = TraceTraffic(records, 16)
            sim = Simulation(
                mesh4,
                make_config(scheme, num_vns=1 if scheme is Scheme.DRAIN else 3),
                traffic,
            )
            sim.run(4000)
            delivered[scheme] = sim.stats.packets_ejected
        assert delivered[Scheme.DRAIN] == delivered[Scheme.ESCAPE_VC] == len(records)
