"""Unit tests for the cross-trial lockstep batching layer.

Covers the pieces below the end-to-end parity lane (which lives in
``test_parity_fuzz.py``): the MT19937 word-stream replica and its
``random.Random`` facade, the harness-side grouping key and dispatch
planner, the ``batch`` knob's validation and — load-bearing for the
warm-cache identity guarantee — the knob's exclusion from the serialised
config digest.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import Scheme, SimConfig
from repro.core.configio import config_from_dict, config_to_dict
from repro.experiments.common import Scale, synthetic_trial_for
from repro.harness.cache import ResultCache
from repro.harness.pool import BATCH_AUTO_SIZE, BATCH_MIN_AUTO, Harness
from repro.harness.trials import (
    TrialSpec,
    batch_group_key,
    batch_payload,
    coherence_trial,
)
from repro.network.batched import MirroredRandom, WordStream
from repro.topology.mesh import make_mesh

SCALE = Scale(warmup=8, measure=24, epoch=96, spin_timeout=48)


def _specs(n, scheme=Scheme.DRAIN, rate=0.05, width=4):
    topology = make_mesh(width, width)
    return [
        synthetic_trial_for(topology, scheme, rate, SCALE,
                            mesh_width=width, seed=100 + i)
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# WordStream / MirroredRandom: exact random.Random replication
# ----------------------------------------------------------------------
class TestWordStream:
    @pytest.mark.parametrize("seed", [0, 1, 42, 0xDEADBEEF, 2 ** 62 + 11])
    def test_interleaved_draws_match_reference(self, seed):
        reference = random.Random(seed)
        mirror = MirroredRandom(WordStream(seed))
        # Interleave every primitive and the derived methods the traffic
        # layer uses; any cursor slip desynchronises everything after it.
        script = random.Random(0xC0FFEE ^ seed)
        for _ in range(400):
            op = script.randrange(6)
            if op == 0:
                assert mirror.random() == reference.random()
            elif op == 1:
                k = script.choice((1, 5, 32, 33, 64, 100))
                assert mirror.getrandbits(k) == reference.getrandbits(k)
            elif op == 2:
                n = script.randrange(2, 5000)
                assert mirror.randrange(n) == reference.randrange(n)
            elif op == 3:
                items = list(range(script.randrange(1, 40)))
                assert mirror.choice(items) == reference.choice(items)
            elif op == 4:
                a = list(range(script.randrange(2, 30)))
                b = list(a)
                mirror.shuffle(a)
                reference.shuffle(b)
                assert a == b
            else:
                assert mirror.uniform(-3.0, 7.0) == reference.uniform(-3.0, 7.0)

    def test_long_stream_crosses_refills(self):
        # INIT_BLOCKS buys ~1.2k doubles; 5000 forces several on-demand
        # refills, and the doubles must stay exact across every boundary.
        reference = random.Random(7)
        stream = WordStream(7)
        for _ in range(5000):
            assert stream.take_double() == reference.random()

    def test_word_and_double_views_share_one_cursor(self):
        reference = random.Random(3)
        stream = WordStream(3)
        assert stream.take_double() == reference.random()
        assert stream.take_word() == reference.getrandbits(32)
        # The word draw flipped the cursor's parity; doubles must follow.
        assert stream.take_double() == reference.random()

    def test_scan_hits_are_the_sub_rate_doubles(self):
        rate = 0.1
        stream = WordStream(11)
        stream.set_scan_rate(rate)
        doubles = stream.doubles
        assert stream.hits == [
            i for i in range(len(doubles)) if doubles[i] < rate
        ]
        # A refill must recompute the hit list for the new buffer.
        before = len(stream.words)
        stream.ensure(before + 10)
        assert stream.hits == [
            i for i in range(len(stream.doubles)) if stream.doubles[i] < rate
        ]

    def test_facade_seed_is_inert_and_state_is_refused(self):
        stream = WordStream(5)
        mirror = MirroredRandom(stream)  # Random.__init__ calls seed()
        assert stream.pos == 0
        mirror.seed(123)
        assert stream.pos == 0
        with pytest.raises(NotImplementedError):
            mirror.getstate()
        with pytest.raises(NotImplementedError):
            mirror.setstate(None)
        with pytest.raises(ValueError):
            mirror.getrandbits(0)


# ----------------------------------------------------------------------
# Grouping key and dispatch planning
# ----------------------------------------------------------------------
class TestBatchGroupKey:
    def test_seed_and_rate_vary_within_a_group(self):
        a = _specs(1, rate=0.02)[0]
        b = _specs(2, rate=0.30)[1]
        assert batch_group_key(a) == batch_group_key(b) is not None

    def test_structural_differences_split_groups(self):
        drain = batch_group_key(_specs(1)[0])
        assert batch_group_key(_specs(1, scheme=Scheme.SPIN)[0]) != drain
        assert batch_group_key(_specs(1, width=3)[0]) != drain

    def test_unbatchable_runners_and_shapes_are_none(self):
        spec = _specs(1)[0]
        assert batch_group_key(
            coherence_trial(make_mesh(4, 4),
                            SimConfig(scheme=Scheme.DRAIN, seed=1),
                            issue_probability=0.1, max_cycles=32)
        ) is None
        for mutate in (
            lambda c: c.__setitem__("flow_control", "pause_resume"),
            lambda c: c["network"].__setitem__("packet_size_flits", 2),
            lambda c: c["network"].__setitem__("vcs_per_vn", 4),
        ):
            params = {**spec.params, "config": {
                k: dict(v) if isinstance(v, dict) else v
                for k, v in spec.params["config"].items()
            }}
            mutate(params["config"])
            assert batch_group_key(TrialSpec("synthetic", params)) is None


class TestPlanUnits:
    def _plan(self, specs, batch):
        h = Harness(workers=1, batch=batch, preflight=False)
        return h._plan_units(specs, list(range(len(specs))))

    def test_off_is_all_solo(self):
        units = self._plan(_specs(6), "off")
        assert all(kind == "solo" for kind, _ in units)
        assert [m for _, ms in units for m in ms] == list(range(6))

    def test_auto_needs_min_group(self):
        units = self._plan(_specs(BATCH_MIN_AUTO - 1), "auto")
        assert all(kind == "solo" for kind, _ in units)
        units = self._plan(_specs(BATCH_MIN_AUTO), "auto")
        assert units == [("batch", list(range(BATCH_MIN_AUTO)))]

    def test_auto_chunks_and_leftover(self):
        units = self._plan(_specs(BATCH_AUTO_SIZE + 1), "auto")
        assert units == [
            ("batch", list(range(BATCH_AUTO_SIZE))),
            ("solo", [BATCH_AUTO_SIZE]),
        ]

    def test_explicit_size_batches_small_groups(self):
        units = self._plan(_specs(5), "2")
        assert units == [
            ("batch", [0, 1]), ("batch", [2, 3]), ("solo", [4]),
        ]

    def test_incompatible_specs_stay_solo(self):
        specs = _specs(4) + _specs(4, scheme=Scheme.SPIN)
        specs.insert(2, coherence_trial(
            make_mesh(4, 4), SimConfig(scheme=Scheme.DRAIN, seed=9),
            issue_probability=0.1, max_cycles=32,
        ))
        units = self._plan(specs, "auto")
        kinds = {kind for kind, _ in units}
        assert ("solo", [2]) in units
        assert kinds == {"solo", "batch"}
        batches = [ms for kind, ms in units if kind == "batch"]
        assert sorted(map(sorted, batches)) == [[0, 1, 3, 4], [5, 6, 7, 8]]

    def test_plan_ignores_worker_count(self):
        specs = _specs(9)
        assert self._plan(specs, "auto") == Harness(
            workers=7, batch="auto", preflight=False
        )._plan_units(specs, list(range(len(specs))))


# ----------------------------------------------------------------------
# The batch knob: validation and digest neutrality
# ----------------------------------------------------------------------
class TestBatchKnob:
    def test_harness_validation(self):
        for bad in ("nope", "1", "0", "-3"):
            with pytest.raises(ValueError):
                Harness(workers=1, batch=bad)
        for ok in ("off", "auto", "2", "16"):
            assert Harness(workers=1, batch=ok).batch == ok

    def test_harness_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "auto")
        assert Harness(workers=1).batch == "auto"
        monkeypatch.delenv("REPRO_BATCH")
        assert Harness(workers=1).batch == "off"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimConfig(scheme=Scheme.DRAIN, batch="1")
        assert SimConfig(scheme=Scheme.DRAIN, batch="8").batch == "8"

    def test_batch_never_enters_the_digest(self):
        # The warm-cache identity check in CI rests on this: a batched
        # sweep and a solo sweep must resolve to the same cache entries.
        for value in ("off", "auto", "8"):
            config = SimConfig(scheme=Scheme.DRAIN, seed=4, batch=value)
            payload = config_to_dict(config)
            assert "batch" not in payload
            assert config_from_dict(payload).batch == "off"
        digests = {
            synthetic_trial_for(
                make_mesh(4, 4), Scheme.DRAIN, 0.05, SCALE,
                mesh_width=4, seed=17,
            ).digest()
        }
        assert len(digests) == 1  # guard: helper itself is deterministic


# ----------------------------------------------------------------------
# Harness end-to-end: batched sweep == solo sweep, records annotated
# ----------------------------------------------------------------------
class TestHarnessBatching:
    def test_batched_run_matches_solo_and_caches_per_trial(self, tmp_path):
        specs = _specs(BATCH_MIN_AUTO)
        solo = Harness(workers=1, batch="off").run(specs)

        cache = ResultCache(tmp_path / "cache")
        batched_harness = Harness(workers=1, batch="auto", cache=cache)
        batched = batched_harness.run(specs, label="fig11")
        assert batched == solo
        assert batched_harness.cache_misses == len(specs)
        for record in batched_harness.records:
            assert record.batched is True
            assert record.batch_fallback is None
            assert record.as_dict()["batched"] is True

        # Cache entries are per-trial: a solo harness over the same cache
        # must serve every spec without executing anything.
        warm = Harness(workers=1, batch="off", cache=cache)
        assert warm.run(specs) == solo
        assert warm.cache_misses == 0
        assert warm.trials_executed == 0

    def test_eviction_is_recorded_on_the_member_record(self):
        # Mixed groups cannot arise from _plan_units (the key separates
        # them); drive the runner's envelope through Harness bookkeeping
        # by hand via batch_payload to pin the fallback plumbing.
        from repro.harness.trials import execute_trial

        drain = _specs(2)
        intruder = _specs(1, scheme=Scheme.UPDOWN)[0]
        envelope = execute_trial(batch_payload(drain + [intruder]))
        assert [e["index"] for e in envelope["evictions"]] == [2]
        assert "stateful" in envelope["evictions"][0]["reason"]
        assert envelope["results"][2] == execute_trial(intruder)
