"""Unit tests for the SPIN reactive baseline."""

import random

from repro.core.config import NetworkConfig, Scheme, SimConfig, SpinConfig
from repro.network.deadlock import find_deadlocked_slots
from repro.network.fabric import Fabric
from repro.network.index import FabricIndex
from repro.network.spin import SpinController
from repro.router.packet import MessageClass, Packet
from repro.routing.adaptive import AdaptiveMinimalRouting
from repro.topology.mesh import make_ring


def wedged_spin_setup(timeout=8, check_interval=4):
    """4-ring with both directions fully wedged and a SPIN controller."""
    topo = make_ring(4)
    index = FabricIndex(topo)
    config = SimConfig(
        scheme=Scheme.SPIN,
        network=NetworkConfig(num_vns=1, vcs_per_vn=1),
        spin=SpinConfig(timeout=timeout, probe_hop_latency=1, spin_interval=1),
    )
    fabric = Fabric(index, config, AdaptiveMinimalRouting(index),
                    rng=random.Random(1))
    pid = 0
    for i in range(4):
        for direction in (+1, -1):
            dst_router = (i + direction) % 4
            link = index.link_id[[l for l in index.topology.links_out_of(i)
                                  if l.dst == dst_router][0]]
            packet = Packet(pid, i, (i + 2) % 4, MessageClass.REQ)
            packet.blocked_since = 0
            fabric.buf[link][0][0] = packet
            fabric.packets_in_network += 1
            pid += 1
    controller = SpinController(fabric, config.spin, check_interval=check_interval)
    return fabric, controller


def run_with_spin(fabric, controller, cycles):
    for _ in range(cycles):
        controller.step()
        fabric.step()
        for node in range(fabric.index.num_nodes):
            for cls in MessageClass:
                while fabric.peek_ejection(node, cls):
                    fabric.pop_ejection(node, cls)


class TestSpinController:
    def test_detects_and_counts_deadlock(self):
        fabric, controller = wedged_spin_setup()
        run_with_spin(fabric, controller, 30)
        assert fabric.stats.deadlock_events >= 1
        assert fabric.stats.probes_sent > 0

    def test_spin_resolves_wedge(self):
        fabric, controller = wedged_spin_setup()
        run_with_spin(fabric, controller, 200)
        assert not find_deadlocked_slots(fabric)
        assert fabric.stats.spins_performed >= 1

    def test_all_packets_eventually_delivered(self):
        fabric, controller = wedged_spin_setup()
        run_with_spin(fabric, controller, 400)
        assert fabric.packets_in_network == 0
        assert fabric.stats.packets_ejected == 8

    def test_no_probe_before_timeout(self):
        fabric, controller = wedged_spin_setup(timeout=10_000)
        run_with_spin(fabric, controller, 50)
        assert fabric.stats.probes_sent == 0

    def test_probe_latency_delays_resolution(self):
        fast_fabric, fast = wedged_spin_setup(timeout=8)
        run_with_spin(fast_fabric, fast, 12)
        spins_early_fast = fast_fabric.stats.spins_performed

        slow_topo_fabric, slow = wedged_spin_setup(timeout=8)
        slow.config = SpinConfig(timeout=8, probe_hop_latency=50, spin_interval=1)
        run_with_spin(slow_topo_fabric, slow, 12)
        assert slow_topo_fabric.stats.spins_performed <= spins_early_fast

    def test_healthy_network_untouched(self):
        topo = make_ring(4)
        index = FabricIndex(topo)
        config = SimConfig(scheme=Scheme.SPIN,
                           network=NetworkConfig(num_vns=1, vcs_per_vn=2),
                           spin=SpinConfig(timeout=8))
        fabric = Fabric(index, config, AdaptiveMinimalRouting(index),
                        rng=random.Random(2))
        controller = SpinController(fabric, config.spin, check_interval=4)
        fabric.offer_packet(Packet(0, 0, 2))
        run_with_spin(fabric, controller, 60)
        assert fabric.stats.spins_performed == 0
        assert fabric.stats.probes_sent == 0
        assert fabric.stats.packets_ejected == 1
