"""Determinism suite: seeds, schemes, and the parallel sweep harness.

Reactive deadlock schemes (SPIN, static bubble) and the Figure 3
deadlock-likelihood study hinge on exact reproducibility of rare events,
and the harness caches results on disk across interpreter restarts — so
reproducibility must hold bit-for-bit across runs, processes and worker
counts. This suite pins all three:

- ``derive_seed`` is salt-free: exact outputs are pinned, and a subprocess
  with a different ``PYTHONHASHSEED`` derives identical seeds (regression
  for the old ``hash(str(label))`` implementation, which Python salts
  per-process);
- every ``Scheme`` run twice from the same seed yields bit-identical
  ``NetworkStats.as_dict()``;
- harness results are identical for workers=1 vs workers=4 and for cold
  vs warm cache.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core.config import Scheme
from repro.core.rng import derive_seed, spawn, stable_hash
from repro.experiments.common import Scale, run_synthetic, synthetic_trial_for
from repro.harness import Harness, ResultCache
from repro.topology.mesh import make_mesh

TINY = Scale(
    warmup=100,
    measure=400,
    fault_patterns=1,
    sweep_rates=(0.04, 0.08),
    epoch=256,
    spin_timeout=64,
)


class TestDeriveSeed:
    # Pinned outputs: these exact values are part of the cache contract —
    # changing them silently invalidates every stored trial and golden
    # snapshot, so drift must be deliberate.
    PINNED = [
        ((1, ()), 1),
        ((1, ("fabric",)), 2022376378812598436),
        ((1, ("traffic", "uniform_random", 0.05)), 11197032861281542074),
        ((42, (7, "node")), 3365717602964133290),
        ((0, ("workload", "canneal")), 840846729228443383),
    ]

    def test_pinned_outputs(self):
        for (seed, labels), expected in self.PINNED:
            assert derive_seed(seed, *labels) == expected

    def test_stable_hash_pinned(self):
        assert stable_hash("fabric") == 10747187716285485759

    def test_labels_distinguish_types(self):
        assert derive_seed(1, "7") != derive_seed(1, 7)

    def test_order_sensitive(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_spawn_streams_reproducible(self):
        a = spawn(5, "traffic", 3)
        b = spawn(5, "traffic", 3)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    @pytest.mark.parametrize("hashseed", ["0", "12345"])
    def test_stable_across_interpreters_and_hash_salts(self, hashseed):
        """A fresh interpreter with a different hash salt derives the same
        seeds — the exact failure mode of the old hash()-based version."""
        code = (
            "from repro.core.rng import derive_seed;"
            "print(derive_seed(1, 'fabric'),"
            " derive_seed(42, 7, 'node'),"
            " derive_seed(3, 'traffic', 'transpose', 0.07))"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH", "")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        got = [int(v) for v in out.stdout.split()]
        assert got == [
            derive_seed(1, "fabric"),
            derive_seed(42, 7, "node"),
            derive_seed(3, "traffic", "transpose", 0.07),
        ]


class TestSchemeDeterminism:
    @pytest.mark.parametrize("scheme", list(Scheme), ids=lambda s: s.value)
    def test_same_seed_same_stats(self, scheme):
        """Same seed => bit-identical stats for every scheme on a 4x4 mesh."""
        def one_run():
            sim = run_synthetic(
                make_mesh(4, 4), scheme, 0.05, TINY, seed=3, mesh_width=4
            )
            out = dict(sim.stats.as_dict())
            out["throughput"] = sim.throughput()
            out["p99_latency"] = (
                sim.stats.latency.percentile(99.0)
                if sim.stats.latency.samples else 0.0
            )
            return out

        assert one_run() == one_run()


class TestHarnessDeterminism:
    def _specs(self):
        mesh = make_mesh(4, 4)
        return [
            synthetic_trial_for(
                mesh, scheme, rate, TINY, mesh_width=4, seed=seed
            )
            for scheme in (Scheme.DRAIN, Scheme.SPIN)
            for rate in TINY.sweep_rates
            for seed in (1, 2)
        ]

    def test_workers_1_vs_4_identical(self):
        serial = Harness(workers=1).run(self._specs())
        parallel = Harness(workers=4).run(self._specs())
        assert serial == parallel

    def test_cold_vs_warm_cache_identical(self, tmp_path):
        harness = Harness(workers=1, cache=ResultCache(tmp_path / "cache"))
        cold = harness.run(self._specs())
        assert harness.cache_hits == 0
        assert harness.cache_misses == len(cold)
        warm = harness.run(self._specs())
        assert harness.cache_hits == len(cold)
        assert cold == warm

    def test_warm_cache_matches_uncached_parallel(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        Harness(workers=4, cache=cache).run(self._specs())
        warm = Harness(workers=1, cache=cache).run(self._specs())
        uncached = Harness(workers=1).run(self._specs())
        assert warm == uncached

    def test_inline_run_matches_harness_trial(self):
        """run_synthetic and its harness spec are the same simulation."""
        mesh = make_mesh(4, 4)
        sim = run_synthetic(mesh, Scheme.DRAIN, 0.06, TINY, seed=2, mesh_width=4)
        (res,) = Harness(workers=1).run(
            [synthetic_trial_for(mesh, Scheme.DRAIN, 0.06, TINY,
                                 mesh_width=4, seed=2)]
        )
        assert res["avg_latency"] == sim.stats.avg_latency
        assert res["throughput"] == sim.throughput()
        assert res["ejected"] == sim.stats.packets_ejected
