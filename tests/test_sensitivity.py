"""Tests for the extended sensitivity studies."""

import pytest

from repro.experiments.common import Scale
from repro.experiments.sensitivity import (
    ejection_depth_sensitivity,
    mshr_sensitivity,
    packet_size_sensitivity,
    vc_sensitivity,
)


@pytest.fixture
def tiny():
    return Scale(warmup=200, measure=700, epoch=512,
                 app_transactions_per_node=8, app_max_cycles=15_000)


class TestVcSensitivity:
    def test_one_vc_is_worst(self, tiny):
        rows = vc_sensitivity(vcs_options=(1, 2, 4), scale=tiny)
        by = {r["vcs_per_vn"]: r for r in rows}
        assert by[1]["latency"] >= by[2]["latency"]

    def test_diminishing_returns(self, tiny):
        rows = vc_sensitivity(vcs_options=(2, 6), scale=tiny)
        by = {r["vcs_per_vn"]: r for r in rows}
        # Beyond 2 VCs the network is link-limited, not buffer-limited.
        assert by[6]["latency"] == pytest.approx(by[2]["latency"], rel=0.1)


class TestEjectionDepthSensitivity:
    def test_all_depths_complete(self, tiny):
        rows = ejection_depth_sensitivity(depths=(1, 4), scale=tiny)
        assert all(r["finished"] for r in rows)

    def test_deeper_queues_never_slower(self, tiny):
        rows = ejection_depth_sensitivity(depths=(1, 8), scale=tiny)
        by = {r["ejection_depth"]: r for r in rows}
        assert by[8]["runtime"] <= by[1]["runtime"] * 1.05


class TestMshrSensitivity:
    def test_more_mshrs_finish_sooner(self, tiny):
        rows = mshr_sensitivity(mshr_options=(2, 16), scale=tiny)
        by = {r["mshrs"]: r for r in rows}
        assert all(r["finished"] for r in rows)
        assert by[16]["runtime"] < by[2]["runtime"]


class TestPacketSizeSensitivity:
    def test_serialisation_costs_latency(self, tiny):
        rows = packet_size_sensitivity(sizes=(1, 4), scale=tiny)
        by = {r["packet_flits"]: r for r in rows}
        assert by[4]["latency"] > by[1]["latency"] * 1.5

    def test_packet_throughput_unaffected_at_low_load(self, tiny):
        rows = packet_size_sensitivity(sizes=(1, 4), scale=tiny)
        by = {r["packet_flits"]: r for r in rows}
        assert by[4]["throughput"] == pytest.approx(
            by[1]["throughput"], rel=0.05
        )
