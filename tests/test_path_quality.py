"""Tests for the drain-path quality study and its invariance finding."""

import random

import pytest

from repro.drain.analysis import misroute_expectation
from repro.drain.path import euler_drain_path
from repro.experiments.common import Scale
from repro.experiments.path_quality import path_quality_study, sample_paths
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh, make_ring


class TestSamplePaths:
    def test_sample_count(self):
        paths = sample_paths(make_ring(5), 4)
        assert len(paths) == 4
        for path in paths:
            path.validate()

    def test_samples_differ_structurally(self):
        paths = sample_paths(make_mesh(4, 4), 6)
        assert len({tuple(p.links) for p in paths}) > 1

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            sample_paths(make_ring(4), 0)


class TestMisrouteInvariance:
    """The study's theorem: misroute expectation is path-independent.

    At each router a covering circuit maps in-links onto out-links
    bijectively, so the summed misroute indicator is the same for every
    circuit of the same topology.
    """

    @pytest.mark.parametrize(
        "topology",
        [make_mesh(4, 4), make_ring(6),
         inject_link_faults(make_mesh(4, 4), 4, random.Random(5))],
        ids=["mesh4", "ring6", "faulty4"],
    )
    def test_invariant_across_sampled_circuits(self, topology):
        values = {
            round(misroute_expectation(p), 12)
            for p in sample_paths(topology, 8, seed=11)
        }
        assert len(values) == 1

    def test_invariant_differs_across_topologies(self):
        mesh = misroute_expectation(euler_drain_path(make_mesh(4, 4)))
        ring = misroute_expectation(euler_drain_path(make_ring(8)))
        assert mesh != ring  # a topology property, not a universal constant


class TestPathQualityStudy:
    def test_study_reports_invariance_and_parity(self):
        tiny = Scale(warmup=200, measure=600, epoch=512)
        result = path_quality_study(samples=6, mesh_width=4, epoch=96,
                                    scale=tiny)
        assert result["expectation_spread"] == pytest.approx(0.0, abs=1e-12)
        best = result["best_dynamic"]
        worst = result["worst_dynamic"]
        # Dynamic behaviour of "best" and "worst" paths is statistically
        # indistinguishable — path choice is free.
        assert best["latency"] == pytest.approx(worst["latency"], rel=0.15)
