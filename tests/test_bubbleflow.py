"""Tests for the Bubble Flow Control baseline on tori."""

import random

import pytest

from repro.core.config import NetworkConfig, Scheme, SimConfig
from repro.network.bubbleflow import BubbleFlowFabric, TorusDorRouting
from repro.network.deadlock import find_deadlocked_slots
from repro.network.index import FabricIndex
from repro.router.packet import MessageClass, Packet
from repro.topology.mesh import make_torus
from repro.traffic.synthetic import SyntheticTraffic, UniformRandom


def bfc_fabric(width=4, height=4, vcs=1, seed=1):
    topo = make_torus(width, height)
    index = FabricIndex(topo)
    config = SimConfig(
        scheme=Scheme.NONE,
        network=NetworkConfig(num_vns=1, vcs_per_vn=vcs),
    )
    routing = TorusDorRouting(index, width, height)
    fabric = BubbleFlowFabric(index, config, routing, width, height,
                              rng=random.Random(seed))
    return topo, fabric


def drive(fabric, traffic, cycles):
    for cycle in range(cycles):
        traffic.generate(fabric, fabric.cycle)
        fabric.step()
        traffic.consume(fabric, fabric.cycle)


class TestTorusDorRouting:
    def test_single_candidate(self):
        topo = make_torus(4, 4)
        index = FabricIndex(topo)
        routing = TorusDorRouting(index, 4, 4)
        packet = Packet(0, 0, 10)
        assert len(routing.candidates(0, packet)) == 1

    def test_shortest_wrap_chosen(self):
        topo = make_torus(4, 4)
        index = FabricIndex(topo)
        routing = TorusDorRouting(index, 4, 4)
        # 0 -> 3 in a 4-ring: the wrap (0 -> 3 directly) is 1 hop.
        link = routing.next_link(0, 3)
        assert index.link_dst[link] == 3

    def test_x_dimension_first(self):
        topo = make_torus(4, 4)
        index = FabricIndex(topo)
        routing = TorusDorRouting(index, 4, 4)
        # 0 -> 5: X offset and Y offset; first hop changes X.
        link = routing.next_link(0, 5)
        assert index.link_dst[link] in (1, 3)

    def test_dimension_mismatch_rejected(self):
        topo = make_torus(4, 4)
        with pytest.raises(ValueError):
            TorusDorRouting(FabricIndex(topo), 8, 3)


class TestRingClassification:
    def test_every_torus_link_is_on_a_ring(self):
        _topo, fabric = bfc_fabric()
        assert all(ring is not None for ring in fabric.link_ring)

    def test_ring_sizes(self):
        _topo, fabric = bfc_fabric()
        assert len(fabric.ring_links) == 16  # 4 rows + 4 cols, 2 directions
        for ring, links in fabric.ring_links.items():
            assert len(links) == 4  # unidirectional 4-ring


class TestBubbleCondition:
    def test_never_deadlocks_on_torus(self):
        """BFC's whole point: 1-VC DOR on a torus wraps into cycles, but
        the bubble keeps every ring rotating."""
        _topo, fabric = bfc_fabric(vcs=1)
        traffic = SyntheticTraffic(UniformRandom(16), 0.35, random.Random(3))
        drive(fabric, traffic, 4000)
        assert not find_deadlocked_slots(fabric)
        assert fabric.stats.packets_ejected > 1000

    def test_bubble_stalls_accumulate_under_load(self):
        _topo, fabric = bfc_fabric(vcs=1)
        traffic = SyntheticTraffic(UniformRandom(16), 0.35, random.Random(3))
        drive(fabric, traffic, 1500)
        assert fabric.bubble_stalls > 0  # the proactive restriction at work

    def test_low_load_rarely_stalled(self):
        _topo, fabric = bfc_fabric(vcs=2)
        traffic = SyntheticTraffic(UniformRandom(16), 0.02, random.Random(4))
        drive(fabric, traffic, 1500)
        assert fabric.stats.packets_ejected > 300
        assert fabric.bubble_stalls < fabric.stats.packets_ejected

    def test_ring_never_completely_fills(self):
        """Invariant: at least one free slot per ring VC column, always."""
        _topo, fabric = bfc_fabric(vcs=1)
        traffic = SyntheticTraffic(UniformRandom(16), 0.4, random.Random(5))
        for _ in range(1200):
            traffic.generate(fabric, fabric.cycle)
            fabric.step()
            traffic.consume(fabric, fabric.cycle)
            for ring in fabric.ring_links:
                assert fabric._ring_free_slots(ring, 0) >= 1
