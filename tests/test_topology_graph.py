"""Unit tests for the topology substrate (Link, Topology)."""

import pytest

from repro.topology.graph import Link, Topology
from repro.topology.mesh import make_mesh


class TestLink:
    def test_reverse_swaps_endpoints(self):
        link = Link(2, 5)
        assert link.reverse == Link(5, 2)

    def test_reverse_is_involution(self):
        link = Link(0, 3)
        assert link.reverse.reverse == link

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Link(4, 4)

    def test_links_are_ordered_and_hashable(self):
        links = {Link(0, 1), Link(1, 0), Link(0, 1)}
        assert len(links) == 2
        assert sorted(links) == [Link(0, 1), Link(1, 0)]


class TestTopologyConstruction:
    def test_minimum_two_routers(self):
        with pytest.raises(ValueError):
            Topology(1, [])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError):
            Topology(3, [(0, 1), (1, 0)])

    def test_self_loop_edge_rejected(self):
        with pytest.raises(ValueError):
            Topology(3, [(1, 1)])

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError):
            Topology(3, [(0, 5)])

    def test_copy_is_independent(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        clone = topo.copy()
        clone.remove_edge(0, 1)
        assert topo.has_edge(0, 1)
        assert not clone.has_edge(0, 1)


class TestTopologyQueries:
    def test_neighbors_sorted(self):
        topo = Topology(4, [(2, 0), (0, 3), (0, 1)])
        assert topo.neighbors(0) == [1, 2, 3]

    def test_degree(self):
        topo = Topology(4, [(0, 1), (0, 2)])
        assert topo.degree(0) == 2
        assert topo.degree(3) == 0

    def test_unidirectional_links_doubled(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        links = topo.unidirectional_links()
        assert len(links) == 4
        assert Link(0, 1) in links and Link(1, 0) in links

    def test_links_into_and_out_of(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        assert topo.links_into(1) == [Link(0, 1), Link(2, 1)]
        assert topo.links_out_of(1) == [Link(1, 0), Link(1, 2)]

    def test_remove_missing_edge_raises(self):
        topo = Topology(3, [(0, 1)])
        with pytest.raises(KeyError):
            topo.remove_edge(1, 2)


class TestGraphAnalysis:
    def test_connected_chain(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)])
        assert topo.is_connected()

    def test_disconnected_detected(self):
        topo = Topology(4, [(0, 1), (2, 3)])
        assert not topo.is_connected()

    def test_bfs_distances_chain(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)])
        assert topo.bfs_distances(0) == [0, 1, 2, 3]

    def test_bfs_unreachable_is_minus_one(self):
        topo = Topology(3, [(0, 1)])
        assert topo.bfs_distances(0)[2] == -1

    def test_diameter_of_mesh(self):
        assert make_mesh(4, 4).diameter() == 6
        assert make_mesh(8, 8).diameter() == 14

    def test_diameter_raises_on_disconnected(self):
        topo = Topology(3, [(0, 1)])
        with pytest.raises(ValueError):
            topo.diameter()

    def test_average_distance_of_pair(self):
        topo = Topology(2, [(0, 1)])
        assert topo.average_distance() == 1.0

    def test_all_pairs_vectorized_matches_scalar(self):
        # The numpy frontier-expansion BFS must be ==-identical to the
        # scalar reference on every topology shape, including the -1
        # convention for unreachable pairs.
        import random

        from repro.topology.datacenter import make_leaf_spine

        numpy = pytest.importorskip("numpy")
        topologies = [
            make_mesh(4, 4),
            make_mesh(8, 8),
            make_leaf_spine(8, 4, uplinks=1, east_west=True),
            Topology(5, [(0, 1), (1, 2), (3, 4)]),  # disconnected
        ]
        rng = random.Random(11)
        for _ in range(10):
            n = rng.randrange(4, 24)
            edges = {
                tuple(sorted(rng.sample(range(n), 2)))
                for _ in range(rng.randrange(n - 1, 3 * n))
            }
            topologies.append(Topology(n, sorted(edges)))
        for topo in topologies:
            scalar = topo.all_pairs_distances(scalar=True)
            assert topo._all_pairs_numpy().tolist() == scalar
            assert topo.all_pairs_distances() == scalar

    def test_critical_edge_in_chain(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        assert topo.is_critical_edge(0, 1)

    def test_non_critical_edge_in_cycle(self):
        topo = Topology(3, [(0, 1), (1, 2), (0, 2)])
        assert not topo.is_critical_edge(0, 1)
        # Probing must not mutate the topology.
        assert topo.has_edge(0, 1)

    def test_spanning_tree_covers_all_nodes(self):
        topo = make_mesh(3, 3)
        parent = topo.spanning_tree()
        assert set(parent) == set(range(9))
        assert parent[0] is None
        for child, par in parent.items():
            if par is not None:
                assert topo.has_edge(child, par)

    def test_spanning_tree_disconnected_raises(self):
        topo = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            topo.spanning_tree()

    def test_all_pairs_matches_single_bfs(self):
        topo = make_mesh(3, 3)
        matrix = topo.all_pairs_distances()
        for n in topo.nodes:
            assert matrix[n] == topo.bfs_distances(n)
