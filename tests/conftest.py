"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

import pytest

from repro.core.config import DrainConfig, NetworkConfig, Scheme, SimConfig
from repro.experiments.common import Scale
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh


GOLDEN_DIR = Path(__file__).parent / "golden"

# The suite must never read or write the user's persistent compiled-
# structure store: CLI-driving tests would otherwise activate it at its
# default location and leak artefacts (certificates especially) across
# unrelated tests *and* pytest runs. Tests that want the store activate
# a tmp-path one explicitly (see tests/test_structcache.py).
os.environ.setdefault("REPRO_STRUCT_CACHE", "off")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json snapshots from the current outputs "
        "instead of comparing against them",
    )


def _golden_diff(name, expected, actual):
    """Human-readable per-key diff between a snapshot and a fresh result."""
    lines = [f"golden snapshot mismatch for {name!r}:"]
    for key in sorted(set(expected) | set(actual)):
        if key not in expected:
            lines.append(f"  + {key}: {actual[key]!r} (not in snapshot)")
        elif key not in actual:
            lines.append(f"  - {key}: {expected[key]!r} (missing from result)")
        elif expected[key] != actual[key]:
            lines.append(
                f"  ~ {key}: snapshot {expected[key]!r} != actual {actual[key]!r}"
            )
    lines.append(
        "If the change is intentional, refresh with: "
        "PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden"
    )
    return "\n".join(lines)


@pytest.fixture
def golden_check(request):
    """Compare a JSON-able dict against ``tests/golden/<name>.json``.

    With ``--update-golden`` the snapshot is (re)written instead and the
    test passes; without it, a missing snapshot is a failure that tells
    the developer how to generate one.
    """
    update = request.config.getoption("--update-golden")

    def check(name, actual):
        actual = json.loads(json.dumps(actual))  # normalise to JSON types
        path = GOLDEN_DIR / f"{name}.json"
        if update:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
            return
        if not path.exists():
            pytest.fail(
                f"no golden snapshot at {path}; generate it with "
                "PYTHONPATH=src python -m pytest tests/test_golden.py "
                "--update-golden"
            )
        expected = json.loads(path.read_text())
        if expected != actual:
            pytest.fail(_golden_diff(name, expected, actual))

    return check


@pytest.fixture
def mesh4() :
    return make_mesh(4, 4)


@pytest.fixture
def mesh8():
    return make_mesh(8, 8)


@pytest.fixture
def faulty8():
    """8x8 mesh with 8 random link faults (fixed seed)."""
    return inject_link_faults(make_mesh(8, 8), 8, random.Random(7))


@pytest.fixture
def faulty4():
    """4x4 mesh with 4 random link faults (fixed seed)."""
    return inject_link_faults(make_mesh(4, 4), 4, random.Random(3))


@pytest.fixture
def tiny_scale():
    """A very small Scale for experiment smoke tests."""
    return Scale(
        warmup=200,
        measure=600,
        fault_patterns=1,
        sweep_rates=(0.04, 0.10),
        low_load_rate=0.02,
        epoch=512,
        spin_timeout=96,
        app_transactions_per_node=10,
        app_max_cycles=20_000,
        seeds=1,
    )


def make_config(
    scheme: Scheme,
    num_vns: int = 1,
    vcs_per_vn: int = 2,
    epoch: int = 512,
    **kwargs,
) -> SimConfig:
    """Compact SimConfig builder used across test modules."""
    return SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=num_vns, vcs_per_vn=vcs_per_vn),
        drain=DrainConfig(epoch=epoch, **kwargs.pop("drain_kwargs", {})),
        **kwargs,
    )
