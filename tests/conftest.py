"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import DrainConfig, NetworkConfig, Scheme, SimConfig
from repro.experiments.common import Scale
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh


@pytest.fixture
def mesh4() :
    return make_mesh(4, 4)


@pytest.fixture
def mesh8():
    return make_mesh(8, 8)


@pytest.fixture
def faulty8():
    """8x8 mesh with 8 random link faults (fixed seed)."""
    return inject_link_faults(make_mesh(8, 8), 8, random.Random(7))


@pytest.fixture
def faulty4():
    """4x4 mesh with 4 random link faults (fixed seed)."""
    return inject_link_faults(make_mesh(4, 4), 4, random.Random(3))


@pytest.fixture
def tiny_scale():
    """A very small Scale for experiment smoke tests."""
    return Scale(
        warmup=200,
        measure=600,
        fault_patterns=1,
        sweep_rates=(0.04, 0.10),
        low_load_rate=0.02,
        epoch=512,
        spin_timeout=96,
        app_transactions_per_node=10,
        app_max_cycles=20_000,
        seeds=1,
    )


def make_config(
    scheme: Scheme,
    num_vns: int = 1,
    vcs_per_vn: int = 2,
    epoch: int = 512,
    **kwargs,
) -> SimConfig:
    """Compact SimConfig builder used across test modules."""
    return SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=num_vns, vcs_per_vn=vcs_per_vn),
        drain=DrainConfig(epoch=epoch, **kwargs.pop("drain_kwargs", {})),
        **kwargs,
    )
