"""Tests for multi-flit VCT link serialisation and pre-drain sizing."""

import random

import pytest

from repro.core.config import DrainConfig, NetworkConfig, Scheme, SimConfig
from repro.core.simulator import Simulation
from repro.network.fabric import Fabric
from repro.network.index import FabricIndex
from repro.router.packet import MessageClass, Packet
from repro.routing.adaptive import AdaptiveMinimalRouting
from repro.topology.mesh import make_mesh
from repro.traffic.synthetic import SyntheticTraffic, UniformRandom


def serial_fabric(flits=4, vcs=2):
    topo = make_mesh(4, 4)
    index = FabricIndex(topo)
    config = SimConfig(
        scheme=Scheme.NONE,
        network=NetworkConfig(num_vns=1, vcs_per_vn=vcs,
                              packet_size_flits=flits),
    )
    return Fabric(index, config, AdaptiveMinimalRouting(index),
                  rng=random.Random(1))


class TestSerialisedTransfers:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(packet_size_flits=0)

    def test_single_flit_has_no_inflight_state(self):
        fabric = serial_fabric(flits=1)
        fabric.offer_packet(Packet(0, 0, 5))
        for _ in range(10):
            fabric.step()
            assert fabric.transfers_in_flight() == 0

    def test_transfer_takes_serialisation_latency(self):
        fabric = serial_fabric(flits=4)
        packet = Packet(0, 0, 1, gen_cycle=0)  # one hop
        fabric.offer_packet(packet)
        for _ in range(20):
            fabric.step()
            if packet.eject_cycle is not None:
                break
        # 1-flit baseline ejects at cycle 2; a 4-flit packet holds its link
        # for 3 further cycles, and its head cuts through on arrival, so
        # ejection lands 2 cycles later than the baseline.
        assert packet.eject_cycle == 4

    def test_source_slot_held_during_transfer(self):
        fabric = serial_fabric(flits=4)
        packet = Packet(0, 0, 5, gen_cycle=0)
        fabric.offer_packet(packet)
        fabric.step()  # injected
        fabric.step()  # transfer granted; in flight now
        assert fabric.transfers_in_flight() == 1
        # The packet is still visible in exactly one buffer slot.
        assert fabric.count_packets() == 1

    def test_link_carries_one_packet_per_serialisation_window(self):
        fabric = serial_fabric(flits=4, vcs=4)
        # Two packets at node 0 both must cross link 0->1 (dst=1).
        a = Packet(0, 0, 1, gen_cycle=0)
        b = Packet(1, 0, 1, gen_cycle=0)
        fabric.offer_packet(a)
        fabric.offer_packet(b)
        for _ in range(30):
            fabric.step()
            if a.eject_cycle is not None and b.eject_cycle is not None:
                break
        first, second = sorted((a.eject_cycle, b.eject_cycle))
        assert second - first >= 3  # serialised behind one another

    def test_conservation_with_serialisation(self):
        fabric = serial_fabric(flits=3)
        rng = random.Random(7)
        pid = 0
        for cycle in range(300):
            for node in range(16):
                if rng.random() < 0.2:
                    dst = rng.randrange(16)
                    if dst != node and fabric.offer_packet(
                        Packet(pid, node, dst, gen_cycle=cycle)
                    ):
                        pid += 1
            fabric.step()
            assert (
                fabric.stats.packets_injected
                == fabric.count_packets() + fabric.stats.packets_ejected
            )
            for node in range(16):
                for cls in MessageClass:
                    while fabric.peek_ejection(node, cls):
                        fabric.pop_ejection(node, cls)
        assert fabric.stats.packets_ejected > 100


class TestPreDrainSizing:
    def test_short_pre_drain_window_extends(self):
        """Section III-C2: the freeze must outlast the longest packet."""
        topo = make_mesh(4, 4)
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2,
                                  packet_size_flits=6),
            drain=DrainConfig(epoch=200, pre_drain_window=1),
        )
        traffic = SyntheticTraffic(UniformRandom(16), 0.08, random.Random(3))
        sim = Simulation(topo, config, traffic)
        stats = sim.run(2500)
        assert stats.drain_windows >= 5
        assert sim.drain_controller.pre_drain_extensions > 0

    def test_adequate_pre_drain_window_never_extends(self):
        topo = make_mesh(4, 4)
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2,
                                  packet_size_flits=4),
            drain=DrainConfig(epoch=200, pre_drain_window=5),
        )
        traffic = SyntheticTraffic(UniformRandom(16), 0.08, random.Random(3))
        sim = Simulation(topo, config, traffic)
        stats = sim.run(2500)
        assert stats.drain_windows >= 5
        assert sim.drain_controller.pre_drain_extensions == 0

    def test_drain_never_fires_with_transfers_in_flight(self):
        topo = make_mesh(4, 4)
        config = SimConfig(
            scheme=Scheme.DRAIN,
            network=NetworkConfig(num_vns=1, vcs_per_vn=2,
                                  packet_size_flits=5),
            drain=DrainConfig(epoch=100, pre_drain_window=0),
        )
        traffic = SyntheticTraffic(UniformRandom(16), 0.1, random.Random(5))
        sim = Simulation(topo, config, traffic)
        controller = sim.drain_controller
        for _ in range(3000):
            state_before = controller.state
            sim.step()
            if controller.state == "drain" and state_before != "drain":
                assert sim.fabric.transfers_in_flight() == 0
