"""Bench subsystem: report schema, regression compare, CLI and profiling.

The bench layer is CI-facing (its compare exit code gates merges), so
the schema and the compare verdicts are pinned here with synthetic
reports, and the real runner is exercised once on the cheapest cases to
prove the plumbing end-to-end.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (
    CASES,
    case_names,
    compare_reports,
    default_report_name,
    load_report,
    resolve_cases,
    run_suite,
    write_report,
)

REPO = Path(__file__).resolve().parent.parent


def _cli(*args: str, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, cwd=cwd,
        env={
            "PYTHONPATH": str(REPO / "src"),
            "PATH": "/usr/bin:/bin",
            # The CLI activates the compiled-structure store at its default
            # (user-level) location when this var is absent; the suite must
            # never write outside its tmp dirs.
            "REPRO_STRUCT_CACHE": "off",
        },
    )


def _report(cases):
    """Minimal well-formed report for compare tests."""
    return {
        "schema": "repro-bench-v1",
        "created": "2026-01-01T00:00:00",
        "host": {"platform": "test", "python": "3"},
        "repeat": 1,
        "cases": [
            {
                "name": name,
                "kind": "micro",
                "wall_time_s": wall,
                "work_units": 100,
                "cycles_per_sec": 100 / wall,
                "peak_rss_kb": 1000,
                "config_hash": config_hash,
            }
            for name, wall, config_hash in cases
        ],
    }


CAL = ("calibration_lcg", 1.0, "cal")


class TestCases:
    def test_calibration_always_included(self):
        selected = resolve_cases(["micro_injection"])
        assert selected[0].name == "calibration_lcg"
        assert [c.name for c in selected[1:]] == ["micro_injection"]

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError, match="unknown bench case"):
            resolve_cases(["nope"])

    def test_full_suite_has_micro_and_e2e(self):
        kinds = {case.kind for case in CASES.values()}
        assert kinds == {"calibration", "micro", "e2e"}
        assert "e2e_fig11_low_load_mesh" in case_names()

    def test_labels_unique_and_hashable(self):
        labels = [case.label for case in CASES.values()]
        assert len(set(labels)) == len(labels)


class TestRunner:
    def test_report_schema(self, tmp_path):
        report = run_suite(["micro_injection"], repeat=1)
        assert report["schema"] == "repro-bench-v1"
        assert set(report["host"]) == {"platform", "python"}
        names = [case["name"] for case in report["cases"]]
        assert names == ["calibration_lcg", "micro_injection"]
        for case in report["cases"]:
            assert set(case) == {
                "name", "kind", "wall_time_s", "work_units",
                "cycles_per_sec", "peak_rss_kb", "config_hash",
            }
            assert case["wall_time_s"] > 0
            assert case["cycles_per_sec"] > 0
            assert case["peak_rss_kb"] > 0
            assert len(case["config_hash"]) == 16
        out = write_report(report, tmp_path / "BENCH_test.json")
        assert load_report(out)["cases"] == report["cases"]

    def test_default_report_name_convention(self):
        name = default_report_name()
        assert name.startswith("BENCH_") and name.endswith(".json")


class TestCompare:
    def test_identical_reports_ok(self):
        base = _report([CAL, ("a", 2.0, "ha")])
        assert compare_reports(base, base).ok

    def test_within_tolerance_ok(self):
        base = _report([CAL, ("a", 2.0, "ha")])
        new = _report([CAL, ("a", 2.4, "ha")])
        assert compare_reports(base, new, tolerance=0.25).ok

    def test_regression_flagged(self):
        base = _report([CAL, ("a", 2.0, "ha")])
        new = _report([CAL, ("a", 2.6, "ha")])
        result = compare_reports(base, new, tolerance=0.25)
        assert result.regressions == ["a"]
        assert not result.ok

    def test_calibration_normalises_slow_machine(self):
        # The new machine is uniformly 2x slower: the calibration case
        # doubles too, so a doubled workload time is NOT a regression.
        base = _report([CAL, ("a", 2.0, "ha")])
        new = _report([("calibration_lcg", 2.0, "cal"), ("a", 4.0, "ha")])
        assert compare_reports(base, new, tolerance=0.25).ok

    def test_missing_case_is_regression(self):
        base = _report([CAL, ("a", 2.0, "ha")])
        new = _report([CAL])
        result = compare_reports(base, new)
        assert result.regressions == ["a"]

    def test_changed_config_hash_skipped(self):
        base = _report([CAL, ("a", 2.0, "ha")])
        new = _report([CAL, ("a", 99.0, "CHANGED")])
        result = compare_reports(base, new)
        assert result.ok
        assert result.skipped == ["a"]

    def test_load_report_rejects_non_reports(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a bench report"):
            load_report(bogus)


class TestCli:
    def test_bench_run_writes_report(self, tmp_path):
        out = tmp_path / "BENCH_ci.json"
        proc = _cli("bench", "--cases", "micro_injection", "--repeat", "1",
                    "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-bench-v1"

    def test_bench_compare_exit_codes(self, tmp_path):
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        base = _report([CAL, ("a", 2.0, "ha")])
        slow = _report([CAL, ("a", 9.0, "ha")])
        good.write_text(json.dumps(base))
        bad.write_text(json.dumps(slow))
        assert _cli("bench", "--compare", str(good), str(good)).returncode == 0
        proc = _cli("bench", "--compare", str(good), str(bad))
        assert proc.returncode == 1
        assert "REGRESS" in proc.stdout

    def test_bench_unknown_case_exit_2(self):
        proc = _cli("bench", "--cases", "nope")
        assert proc.returncode == 2
        assert "unknown bench case" in proc.stderr

    def test_run_profile_writes_artifacts(self, tmp_path):
        proc = _cli("run", "--topo", "mesh:3x3", "--scheme", "drain",
                    "--rate", "0.05", "--cycles", "200", "--warmup", "50",
                    "--profile", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        profs = list(tmp_path.glob("run_*.prof"))
        texts = list(tmp_path.glob("run_*.profile.txt"))
        assert len(profs) == 1 and len(texts) == 1
        assert "cumulative" in texts[0].read_text()

    def test_sweep_profile_lands_next_to_manifest(self, tmp_path):
        out_dir = tmp_path / "sweep"
        proc = _cli("sweep", "--topo", "mesh:3x3", "--schemes", "drain",
                    "--rates", "0.05", "--out-dir", str(out_dir),
                    "--profile")
        assert proc.returncode == 0, proc.stderr
        assert list(out_dir.glob("sweep_*.prof"))
        assert list(out_dir.glob("sweep_*.profile.txt"))
        assert list(out_dir.glob("sweep_*.manifest.json"))
