"""Smoke + shape tests for the experiment modules (tiny scale).

Full-shape assertions (who wins, orderings) live in the benchmark harness;
here we verify each experiment runs end-to-end and produces well-formed
rows with the structurally guaranteed properties.
"""

import pytest

from repro.core.config import Scheme
from repro.experiments import (
    fig3_deadlock_likelihood,
    fig9_area_power,
    fig14_epoch,
    table1_comparison,
    table2_parameters,
)
from repro.experiments.common import (
    Scale,
    current_scale,
    format_table,
    low_load_latency,
    run_synthetic,
    saturation_throughput,
    scheme_config,
    sweep_injection,
)
from repro.topology.mesh import make_mesh
from repro.traffic.workloads import PARSEC


class TestScale:
    def test_ci_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() == Scale.ci()

    def test_full_selected_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        scale = current_scale()
        assert scale.epoch == 65_536
        assert scale.fault_patterns == 10

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            current_scale()


class TestSchemeConfig:
    def test_drain_defaults_to_one_vn(self, tiny_scale):
        cfg = scheme_config(Scheme.DRAIN, tiny_scale)
        assert cfg.network.num_vns == 1

    def test_baselines_keep_three_vns(self, tiny_scale):
        for scheme in (Scheme.SPIN, Scheme.ESCAPE_VC):
            assert scheme_config(scheme, tiny_scale).network.num_vns == 3

    def test_scaled_epoch_and_timeout(self, tiny_scale):
        cfg = scheme_config(Scheme.DRAIN, tiny_scale)
        assert cfg.drain.epoch == tiny_scale.epoch
        assert cfg.spin.timeout == tiny_scale.spin_timeout


class TestCommonRunners:
    def test_run_synthetic_produces_stats(self, tiny_scale, mesh4):
        sim = run_synthetic(mesh4, Scheme.DRAIN, 0.05, tiny_scale)
        assert sim.stats.packets_ejected > 0

    def test_sweep_rows_structure(self, tiny_scale, mesh4):
        rows = sweep_injection(mesh4, Scheme.DRAIN, tiny_scale)
        assert len(rows) == len(tiny_scale.sweep_rates)
        for row in rows:
            assert {"rate", "throughput", "latency", "ejected"} <= set(row)

    def test_saturation_is_max(self):
        rows = [{"throughput": 0.1}, {"throughput": 0.3}, {"throughput": 0.2}]
        assert saturation_throughput(rows) == 0.3

    def test_low_load_latency_positive(self, tiny_scale, mesh4):
        assert low_load_latency(mesh4, Scheme.DRAIN, tiny_scale) > 0

    def test_format_table(self):
        text = format_table(
            [{"a": 1, "b": 2.5}], columns=("a", "b"), title="T"
        )
        assert "T" in text and "2.5000" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], columns=("a",))


class TestFig3:
    def test_rows_and_zero_fault_baseline(self, tiny_scale):
        rows = fig3_deadlock_likelihood.deadlock_likelihood(
            workloads=[PARSEC[2]],  # canneal
            links_removed=(0, 10),
            vcs_options=(1,),
            runs=2,
            scale=tiny_scale,
        )
        assert len(rows) == 2
        baseline = next(r for r in rows if r["links_removed"] == 0)
        assert baseline["deadlock_pct"] == 0.0  # paper: fault-free is safe

    def test_faults_increase_deadlocks_for_canneal(self, tiny_scale):
        rows = fig3_deadlock_likelihood.deadlock_likelihood(
            workloads=[PARSEC[2]],
            links_removed=(12,),
            vcs_options=(1,),
            runs=3,
            scale=tiny_scale,
        )
        assert rows[0]["deadlock_pct"] > 0.0


class TestFig9:
    def test_rows_complete(self):
        rows = fig9_area_power.run()
        assert {r["scheme"] for r in rows} == {"escape_vc", "spin", "drain"}

    def test_normalisation_anchor(self):
        rows = {r["scheme"]: r for r in fig9_area_power.run()}
        assert rows["escape_vc"]["norm_area"] == 1.0
        assert rows["escape_vc"]["norm_power"] == 1.0

    def test_drain_cheapest(self):
        rows = {r["scheme"]: r for r in fig9_area_power.run()}
        assert rows["drain"]["norm_area"] < rows["spin"]["norm_area"] < 1.0
        assert rows["drain"]["norm_power"] < rows["spin"]["norm_power"] < 1.0


class TestFig14:
    def test_extreme_epoch_hurts(self, tiny_scale):
        rows = fig14_epoch.epoch_sensitivity(epochs=(16, 2048), scale=tiny_scale)
        by_epoch = {r["epoch"]: r for r in rows}
        assert by_epoch[16]["latency"] > by_epoch[2048]["latency"]
        assert by_epoch[16]["misroutes"] > by_epoch[2048]["misroutes"]


class TestTables:
    def test_table1_rows(self):
        rows = table1_comparison.run()
        assert len(rows) == 5
        drain = next(r for r in rows if r["solution"] == "drain")
        assert drain["type"] == "subactive"
        assert drain["protocol_dl"] == "yes"
        spin = next(r for r in rows if r["solution"] == "spin")
        assert spin["protocol_dl"] == "no"

    def test_table1_only_drain_has_all_yes(self):
        rows = table1_comparison.run()
        full_marks = [
            r["solution"]
            for r in rows
            if all(
                r[k] == "yes"
                for k in ("high_perf", "low_area_power", "low_complexity",
                          "routing_dl", "protocol_dl")
            )
        ]
        assert full_marks == ["drain"]

    def test_table2_echoes_defaults(self):
        rows = table2_parameters.run()
        assert all(r["match"] for r in rows)
        params = {r["parameter"] for r in rows}
        assert "DRAIN epoch" in params and "SPIN timeout" in params
