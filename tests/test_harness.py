"""Unit tests for the parallel sweep harness (specs, cache, pool, manifest)."""

from __future__ import annotations

import json

import pytest

from repro.core.config import Scheme, SimConfig
from repro.experiments.common import Scale, synthetic_trial_for
from repro.harness import (
    Harness,
    ResultCache,
    TrialSpec,
    build_manifest,
    execute_trial,
    git_revision,
    run_trials,
    synthetic_trial,
    topology_from_spec,
    topology_to_spec,
    write_manifest,
)
from repro.harness.pool import get_default_harness, set_default_harness
from repro.topology.irregular import inject_link_faults
from repro.topology.mesh import make_mesh, make_torus

import random

TINY = Scale(warmup=100, measure=300, fault_patterns=1,
             sweep_rates=(0.04,), epoch=256, spin_timeout=64)


def tiny_spec(rate=0.05, seed=1, scheme=Scheme.DRAIN):
    return synthetic_trial_for(
        make_mesh(4, 4), scheme, rate, TINY, mesh_width=4, seed=seed
    )


class TestTopologySpec:
    @pytest.mark.parametrize(
        "topology",
        [
            make_mesh(4, 4),
            make_torus(3, 3),
            inject_link_faults(make_mesh(4, 4), 4, random.Random(3)),
        ],
        ids=lambda t: t.name,
    )
    def test_roundtrip_exact(self, topology):
        rebuilt = topology_from_spec(topology_to_spec(topology))
        assert rebuilt.name == topology.name
        assert rebuilt.num_nodes == topology.num_nodes
        assert rebuilt.bidirectional_links() == topology.bidirectional_links()
        assert rebuilt.coordinates == topology.coordinates

    def test_spec_is_json_able(self):
        spec = topology_to_spec(make_mesh(3, 3))
        assert json.loads(json.dumps(spec)) == spec


class TestTrialSpec:
    def test_digest_stable_across_param_order(self):
        a = TrialSpec("synthetic", {"x": 1, "y": 2})
        b = TrialSpec("synthetic", {"y": 2, "x": 1})
        assert a.digest() == b.digest()

    def test_digest_sensitive_to_values(self):
        assert tiny_spec(seed=1).digest() != tiny_spec(seed=2).digest()
        assert tiny_spec(rate=0.04).digest() != tiny_spec(rate=0.05).digest()
        assert (
            tiny_spec(scheme=Scheme.DRAIN).digest()
            != tiny_spec(scheme=Scheme.SPIN).digest()
        )

    def test_same_parameters_same_digest(self):
        assert tiny_spec().digest() == tiny_spec().digest()

    def test_unknown_runner_rejected(self):
        with pytest.raises(ValueError, match="unknown trial runner"):
            execute_trial(TrialSpec("nope", {}))


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = tiny_spec().digest()
        assert cache.get(digest) is None
        cache.put(digest, {"result": {"v": 1.5}, "elapsed": 0.1})
        assert cache.get(digest)["result"] == {"v": 1.5}
        assert cache.hits == 1 and cache.misses == 1
        assert digest in cache and len(cache) == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = tiny_spec().digest()
        path = cache.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(digest) is None
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(tiny_spec(seed=i + 1).digest(), {"result": {}})
        assert cache.clear() == 3
        assert len(cache) == 0


class TestHarness:
    def test_empty_batch(self):
        assert Harness(workers=1).run([]) == []

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            Harness(workers=0)

    def test_results_in_submission_order(self):
        specs = [tiny_spec(rate=r) for r in (0.08, 0.04, 0.06)]
        results = Harness(workers=2).run(specs)
        assert [r["rate"] for r in results] == [0.08, 0.04, 0.06]

    def test_records_and_timing(self, tmp_path):
        harness = Harness(workers=1, cache=ResultCache(tmp_path))
        harness.run([tiny_spec()], label="unit")
        harness.run([tiny_spec()], label="unit")
        assert len(harness.records) == 2
        fresh, cached = harness.records
        assert not fresh.cached and cached.cached
        assert fresh.elapsed > 0
        assert fresh.label == "unit"
        assert harness.trials_executed == 1
        assert harness.simulated_seconds == fresh.elapsed

    def test_run_trials_convenience(self):
        (res,) = run_trials([tiny_spec()])
        assert res["throughput"] > 0

    def test_default_harness_is_process_wide(self):
        set_default_harness(None)
        try:
            assert get_default_harness() is get_default_harness()
            override = Harness(workers=1)
            set_default_harness(override)
            assert get_default_harness() is override
        finally:
            set_default_harness(None)


class TestManifest:
    def test_git_revision_reports_something(self):
        rev = git_revision()
        assert isinstance(rev, str) and rev

    def test_build_and_write(self, tmp_path):
        harness = Harness(workers=2, cache=ResultCache(tmp_path / "c"))
        harness.run([tiny_spec(), tiny_spec(seed=2)], label="m")
        manifest = build_manifest("unit_artefact", harness, scale=TINY)
        path = write_manifest(manifest, tmp_path / "results")
        data = json.loads(path.read_text())
        assert path.name == "unit_artefact.manifest.json"
        assert data["workers"] == 2
        assert data["num_trials"] == 2
        assert data["cache_misses"] == 2
        assert data["scale"]["warmup"] == TINY.warmup
        assert data["scale"]["sweep_rates"] == list(TINY.sweep_rates)
        assert all(t["digest"] for t in data["trials"])
        assert data["total_trial_seconds"] > 0

    def test_manifest_records_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        Harness(workers=1, cache=cache).run([tiny_spec()])
        harness = Harness(workers=1, cache=cache)
        harness.run([tiny_spec()])
        data = build_manifest("warm", harness).as_dict()
        assert data["cache_hits"] == 1
        assert data["trials"][0]["cached"] is True
