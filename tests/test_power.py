"""Unit tests for the analytical area/power model and run accounting."""

import pytest

from repro.core.metrics import NetworkStats
from repro.power.accounting import network_power_split, per_vn_power
from repro.power.dsent import (
    RouterParams,
    model_router,
    scheme_router_params,
)


class TestRouterModel:
    def test_buffer_area_dominates(self):
        """Section II-B: VC buffers are the dominant area/power component."""
        model = model_router(RouterParams(ports=5, num_vns=3, vcs_per_vn=2))
        assert model.buffer_area / model.total_area > 0.5

    def test_area_monotone_in_vcs(self):
        areas = [
            model_router(RouterParams(5, 3, vcs, "basic")).total_area
            for vcs in (1, 2, 4)
        ]
        assert areas[0] < areas[1] < areas[2]

    def test_area_monotone_in_vns(self):
        areas = [
            model_router(RouterParams(5, vns, 2, "basic")).total_area
            for vns in (1, 2, 3)
        ]
        assert areas[0] < areas[1] < areas[2]

    def test_static_power_monotone_in_buffers(self):
        p1 = model_router(RouterParams(5, 1, 2, "basic")).static_power
        p3 = model_router(RouterParams(5, 3, 2, "basic")).static_power
        assert p3 > 2.5 * p1

    def test_spin_area_overhead_about_15_percent(self):
        basic = model_router(RouterParams(5, 3, 2, "basic"))
        spin = model_router(RouterParams(5, 3, 2, "spin"))
        overhead = spin.total_area / basic.total_area - 1.0
        assert overhead == pytest.approx(0.15, abs=0.01)

    def test_drain_control_is_cheap(self):
        drain = model_router(RouterParams(5, 1, 2, "drain"))
        assert drain.control_area / drain.total_area < 0.02

    def test_dynamic_energy_scales_with_events(self):
        model = model_router(RouterParams())
        e1 = model.dynamic_energy(100, 50, 50, 50)
        e2 = model.dynamic_energy(200, 100, 100, 100)
        assert e2 == pytest.approx(2 * e1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            RouterParams(ports=1)
        with pytest.raises(ValueError):
            RouterParams(num_vns=0)
        with pytest.raises(ValueError):
            RouterParams(scheme="quantum")


class TestFigure9Shape:
    """The headline area/power ratios of the paper's Figure 9."""

    def test_drain_saves_most_area(self):
        escape = model_router(scheme_router_params("escape_vc", vcs_per_vn=3))
        drain = model_router(scheme_router_params("drain", vcs_per_vn=2))
        reduction = 1.0 - drain.total_area / escape.total_area
        assert 0.60 < reduction < 0.85  # paper: ~72%

    def test_drain_saves_most_power(self):
        escape = model_router(scheme_router_params("escape_vc", vcs_per_vn=3))
        spin = model_router(scheme_router_params("spin", vcs_per_vn=2))
        drain = model_router(scheme_router_params("drain", vcs_per_vn=2))
        vs_escape = 1.0 - drain.static_power / escape.static_power
        vs_spin = 1.0 - drain.static_power / spin.static_power
        assert 0.65 < vs_escape < 0.85  # paper: ~77%
        assert 0.60 < vs_spin < 0.85  # abstract: 77.6% vs reactive

    def test_ordering_escape_highest_drain_lowest(self):
        escape = model_router(scheme_router_params("escape_vc", vcs_per_vn=3))
        spin = model_router(scheme_router_params("spin", vcs_per_vn=2))
        drain = model_router(scheme_router_params("drain", vcs_per_vn=2))
        assert escape.total_area > spin.total_area > drain.total_area
        assert escape.static_power > spin.static_power > drain.static_power


class TestAccounting:
    def _stats(self, cycles=1000, hops=500):
        stats = NetworkStats()
        stats.cycles = cycles
        stats.flits_traversed = hops
        stats.buffer_reads = hops
        stats.buffer_writes = hops
        stats.xbar_traversals = hops
        return stats

    def test_network_split_positive(self):
        split = network_power_split(self._stats(), RouterParams(), 16)
        assert split.active_power > 0
        assert split.wasted_power > 0

    def test_zero_cycles_rejected(self):
        stats = NetworkStats()
        with pytest.raises(ValueError):
            network_power_split(stats, RouterParams(), 16)

    def test_per_vn_static_split_equal(self):
        splits = per_vn_power({0: 100, 1: 50, 2: 0}, self._stats(),
                              RouterParams(num_vns=3), 16)
        wasted = {s.wasted_power for s in splits}
        assert len(wasted) == 1  # equal static share per VN

    def test_per_vn_active_proportional_to_traffic(self):
        splits = per_vn_power({0: 100, 1: 50, 2: 0}, self._stats(),
                              RouterParams(num_vns=3), 16)
        by_vn = {s.vn: s for s in splits}
        assert by_vn[0].active_power == pytest.approx(2 * by_vn[1].active_power)
        assert by_vn[2].active_power == 0.0

    def test_idle_vn_power_is_all_wasted(self):
        splits = per_vn_power({0: 100, 1: 0, 2: 0}, self._stats(),
                              RouterParams(num_vns=3), 16)
        idle = [s for s in splits if s.vn != 0]
        for s in idle:
            assert s.wasted_fraction == 1.0

    def test_low_activity_is_mostly_wasted(self):
        """Figure 4's observation at realistic loads."""
        stats = self._stats(cycles=10_000, hops=500)
        split = network_power_split(stats, RouterParams(), 64)
        assert split.wasted_fraction > 0.5


class TestStaticBubbleModel:
    def test_bubble_cheaper_than_spin_control(self):
        spin = model_router(scheme_router_params("spin", vcs_per_vn=2))
        bubble = model_router(
            scheme_router_params("static_bubble", vcs_per_vn=2)
        )
        assert bubble.control_area < spin.control_area

    def test_bubble_still_needs_virtual_networks(self):
        """The extra buffer fixes routing deadlock only; like SPIN it pays
        for all the virtual networks."""
        bubble = model_router(
            scheme_router_params("static_bubble", vcs_per_vn=2)
        )
        drain = model_router(scheme_router_params("drain", vcs_per_vn=2))
        assert bubble.total_area > 2 * drain.total_area
