"""Edge cases of the event-horizon fast-forward engine.

The parity suite (test_parity_dense.py) pins fast-forward-on vs -off to
bit-identical statistics; these tests target the horizon computation's
boundary behaviour directly — the places where an off-by-one would not
necessarily show up in end-of-run aggregates:

- a skip span never straddles the warmup/measurement boundary or the end
  of the run;
- the watchdog (and halt-on-deadlock) never sleeps past a check tick;
- a fault whose onset lands exactly on the horizon interrupts the skip
  and applies on its scheduled cycle;
- the drain-epoch countdown is never jumped over (freeze cycles match a
  dense run exactly);
- a trace source that completes mid-run stops the fast run on the same
  cycle as the dense run.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import Scheme
from repro.core.rng import derive_seed
from repro.core.simulator import Simulation
from repro.experiments.common import Scale, scheme_config
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.topology.mesh import make_mesh
from repro.traffic.synthetic import SyntheticTraffic, pattern_by_name
from repro.traffic.trace import TraceRecorder, TraceTraffic

TINY = Scale(
    warmup=100,
    measure=300,
    fault_patterns=1,
    sweep_rates=(0.05,),
    epoch=128,
    spin_timeout=64,
)

#: Low enough that an 8x8 mesh spends most cycles quiescent.
IDLE_RATE = 0.0005


def _make_sim(rate: float = IDLE_RATE, scheme: Scheme = Scheme.DRAIN,
              scale: Scale = TINY, dense: bool = False, seed: int = 1,
              **kwargs) -> Simulation:
    topology = make_mesh(8, 8)
    config = scheme_config(scheme, scale, seed=seed)
    traffic = SyntheticTraffic(
        pattern_by_name("uniform_random", topology.num_nodes, 8),
        rate,
        random.Random(derive_seed(seed, "traffic", "uniform_random", rate)),
    )
    return Simulation(topology, config, traffic, dense=dense, **kwargs)


def _record_spans(sim: Simulation):
    """Shadow ``fabric.skip_cycles`` to log every (start, count) span."""
    spans = []
    fabric = sim.fabric
    original = fabric.skip_cycles

    def recording(count: int) -> None:
        spans.append((fabric.cycle, count))
        original(count)

    fabric.skip_cycles = recording
    return spans


class TestHorizonBoundaries:
    def test_span_never_straddles_measurement_boundary(self):
        sim = _make_sim()
        spans = _record_spans(sim)
        sim.run(TINY.total_cycles, warmup=TINY.warmup)
        assert spans, "fast-forward never engaged at idle rate"
        boundary = sim.fabric.measure_from
        for start, count in spans:
            assert start + count <= boundary or start >= boundary, (
                f"span [{start}, {start + count}) straddles the "
                f"measurement boundary at {boundary}"
            )

    def test_span_never_overshoots_end_of_run(self):
        # Rate zero: the entire run is one idle stretch; the skip must
        # land exactly on the end cycle, not past it.
        sim = _make_sim(rate=0.0)
        sim.run(TINY.total_cycles, warmup=TINY.warmup)
        assert sim.fabric.cycle == TINY.total_cycles
        assert sim.stats.cycles == TINY.total_cycles
        assert sim.stats.measured_cycles == TINY.measure
        assert sim.ff_cycles > 0

    def test_zero_budget_runs_dense(self):
        # A horizon one cycle out (budget < 2) must fall back to a dense
        # step rather than skipping: _fast_forward returns 0.
        sim = _make_sim()
        sim._horizon_hooks.append(lambda now: now + 1)
        sim.run(TINY.total_cycles, warmup=TINY.warmup)
        assert sim.ff_spans == 0
        assert sim.fabric.cycle == TINY.total_cycles


class TestWatchdogTicks:
    @pytest.mark.parametrize("halt", [False, True])
    def test_never_sleeps_past_a_check_tick(self, halt):
        # Scheme NONE wires the watchdog; its hook pins the horizon to the
        # next check_interval multiple, so every span must end on or
        # before that tick — and can never *start* on an unexecuted tick.
        sim = _make_sim(scheme=Scheme.NONE, halt_on_deadlock=halt)
        assert sim.watchdog is not None
        interval = sim.watchdog.check_interval
        spans = _record_spans(sim)
        sim.run(TINY.total_cycles, warmup=TINY.warmup)
        assert spans
        for start, count in spans:
            assert start % interval != 0 or count == 0
            next_tick = (start // interval + 1) * interval
            assert start + count <= next_tick, (
                f"span [{start}, {start + count}) slept past the "
                f"watchdog tick at {next_tick}"
            )

    def test_check_cycles_match_dense_run(self):
        # The oracle must fire on exactly the same cycles either way.
        checks = {}
        for dense in (False, True):
            sim = _make_sim(scheme=Scheme.NONE, dense=dense)
            watchdog = sim.watchdog
            fired = []
            original = watchdog.step

            def recording(w=watchdog, out=fired, orig=original):
                before = w.fabric.cycle
                if before % w.check_interval == 0 and not w.deadlocked:
                    out.append(before)
                orig()

            watchdog.step = recording
            sim.run(TINY.total_cycles, warmup=TINY.warmup)
            checks[dense] = fired
        assert checks[False] == checks[True]
        assert checks[False]


class TestFaultOnset:
    def test_fault_exactly_on_horizon_applies_on_schedule(self):
        # The fault cycle sits deep inside what would otherwise be one
        # long idle span: the injector's hook must clamp the horizon so
        # the skip lands exactly on the onset cycle and the event applies
        # there — bit-identically to the dense run.
        onset = 217  # not a multiple of anything else in the horizon set
        events = (FaultEvent(cycle=onset, kind="link", target=(5, 6)),)
        schedule = FaultSchedule(events=events, seed=7, onset="uniform")

        results = {}
        for dense in (False, True):
            sim = _make_sim(dense=dense, fault_schedule=schedule)
            spans = _record_spans(sim)
            sim.run(TINY.total_cycles, warmup=TINY.warmup)
            results[dense] = sim.stats.as_dict()
            if not dense:
                assert spans
                for start, count in spans:
                    assert start + count <= onset or start >= onset, (
                        f"span [{start}, {start + count}) jumped the "
                        f"fault onset at {onset}"
                    )
                assert sim.stats.faults_applied >= 1
        assert results[False] == results[True]


class TestDrainCountdown:
    def test_freeze_cycles_match_dense_run(self):
        # TINY's 128-cycle epoch forces several drain windows inside the
        # run; every freeze must fire on the same cycle as in dense mode
        # (a skip crossing the countdown would delay the whole schedule).
        freezes = {}
        for dense in (False, True):
            sim = _make_sim(dense=dense)
            controller = sim.drain_controller
            fired = []
            original = controller._enter_drain

            def recording(c=controller, out=fired, orig=original):
                out.append(c.fabric.cycle)
                orig()

            controller._enter_drain = recording
            sim.run(TINY.total_cycles, warmup=TINY.warmup)
            freezes[dense] = fired
            if not dense:
                assert sim.ff_cycles > 0
        assert freezes[False] == freezes[True]
        assert freezes[False], "epoch=128 run produced no drain windows"

    def test_skip_cycles_refuses_to_cross_the_countdown(self):
        sim = _make_sim()
        controller = sim.drain_controller
        countdown = controller._countdown
        with pytest.raises(RuntimeError):
            controller.skip_cycles(countdown)
        # One short of the horizon is fine.
        controller.skip_cycles(countdown - 1)
        assert controller._countdown == 1

    def test_fabric_skip_refuses_non_quiescent_state(self):
        from repro.router.packet import Packet

        sim = _make_sim(rate=0.0)
        fabric = sim.fabric
        assert fabric.offer_packet(Packet(0, 0, 5, gen_cycle=0))
        sim.step()  # packet leaves the NI queue into a VC
        assert not fabric.quiescent
        with pytest.raises(RuntimeError):
            fabric.skip_cycles(10)


class TestTraceCompletion:
    def _trace(self):
        recorder = TraceRecorder(
            pattern_by_name("uniform_random", 64, 8),
            IDLE_RATE,
            random.Random(derive_seed(1, "traffic", "uniform_random",
                                      IDLE_RATE)),
        )
        topology = make_mesh(8, 8)
        config = scheme_config(Scheme.DRAIN, TINY, seed=1)
        sim = Simulation(topology, config, recorder)
        sim.run(200)
        assert recorder.records, "recording window produced no packets"
        return recorder.records

    def test_done_mid_run_stops_fast_and_dense_on_same_cycle(self):
        # The trace exhausts long before the end of the run: the fast run
        # must notice completion on the same cycle as the dense run (never
        # inside a span — deliveries cannot happen while skipping) and
        # must not skip past the stop point.
        records = self._trace()
        ends = {}
        for dense in (False, True):
            topology = make_mesh(8, 8)
            config = scheme_config(Scheme.DRAIN, TINY, seed=1)
            traffic = TraceTraffic(records, topology.num_nodes)
            sim = Simulation(topology, config, traffic, dense=dense)
            sim.run(TINY.total_cycles, warmup=TINY.warmup)
            assert traffic.done()
            assert traffic.delivered == len(records)
            ends[dense] = (sim.fabric.cycle, sim.stats.as_dict())
            if not dense:
                assert sim.ff_cycles > 0, "gap skipping never engaged"
        assert ends[False] == ends[True]

    def test_recorder_captures_every_generated_packet(self):
        # Regression: the recorder used to scan the backlog after the
        # offer sweep had drained it, recording nothing at low load.
        recorder = TraceRecorder(
            pattern_by_name("uniform_random", 64, 8),
            IDLE_RATE,
            random.Random(3),
        )
        topology = make_mesh(8, 8)
        config = scheme_config(Scheme.DRAIN, TINY, seed=1)
        sim = Simulation(topology, config, recorder)
        sim.run(400)
        assert recorder.generated > 0
        assert len(recorder.records) == recorder.generated
