"""Deterministic random-number utilities.

Every stochastic component of the simulator (traffic generators, fault
injection, allocator tie-breaking) draws from a ``random.Random`` instance
derived from a single experiment seed, so that every run is exactly
reproducible from its seed.

Reproducibility must hold *across processes*: the parallel sweep harness
(:mod:`repro.harness`) fans trials out over ``multiprocessing`` workers and
memoizes results on disk, so a child seed derived in a worker today must
equal the one derived in a fresh interpreter next week. Python's built-in
``hash()`` is salted per-process for strings (PEP 456) and therefore must
never appear in seed derivation; labels are hashed with BLAKE2b instead.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["spawn", "derive_seed", "stable_hash"]

_MIX = 0x9E3779B97F4A7C15  # 64-bit golden-ratio constant for seed mixing
_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(label: object) -> int:
    """A 64-bit hash of *label* that is identical in every interpreter.

    The label's ``repr`` is hashed with BLAKE2b, so equal labels always
    collide and distinct reprs essentially never do. Unlike ``hash(str)``,
    the result does not depend on ``PYTHONHASHSEED`` or the process.
    """
    data = repr(label).encode("utf-8", "backslashreplace")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from *seed* and a sequence of labels.

    Labels are hashed into the seed so that e.g. the traffic generator of
    node 7 and the fault pattern of trial 3 never share a stream, while
    remaining stable across runs, processes and interpreter restarts.
    """
    value = seed & _MASK
    for label in labels:
        value = (value ^ stable_hash(label)) & _MASK
        value = (value * _MIX + 1) & _MASK
        value ^= value >> 31
    return value


def spawn(seed: int, *labels: object) -> random.Random:
    """Return a fresh ``random.Random`` seeded from *seed* and *labels*."""
    return random.Random(derive_seed(seed, *labels))
