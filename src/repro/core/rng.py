"""Deterministic random-number utilities.

Every stochastic component of the simulator (traffic generators, fault
injection, allocator tie-breaking) draws from a ``random.Random`` instance
derived from a single experiment seed, so that every run is exactly
reproducible from its seed.
"""

from __future__ import annotations

import random

__all__ = ["spawn", "derive_seed"]

_MIX = 0x9E3779B97F4A7C15  # 64-bit golden-ratio constant for seed mixing


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from *seed* and a sequence of labels.

    Labels are hashed into the seed so that e.g. the traffic generator of
    node 7 and the fault pattern of trial 3 never share a stream, while
    remaining stable across runs.
    """
    value = seed & 0xFFFFFFFFFFFFFFFF
    for label in labels:
        value = (value ^ (hash(str(label)) & 0xFFFFFFFFFFFFFFFF)) & 0xFFFFFFFFFFFFFFFF
        value = (value * _MIX + 1) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 31
    return value


def spawn(seed: int, *labels: object) -> random.Random:
    """Return a fresh ``random.Random`` seeded from *seed* and *labels*."""
    return random.Random(derive_seed(seed, *labels))
