"""Configuration (de)serialisation: SimConfig <-> JSON.

Experiments are easier to archive and rerun when the full configuration
travels with the results. The format is one flat JSON object per section
(``scheme``, ``network``, ``drain``, ``spin``, ``protocol``), with every
field explicit — loading rejects unknown keys so stale files fail loudly
instead of silently using defaults.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

from .config import (
    DrainConfig,
    NetworkConfig,
    PfcConfig,
    ProtocolConfig,
    Scheme,
    SimConfig,
    SpinConfig,
)

__all__ = ["config_to_dict", "config_from_dict", "save_config", "load_config"]

_SECTIONS = {
    "network": NetworkConfig,
    "drain": DrainConfig,
    "spin": SpinConfig,
    "protocol": ProtocolConfig,
    "pfc": PfcConfig,
}


def config_to_dict(config: SimConfig) -> Dict[str, Any]:
    """Flatten a :class:`SimConfig` into plain JSON-ready dictionaries.

    ``batch`` is deliberately never emitted: it is a scheduling knob that
    cannot change results (batched trials are bit-identical to solo runs),
    so batched and unbatched sweeps must digest — and therefore cache —
    identically.
    """
    out: Dict[str, Any] = {
        "scheme": config.scheme.value,
        "seed": config.seed,
        "deadlock_check_interval": config.deadlock_check_interval,
        "deadlock_grace": config.deadlock_grace,
        "engine": config.engine,
        "flow_control": config.flow_control,
    }
    for section, _cls in _SECTIONS.items():
        out[section] = dataclasses.asdict(getattr(config, section))
    return out


def config_from_dict(data: Dict[str, Any]) -> SimConfig:
    """Rebuild a :class:`SimConfig`; unknown keys raise ``ValueError``."""
    payload = dict(data)
    scheme = Scheme(payload.pop("scheme", Scheme.DRAIN.value))
    seed = payload.pop("seed", 1)
    check = payload.pop("deadlock_check_interval", 128)
    grace = payload.pop("deadlock_grace", 64)
    engine = payload.pop("engine", "auto")
    # Tolerated for hand-written config files; never present in files this
    # module wrote (see config_to_dict's digest-identity note).
    batch = payload.pop("batch", "off")
    flow_control = payload.pop("flow_control", "credit")
    sections: Dict[str, Any] = {}
    for section, cls in _SECTIONS.items():
        raw = payload.pop(section, {})
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown keys in [{section}]: {sorted(unknown)}"
            )
        sections[section] = cls(**raw)
    if payload:
        raise ValueError(f"unknown top-level keys: {sorted(payload)}")
    return SimConfig(
        scheme=scheme,
        seed=seed,
        deadlock_check_interval=check,
        deadlock_grace=grace,
        engine=engine,
        batch=batch,
        flow_control=flow_control,
        **sections,
    )


def save_config(config: SimConfig, path: Union[str, Path]) -> None:
    """Write *config* as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(config_to_dict(config), indent=2, sort_keys=True) + "\n"
    )


def load_config(path: Union[str, Path]) -> SimConfig:
    """Read a JSON configuration written by :func:`save_config`."""
    return config_from_dict(json.loads(Path(path).read_text()))
