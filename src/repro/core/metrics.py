"""Statistics collection for simulation runs.

``RunningStats`` keeps O(1) summary statistics; ``SampleStats`` additionally
retains raw samples so that percentiles (e.g. the paper's 99th-percentile
tail latency, Figure 15) can be computed exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["RunningStats", "SampleStats", "NetworkStats", "percentile"]


def percentile(samples: List[float], pct: float) -> float:
    """Return the *pct* percentile (0-100) of *samples* by linear interpolation.

    Raises ``ValueError`` on an empty sample list.
    """
    if not samples:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    value = ordered[low] * (1.0 - frac) + ordered[high] * frac
    # The two rounded weight products can overshoot the bracket by one
    # ulp (e.g. x*0.02 + x*0.98 > x for some subnormal-scale x); a
    # percentile must stay within [min, max] of its samples.
    if value < ordered[low]:
        return ordered[low]
    if value > ordered[high]:
        return ordered[high]
    return value


class RunningStats:
    """Constant-space mean/variance/min/max accumulator (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> None:
        """Fold *other* into this accumulator (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class SampleStats(RunningStats):
    """RunningStats that also retains raw samples for percentile queries."""

    __slots__ = ("samples",)

    def __init__(self) -> None:
        super().__init__()
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        super().add(value)
        self.samples.append(value)

    def percentile(self, pct: float) -> float:
        return percentile(self.samples, pct)


@dataclass
class NetworkStats:
    """Aggregate counters for one simulation run.

    All latency figures are in cycles; throughput is packets received per
    node per cycle, matching the units used throughout the paper's
    evaluation section.
    """

    packets_injected: int = 0
    packets_ejected: int = 0
    packets_ejected_measured: int = 0  # ejections within the measured window
    flits_traversed: int = 0  # link traversals (hop events)
    misroutes: int = 0  # hops that moved a packet away from its destination
    drain_windows: int = 0
    full_drains: int = 0
    drained_packets: int = 0  # packet-moves forced by draining
    deadlocks_detected: int = 0
    deadlock_events: int = 0  # distinct detector firings (SPIN / oracle)
    probes_sent: int = 0  # SPIN probe traffic
    spins_performed: int = 0
    buffer_reads: int = 0
    buffer_writes: int = 0
    xbar_traversals: int = 0
    cycles: int = 0
    measured_cycles: int = 0
    vn_hops: Dict[int, int] = field(default_factory=dict)  # traversals per VN
    latency: SampleStats = field(default_factory=SampleStats)
    network_latency: SampleStats = field(default_factory=SampleStats)
    hops: RunningStats = field(default_factory=RunningStats)
    transactions_completed: int = 0
    # Runtime fault injection (repro.faults). Kept out of as_dict() so the
    # fault-free experiment artefacts and their golden snapshots are
    # untouched; the fault runner reports them explicitly.
    faults_applied: int = 0  # fault events that took effect
    faults_revived: int = 0  # transient faults that healed
    packets_lost: int = 0  # dropped by a fault (wire, router, no route)
    packets_retransmitted: int = 0  # re-offered at the source NI
    packets_unroutable: int = 0  # swallowed at injection: dst unreachable/dead
    drain_recomputes: int = 0  # online drain-path reconstructions

    def throughput(self, num_nodes: int) -> float:
        """Received packets per node per cycle over the measured window."""
        if self.measured_cycles == 0 or num_nodes == 0:
            return 0.0
        return self.packets_ejected_measured / (num_nodes * self.measured_cycles)

    @property
    def avg_latency(self) -> float:
        return self.latency.mean

    @property
    def p99_latency(self) -> float:
        return self.latency.percentile(99.0)

    def as_dict(self) -> Dict[str, float]:
        """Flatten headline metrics for report tables."""
        return {
            "packets_injected": self.packets_injected,
            "packets_ejected": self.packets_ejected,
            "avg_latency": self.avg_latency,
            "avg_hops": self.hops.mean,
            "misroutes": self.misroutes,
            "drain_windows": self.drain_windows,
            "deadlock_events": self.deadlock_events,
            "probes_sent": self.probes_sent,
            "cycles": self.cycles,
        }
