"""Core: configuration, metrics, RNG discipline and the simulation facade."""

from .configio import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from .config import (
    DrainConfig,
    NetworkConfig,
    ProtocolConfig,
    Scheme,
    SimConfig,
    SpinConfig,
    drain_default,
)
from .metrics import NetworkStats, RunningStats, SampleStats, percentile
from .simulator import DeadlockWatchdog, IdealResolver, Simulation

__all__ = [
    "Scheme",
    "SimConfig",
    "NetworkConfig",
    "DrainConfig",
    "SpinConfig",
    "ProtocolConfig",
    "drain_default",
    "NetworkStats",
    "RunningStats",
    "SampleStats",
    "percentile",
    "config_to_dict",
    "config_from_dict",
    "save_config",
    "load_config",
    "Simulation",
    "IdealResolver",
    "DeadlockWatchdog",
]
