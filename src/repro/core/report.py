"""Human-readable run reports (gem5 stats.txt flavour).

``run_report(sim)`` renders everything a reader needs to interpret one
finished simulation: the configuration, headline metrics, drain/SPIN
activity, latency distribution and the per-router load heat map. Used by
``repro-drain run --report`` and handy in notebooks and bug reports.
"""

from __future__ import annotations

from typing import List

from ..viz import render_heat, render_histogram
from .configio import config_to_dict
from .simulator import Simulation

__all__ = ["run_report"]


def _section(title: str) -> List[str]:
    return ["", title, "-" * len(title)]


def run_report(sim: Simulation, histogram_bins: int = 10) -> str:
    """Render a full text report of a finished simulation."""
    stats = sim.stats
    lines: List[str] = [f"run report: {sim.topology.name}"]

    lines += _section("configuration")
    flat = config_to_dict(sim.config)
    lines.append(f"scheme            : {flat['scheme']}")
    net = flat["network"]
    lines.append(
        f"network           : VN={net['num_vns']} VC/VN={net['vcs_per_vn']} "
        f"packet={net['packet_size_flits']} flit(s)"
    )
    lines.append(
        f"drain             : epoch={flat['drain']['epoch']} "
        f"pre={flat['drain']['pre_drain_window']} "
        f"window={flat['drain']['drain_window']} "
        f"full-period={flat['drain']['full_drain_period']}"
    )
    lines.append(f"flow control      : {sim.flow_control}")
    lines.append(f"seed              : {flat['seed']}")

    lines += _section("traffic")
    lines.append(f"cycles            : {stats.cycles} "
                 f"(measured {stats.measured_cycles})")
    lines.append(f"packets injected  : {stats.packets_injected}")
    lines.append(f"packets delivered : {stats.packets_ejected}")
    lines.append(
        f"throughput        : {stats.throughput(sim.index.num_nodes):.4f} "
        f"packets/node/cycle"
    )

    lines += _section("latency")
    if stats.latency.count:
        lines.append(f"average           : {stats.avg_latency:.2f} cycles")
        lines.append(f"p99               : {stats.p99_latency:.2f} cycles")
        lines.append(f"min / max         : {stats.latency.min:.0f} / "
                     f"{stats.latency.max:.0f}")
        lines.append(f"average hops      : {stats.hops.mean:.2f}")
        lines.append("")
        lines.append(render_histogram(stats.latency.samples,
                                      bins=histogram_bins,
                                      title="latency histogram (cycles)"))
    else:
        lines.append("(no measured packets)")

    lines += _section("deadlock handling")
    lines.append(f"misroutes         : {stats.misroutes}")
    lines.append(f"drain windows     : {stats.drain_windows} "
                 f"(full drains: {stats.full_drains}, "
                 f"drained moves: {stats.drained_packets})")
    if sim.drain_controller is not None:
        lines.append(
            f"pre-drain stretch : "
            f"{sim.drain_controller.pre_drain_extensions} cycles"
        )
    lines.append(f"deadlock events   : {stats.deadlock_events}")
    lines.append(f"probes sent       : {stats.probes_sent}")
    lines.append(f"spins performed   : {stats.spins_performed}")
    if sim.bubble_controller is not None:
        lines.append(
            f"bubble activations: {sim.bubble_controller.activations}"
        )

    if (
        sim.topology.coordinates is not None
        and hasattr(sim.fabric, "router_load")
    ):
        load = sim.fabric.router_load()
        if any(load.values()):
            lines += _section("router load (flits/cycle, dark = hot)")
            lines.append(render_heat(load, sim.topology))

    return "\n".join(lines)
