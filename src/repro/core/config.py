"""Configuration dataclasses for the simulator and the deadlock schemes.

The defaults mirror Table II of the paper: virtual cut-through with a single
packet per VC, 1-cycle routers, 2 VCs per virtual network, 3 virtual
networks for the proactive/reactive baselines and 1 for DRAIN, and a 64K
cycle drain epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

__all__ = [
    "Scheme",
    "NetworkConfig",
    "DrainConfig",
    "SpinConfig",
    "ProtocolConfig",
    "PfcConfig",
    "SimConfig",
    "FLOW_CONTROL_MODES",
]

#: Fabric flow-control modes: "credit" is the paper's credit-based VCT
#: fabric; "pause_resume" is the PFC-style lossless-Ethernet model
#: (per-(port,vn) XOFF/XON with hysteresis thresholds and headroom).
FLOW_CONTROL_MODES = ("credit", "pause_resume")


class Scheme(str, Enum):
    """Deadlock-freedom scheme under evaluation.

    - ``ESCAPE_VC``: proactive baseline — fully adaptive non-escape VCs plus
      one escape VC per VN routed with a restricted (deadlock-free)
      algorithm (DOR on a fault-free mesh, up*/down* otherwise).
    - ``SPIN``: reactive baseline — fully adaptive everywhere; timeout
      probes detect a deadlock cycle, then a coordinated spin moves it.
    - ``DRAIN``: the paper's subactive scheme — fully adaptive everywhere;
      escape VCs are periodically drained along a precomputed drain path.
    - ``NONE``: no deadlock handling at all (used for the Figure 3
      deadlock-likelihood study).
    - ``IDEAL``: oracle — deadlocks are resolved instantly at zero cost
      (the "ideal fully adaptive" upper bound of Figure 5).
    - ``UPDOWN``: all packets restricted to up*/down* routes (the
      turn-restriction baseline of Figure 5).
    - ``STATIC_BUBBLE``: reactive related-work baseline [7] — timeout
      detection plus one normally-off extra buffer per router for local
      recovery (no coordinated movement).
    """

    ESCAPE_VC = "escape_vc"
    SPIN = "spin"
    STATIC_BUBBLE = "static_bubble"
    DRAIN = "drain"
    NONE = "none"
    IDEAL = "ideal"
    UPDOWN = "updown"


@dataclass(frozen=True)
class NetworkConfig:
    """Structural parameters of the network (Table II)."""

    num_vns: int = 3  # virtual networks (one per message class)
    vcs_per_vn: int = 2  # VCs within each virtual network
    router_latency: int = 1  # cycles per router traversal
    link_latency: int = 1  # cycles per link traversal
    link_bandwidth_bits: int = 128  # bits per cycle (Table II)
    packet_size_bits: int = 128  # single-flit packets under VCT
    #: Link-serialisation length of a packet in flits. 1 (the evaluated
    #: Table II configuration: 128-bit packets on 128-bit links) transfers
    #: a packet in one cycle; larger values keep the link busy for that
    #: many cycles per packet — which is exactly why the pre-drain window
    #: must be "statically determined by the maximum packet size"
    #: (Section III-C2): in-flight transfers must complete before a drain.
    packet_size_flits: int = 1
    injection_queue_depth: int = 16  # NI source queue per message class
    ejection_queue_depth: int = 4  # NI sink queue per message class
    ejections_per_cycle: int = 1  # ejection-port bandwidth per router

    def __post_init__(self) -> None:
        if self.num_vns < 1:
            raise ValueError("need at least one virtual network")
        if self.vcs_per_vn < 1:
            raise ValueError("need at least one VC per virtual network")
        if self.ejection_queue_depth < 1:
            raise ValueError("ejection queues must hold at least one packet")
        if self.packet_size_flits < 1:
            raise ValueError("packets must be at least one flit long")

    @property
    def total_vcs(self) -> int:
        return self.num_vns * self.vcs_per_vn


@dataclass(frozen=True)
class DrainConfig:
    """Parameters of the DRAIN controller (Section III-C)."""

    epoch: int = 64 * 1024  # cycles between drain windows
    pre_drain_window: int = 5  # credit-freeze cycles before each drain
    drain_window: int = 5  # cycles reserved for the one-hop drain
    full_drain_period: int = 1000  # full drain once every N drain windows
    hops_per_drain: int = 1  # paper footnote: >1 always performs worse
    #: Strict paper semantics: once a packet enters an escape VC it may
    #: never move to a non-escape VC (Section III-A, "Draining Only Escape
    #: VCs"). In this simulator's single-packet-per-VC fabric that
    #: stickiness adds head-of-line blocking the paper's system does not
    #: exhibit (DRAIN matches SPIN's throughput there, Figure 10), so the
    #: default is the relaxed variant: deadlock freedom is unaffected —
    #: every drain still rotates the escape VCs, escape packets still
    #: eventually pass their destination and eject, and freed escape VCs
    #: remain reachable by any blocked packet. The strict variant is kept
    #: for the paper-semantics ablation (benchmarks/test_ablations.py).
    escape_sticky: bool = False

    def __post_init__(self) -> None:
        if self.epoch < 1:
            raise ValueError("epoch must be positive")
        if self.pre_drain_window < 0 or self.drain_window < 1:
            raise ValueError("invalid drain window lengths")
        if self.full_drain_period < 1:
            raise ValueError("full_drain_period must be positive")
        if self.hops_per_drain < 1:
            raise ValueError("must drain at least one hop")


@dataclass(frozen=True)
class SpinConfig:
    """Parameters of the SPIN baseline (Section II-C / [5])."""

    timeout: int = 1024  # blocked-head-packet cycles before probing
    probe_hop_latency: int = 1  # cycles charged per probe hop
    spin_interval: int = 64  # min cycles between spins of the same cycle

    def __post_init__(self) -> None:
        if self.timeout < 1:
            raise ValueError("timeout must be positive")


@dataclass(frozen=True)
class ProtocolConfig:
    """Parameters of the coherence-protocol traffic model (Ruby stand-in)."""

    mshrs_per_node: int = 8  # bounds in-flight transactions per node
    forward_probability: float = 0.4  # REQ that needs a 3-hop fwd chain
    directory_latency: int = 2  # cycles to process a request
    cache_latency: int = 1  # cycles to process a forward

    def __post_init__(self) -> None:
        if self.mshrs_per_node < 1:
            raise ValueError("need at least one MSHR per node")
        if not 0.0 <= self.forward_probability <= 1.0:
            raise ValueError("forward_probability must be a probability")


@dataclass(frozen=True)
class PfcConfig:
    """Parameters of the PFC pause/resume flow-control mode.

    A buffer *row* is the ``vcs_per_vn`` VC slots of one (link port, VN)
    pair.  A row asserts XOFF once its occupancy reaches
    ``pause_threshold`` and releases it (XON) once occupancy falls back
    to ``resume_threshold`` — strict hysteresis requires
    ``resume_threshold < pause_threshold``.  ``headroom`` is the slot
    margin that must remain above the pause threshold so in-flight
    packets granted before the pause took effect still land losslessly:
    ``pause_threshold + headroom`` may not exceed the row depth
    (``vcs_per_vn``), which :class:`SimConfig` enforces.
    """

    pause_threshold: int = 1
    resume_threshold: int = 0
    headroom: int = 1

    def __post_init__(self) -> None:
        if self.pause_threshold < 1:
            raise ValueError("pfc pause_threshold must be at least 1")
        if self.resume_threshold < 0:
            raise ValueError("pfc resume_threshold must be non-negative")
        if self.resume_threshold >= self.pause_threshold:
            raise ValueError(
                f"pfc resume_threshold ({self.resume_threshold}) must be "
                f"strictly below pause_threshold ({self.pause_threshold})"
            )
        if self.headroom < 0:
            raise ValueError("pfc headroom must be non-negative")

    def feasibility_error(self, vcs_per_vn: int) -> Optional[str]:
        """Why this config cannot stay lossless at *vcs_per_vn* row depth.

        Returns ``None`` when the thresholds fit the row, otherwise the
        exact message every enforcement point (``SimConfig``, the
        pause-resume fabric, the static certifier, the CLI) reports, so a
        rejected configuration reads identically everywhere.
        """
        if self.headroom > vcs_per_vn:
            return (
                f"pfc headroom ({self.headroom}) exceeds the buffer "
                f"depth ({vcs_per_vn} VCs per VN)"
            )
        if self.pause_threshold + self.headroom > vcs_per_vn:
            return (
                f"pfc pause_threshold ({self.pause_threshold}) + "
                f"headroom ({self.headroom}) exceeds the buffer "
                f"depth ({vcs_per_vn} VCs per VN); pausing would fire too "
                "late to stay lossless"
            )
        return None


@dataclass(frozen=True)
class SimConfig:
    """Complete configuration of one simulation run."""

    scheme: Scheme = Scheme.DRAIN
    network: NetworkConfig = field(default_factory=NetworkConfig)
    drain: DrainConfig = field(default_factory=DrainConfig)
    spin: SpinConfig = field(default_factory=SpinConfig)
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    pfc: PfcConfig = field(default_factory=PfcConfig)
    #: Fabric flow control: "credit" (default; the reference semantics
    #: every golden snapshot is pinned to) or "pause_resume" (the PFC
    #: lossless mode, simulated by :class:`repro.network.PauseResumeFabric`).
    flow_control: str = "credit"
    seed: int = 1
    deadlock_check_interval: int = 128  # oracle cadence (measurement only)
    deadlock_grace: int = 64  # min blocked cycles before oracle counts it
    #: Movement-kernel selection: "auto" picks the vectorized engine where
    #: its support conditions hold and silently falls back to the scalar
    #: path otherwise (the reason lands on ``Fabric.engine_fallback_reason``);
    #: "scalar" forces the active-set kernel; "vectorized" requests the
    #: batched kernel explicitly (still subject to the same fallback). All
    #: engines are bit-identical — this knob never changes results.
    engine: str = "auto"
    #: Cross-trial lockstep batching (the sweep harness's scheduling knob):
    #: "off" runs every trial solo, "auto" groups compatible specs into
    #: batches of :data:`repro.harness.pool.BATCH_AUTO_SIZE` whenever a
    #: group has at least four members, and a positive integer string
    #: (e.g. "8") forces that batch size. Like ``engine`` this never
    #: changes results — batched trials are bit-identical to solo runs —
    #: and it is deliberately EXCLUDED from the serialised config so
    #: batched and solo runs share one cache identity.
    batch: str = "off"

    def __post_init__(self) -> None:
        if self.engine not in ("auto", "scalar", "vectorized"):
            raise ValueError(
                f"unknown engine {self.engine!r}: "
                "expected 'auto', 'scalar' or 'vectorized'"
            )
        if self.batch not in ("off", "auto"):
            try:
                size = int(self.batch)
            except (TypeError, ValueError):
                size = 0
            if size < 2:
                raise ValueError(
                    f"unknown batch {self.batch!r}: expected 'off', 'auto' "
                    "or an integer batch size of at least 2"
                )
        if self.flow_control not in FLOW_CONTROL_MODES:
            raise ValueError(
                f"unknown flow_control {self.flow_control!r}: "
                "expected 'credit' or 'pause_resume'"
            )
        if self.flow_control == "pause_resume":
            err = self.pfc.feasibility_error(self.network.vcs_per_vn)
            if err is not None:
                raise ValueError(err)

    def with_scheme(self, scheme: Scheme) -> "SimConfig":
        return replace(self, scheme=scheme)

    def with_seed(self, seed: int) -> "SimConfig":
        return replace(self, seed=seed)


def drain_default(epoch: Optional[int] = None, **kwargs) -> SimConfig:
    """The paper's default DRAIN configuration: VN-1, VC-2, 64K epoch."""
    drain = DrainConfig() if epoch is None else DrainConfig(epoch=epoch)
    return SimConfig(
        scheme=Scheme.DRAIN,
        network=NetworkConfig(num_vns=1, vcs_per_vn=2),
        drain=drain,
        **kwargs,
    )
