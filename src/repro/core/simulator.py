"""Top-level simulation facade: wire a topology, a scheme and a traffic
source into a runnable cycle-level simulation.

This is the main public entry point of the library::

    from repro import Simulation, SimConfig, Scheme, make_mesh
    from repro.traffic import SyntheticTraffic, UniformRandom
    import random

    topo = make_mesh(8, 8)
    config = SimConfig(scheme=Scheme.DRAIN)
    traffic = SyntheticTraffic(UniformRandom(64, 8), 0.05, random.Random(1))
    sim = Simulation(topo, config, traffic)
    stats = sim.run(cycles=10_000, warmup=2_000)
"""

from __future__ import annotations

from typing import Optional

from ..drain.controller import DrainController
from ..drain.path import DrainPath
from ..network.deadlock import (
    WaitForGraph,
    deadlock_cycle_payload,
    extract_cycle,
    find_deadlocked_slots,
    rotate_cycle,
)
from ..network.fabric import Fabric
from ..network.index import DenseCandidateTables, FabricIndex
from ..network.spin import SpinController
from ..network.staticbubble import StaticBubbleController
from ..routing.adaptive import AdaptiveMinimalRouting
from ..routing.dor import DimensionOrderRouting
from ..routing.updown import UpDownRouting
from ..structcache import parts_for
from ..topology.graph import Link, Topology
from . import rng as rng_mod
from .config import Scheme, SimConfig
from .metrics import NetworkStats

__all__ = ["Simulation", "IdealResolver", "DeadlockWatchdog"]


class IdealResolver:
    """Oracle deadlock resolution at zero cost (Figure 5's ideal baseline).

    Periodically finds all deadlocked packets and rotates their cycles
    until none remain — instantly, without freezing the network or
    charging probe latency. No real hardware can do this; it upper-bounds
    what fully adaptive routing could achieve.
    """

    def __init__(self, fabric: Fabric, check_interval: int = 2) -> None:
        self.fabric = fabric
        self.check_interval = max(1, check_interval)

    def next_event_cycle(self, now: int) -> int:
        """Next oracle tick (the conservative event-horizon clamp).

        With the default 2-cycle interval this effectively disables
        fast-forward for the IDEAL scheme — an accepted cost: the oracle
        is a measurement bound, not a performance target.
        """
        interval = self.check_interval
        rem = now % interval
        return now if rem == 0 else now + interval - rem

    def step(self) -> None:
        fabric = self.fabric
        if fabric.cycle % self.check_interval:
            return
        # Resolve aggressively: the bound must never be deadlock-limited,
        # even deep past saturation. Each pass rotates one resource cycle;
        # a rotation permutes the occupants of exactly the rotated slots,
        # so the wait-for graph is built once and only those slots are
        # re-derived between passes (dense mode keeps the full rebuild as
        # the parity reference).
        graph: Optional[WaitForGraph] = None
        for _ in range(256):  # safety bound
            if graph is None or getattr(fabric, "dense", False):
                graph = WaitForGraph(fabric)
            deadlocked = graph.deadlocked()
            if not deadlocked:
                return
            cycle = extract_cycle(fabric, deadlocked, graph=graph)
            if cycle is None:
                return
            fabric.stats.deadlock_events += 1
            rotate_cycle(fabric, cycle, forced_kind="ideal")
            graph.refresh_slots(cycle)


class DeadlockWatchdog:
    """Measurement-only deadlock detector for the ``NONE`` scheme.

    Used by the Figure 3 deadlock-likelihood study: when the network makes
    no progress for a grace period, the exact OR-model oracle is consulted;
    a non-empty deadlocked set marks the run as deadlocked.
    """

    def __init__(self, fabric: Fabric, check_interval: int, grace: int) -> None:
        self.fabric = fabric
        self.check_interval = max(1, check_interval)
        self.grace = grace
        self.deadlocked = False
        #: Concrete minimal deadlock cycle (``deadlock_cycle_payload``
        #: shape) captured at detection time; ``None`` until then and on
        #: the wormhole fabric (no exact slot oracle there).
        self.cycle_payload = None

    def next_event_cycle(self, now: int) -> int:
        """Next check tick: the watchdog never sleeps past one.

        A quiescent network cannot deadlock, so the tick is provably a
        no-op under the fast-forward's entry condition — but clamping to
        it keeps the halt-on-deadlock contract ("checked every
        ``check_interval`` cycles") independent of that reasoning.
        """
        interval = self.check_interval
        rem = now % interval
        return now if rem == 0 else now + interval - rem

    def step(self) -> None:
        fabric = self.fabric
        if self.deadlocked or fabric.cycle % self.check_interval:
            return
        occupancy = getattr(fabric, "packets_in_network", None)
        if occupancy is None:
            occupancy = fabric.count_flits()  # wormhole fabric
        if occupancy == 0:
            return
        if fabric.cycle - fabric.last_progress_cycle < self.grace:
            return
        if hasattr(fabric, "occupied_slots"):
            stuck = find_deadlocked_slots(fabric, assume_ejection_drains=False)
            if not stuck:
                return
            fabric.stats.deadlocks_detected += len(stuck)
            self.cycle_payload = deadlock_cycle_payload(fabric, stuck)
        # Wormhole fabric: persistent zero progress with flits buffered is
        # the deadlock signal (no exact oracle over flit FIFOs).
        self.deadlocked = True
        fabric.stats.deadlock_events += 1


class Simulation:
    """A fully wired simulation of one (topology, scheme, traffic) triple."""

    def __init__(
        self,
        topology: Topology,
        config: SimConfig,
        traffic,
        drain_path: Optional[DrainPath] = None,
        halt_on_deadlock: bool = False,
        flow_control: str = "vct",
        flits_per_packet: int = 4,
        fault_schedule=None,
        fault_policy: str = "drop_retransmit",
        fault_curve_window: int = 0,
        fault_max_circuits: int = 512,
        pause_storm=None,
        degradation_ladder: bool = False,
        dense: bool = False,
        engine: Optional[str] = None,
        shared=None,
    ) -> None:
        if flow_control not in ("vct", "wormhole"):
            raise ValueError("flow_control must be 'vct' or 'wormhole'")
        if fault_schedule is not None and flow_control == "wormhole":
            raise ValueError(
                "runtime fault injection models the virtual cut-through "
                "fabric only (no wormhole fault hooks)"
            )
        if config.flow_control == "pause_resume" and flow_control != "vct":
            raise ValueError(
                "pause/resume (PFC) flow control models the virtual "
                "cut-through fabric only"
            )
        if pause_storm is not None and config.flow_control != "pause_resume":
            raise ValueError(
                "pause storms need a pause/resume fabric: set "
                "flow_control='pause_resume' in the SimConfig"
            )
        self.topology = topology
        self.config = config
        self.traffic = traffic
        self.halt_on_deadlock = halt_on_deadlock
        self.flow_control = flow_control
        scheme = config.scheme
        # Cross-trial shared construction (repro.network.batched.SharedParts):
        # batch members of one group reuse the donor's index, routing and
        # drain path instead of rebuilding them. Sound only while nothing
        # can mutate the shared state mid-run — runtime faults rewrite the
        # index's distances and the installed drain paths, so fault-bearing
        # configurations always build private parts.
        adopt = (
            shared is not None
            and shared.topology is topology
            and shared.scheme is scheme
            and fault_schedule is None
            and pause_storm is None
            and not degradation_ladder
        )
        self.index = shared.index if adopt else FabricIndex(topology)
        # Compiled-structure store warm path (repro.structcache): boot
        # artefacts for this (topology, config-sans-seed) pair, or None
        # when the store is inactive. Sound even for fault-bearing runs:
        # the artefacts describe the boot (epoch 0) state, and every
        # fault reconfiguration rebuilds tables from the live index.
        parts = None if adopt else parts_for(topology, config)
        self.stats = NetworkStats()
        if flow_control == "wormhole" and scheme not in (
            Scheme.DRAIN, Scheme.NONE
        ):
            raise ValueError(
                "the wormhole fabric models the DRAIN and NONE schemes only "
                "(the paper evaluates the baselines under virtual cut-through)"
            )

        # Main routing function (Table II: fully adaptive random everywhere
        # except the pure up*/down* baseline).
        if adopt:
            routing = shared.routing
        elif scheme is Scheme.UPDOWN:
            # The classic deterministic variant: this is the baseline whose
            # cost Figure 5 quantifies.
            routing = UpDownRouting(self.index, deterministic=True)
        elif parts is not None and parts.routing is not None:
            routing = AdaptiveMinimalRouting(
                self.index,
                tables=DenseCandidateTables.from_arrays(
                    self.index, *parts.routing
                ),
            )
        else:
            routing = AdaptiveMinimalRouting(self.index)

        escape_mode = None
        escape_routing = None
        if scheme is Scheme.DRAIN:
            escape_mode = "drain"
            if adopt and drain_path is None:
                drain_path = shared.drain_path
            elif (
                drain_path is None
                and parts is not None
                and parts.drain_links is not None
            ):
                drain_path = DrainPath(
                    topology,
                    [Link(src, dst) for src, dst in parts.drain_links],
                )
        elif scheme is Scheme.ESCAPE_VC:
            escape_mode = "escape_vc"
            if adopt:
                escape_routing = shared.escape_routing
            else:
                # DOR on the fault-free mesh, up*/down* on irregular
                # topologies (Section V-B's configuration).
                try:
                    escape_routing = DimensionOrderRouting(self.index)
                except ValueError:
                    escape_routing = UpDownRouting(self.index)

        if flow_control == "wormhole":
            from ..network.wormhole import WormholeFabric

            self.fabric = WormholeFabric(
                self.index,
                config,
                routing,
                escape_mode=escape_mode,
                flits_per_packet=flits_per_packet,
                stats=self.stats,
                rng=rng_mod.spawn(config.seed, "fabric"),
                dense=dense,
            )
            # The wormhole fabric is a standalone scalar pipeline; the
            # engine knob does not apply (class attrs report that).
        else:
            if config.flow_control == "pause_resume":
                from ..network.pause import PauseResumeFabric

                fabric_cls = PauseResumeFabric
            else:
                fabric_cls = Fabric
            self.fabric = fabric_cls(
                self.index,
                config,
                routing,
                escape_mode=escape_mode,
                escape_routing=escape_routing,
                stats=self.stats,
                rng=rng_mod.spawn(config.seed, "fabric"),
                dense=dense,
                engine=engine,
            )

        self.drain_controller: Optional[DrainController] = None
        self.spin_controller: Optional[SpinController] = None
        self.bubble_controller: Optional[StaticBubbleController] = None
        self.ideal_resolver: Optional[IdealResolver] = None
        self.watchdog: Optional[DeadlockWatchdog] = None

        if scheme is Scheme.DRAIN:
            self.drain_controller = DrainController(
                self.fabric, config.drain, path=drain_path,
                tables_from=shared.drain_ctrl if adopt else None,
            )
        elif scheme is Scheme.SPIN:
            self.spin_controller = SpinController(
                self.fabric, config.spin, check_interval=config.deadlock_check_interval
            )
        elif scheme is Scheme.STATIC_BUBBLE:
            self.bubble_controller = StaticBubbleController(
                self.fabric, config.spin,
                check_interval=config.deadlock_check_interval,
            )
        elif scheme is Scheme.IDEAL:
            self.ideal_resolver = IdealResolver(self.fabric)
        if scheme in (Scheme.NONE, Scheme.SPIN) or halt_on_deadlock:
            self.watchdog = DeadlockWatchdog(
                self.fabric,
                config.deadlock_check_interval,
                config.deadlock_grace,
            )

        self.degradation_ladder = None
        if degradation_ladder:
            if self.drain_controller is None:
                raise ValueError(
                    "the degradation ladder escalates through forced drains: "
                    "it needs scheme=DRAIN"
                )
            from ..drain.ladder import DegradationLadder

            self.degradation_ladder = DegradationLadder(
                self.fabric,
                self.drain_controller,
                check_interval=config.deadlock_check_interval,
                grace=config.deadlock_grace,
            )

        self.fault_injector = None
        if fault_schedule is not None or pause_storm is not None:
            from ..faults.injector import FaultInjector

            self.fault_injector = FaultInjector(
                self,
                fault_schedule,
                policy=fault_policy,
                curve_window=fault_curve_window,
                max_circuits=fault_max_circuits,
                storm=pause_storm,
            )

        #: Reference mode: plain per-cycle stepping, no fast-forward.
        self.dense = bool(dense)
        #: Event-horizon hooks — every wired side component's
        #: ``next_event_cycle``; :meth:`_event_horizon` takes their min.
        self._horizon_hooks = [
            component.next_event_cycle
            for component in (
                self.fault_injector,
                self.degradation_ladder,
                self.drain_controller,
                self.spin_controller,
                self.bubble_controller,
                self.ideal_resolver,
                self.watchdog,
            )
            if component is not None
        ]
        #: Fast-forward telemetry (not part of NetworkStats — outputs stay
        #: bit-identical to dense runs): spans entered and cycles covered.
        self.ff_spans = 0
        self.ff_cycles = 0

    # ------------------------------------------------------------------
    @property
    def deadlocked(self) -> bool:
        """True when the measurement watchdog has flagged a deadlock."""
        return self.watchdog is not None and self.watchdog.deadlocked

    def step(self) -> None:
        """Advance the whole system by one cycle."""
        fabric = self.fabric
        if self.fault_injector is not None:
            # Faults strike at the cycle boundary, before traffic or any
            # controller sees the cycle, so all of them observe a
            # consistent post-fault network.
            self.fault_injector.step()
        self.traffic.generate(fabric, fabric.cycle)
        if self.degradation_ladder is not None:
            # Before the drain controller, so a forced drain collapses the
            # countdown and the freeze fires this very cycle.
            self.degradation_ladder.step()
        if self.drain_controller is not None:
            self.drain_controller.step()
        if self.spin_controller is not None:
            self.spin_controller.step()
        if self.bubble_controller is not None:
            self.bubble_controller.step()
        if self.ideal_resolver is not None:
            self.ideal_resolver.step()
        if self.watchdog is not None:
            self.watchdog.step()
        fabric.step()
        self.traffic.consume(fabric, fabric.cycle)

    def run(self, cycles: int, warmup: int = 0) -> NetworkStats:
        """Run for *cycles* cycles; statistics cover cycles >= *warmup*.

        Stops early when the traffic source reports completion (closed-loop
        workloads) or — with ``halt_on_deadlock`` — when the watchdog fires.

        Unless ``dense=True``, quiescent stretches are fast-forwarded: when
        nothing is buffered, queued or in flight anywhere, the run computes
        the event horizon (the earliest cycle any side component may act)
        and skips to it — or to the first cycle the traffic source actually
        generates a packet — replaying only the per-cycle state a dense
        idle loop would touch. Outputs are bit-identical either way; the
        parity suite pins it.
        """
        if warmup >= cycles:
            raise ValueError("warmup must be shorter than the run")
        fabric = self.fabric
        traffic = self.traffic
        fabric.measure_from = fabric.cycle + warmup
        end = fabric.cycle + cycles
        fast = not self.dense
        while fabric.cycle < end:
            if fast and fabric.quiescent and not traffic.done():
                consumed = self._fast_forward(end)
                if consumed:
                    self.ff_spans += 1
                    self.ff_cycles += consumed
                    # Nothing is delivered inside a span (a packet injected
                    # on its final cycle is still in a VC), so done() and
                    # the watchdog cannot have flipped mid-span.
                    continue
            self.step()
            if traffic.done():
                break
            if self.halt_on_deadlock and self.deadlocked:
                break
        self.stats.measured_cycles = max(0, fabric.cycle - fabric.measure_from)
        return self.stats

    # ------------------------------------------------------------------
    # Event-horizon fast-forward (see DESIGN.md, "Performance architecture")
    # ------------------------------------------------------------------
    def _event_horizon(self, now: int, end: int) -> int:
        """Earliest cycle in (*now*, *end*] that must run densely.

        The min over the wired components' ``next_event_cycle`` hooks, the
        measurement boundary and the end of the run. Every cycle strictly
        before the returned value is guaranteed to be an observable no-op
        for every side component — provided the fabric stays quiescent,
        which the caller's span construction guarantees.
        """
        horizon = end
        measure_from = self.fabric.measure_from
        if now < measure_from < horizon:
            horizon = measure_from
        for hook in self._horizon_hooks:
            nxt = hook(now)
            if nxt is not None and nxt < horizon:
                horizon = nxt
        return horizon

    def _fast_forward(self, end: int) -> int:
        """Skip from a quiescent state; returns the cycles consumed (0 = run
        the current cycle densely instead).

        Two source shapes:

        - Bernoulli-style sources expose ``idle_generate``, which replays
          the exact per-cycle RNG draws up to the horizon and completes
          the first generating cycle's generate phase. All fully idle
          cycles are skipped in O(1); if a packet was created, the
          generating cycle's remaining phases run densely here (its
          controllers are provably no-ops — the cycle is strictly before
          the horizon — but they run anyway, keeping the cycle's phase
          order intact for anything they might legitimately do).
        - Trace/closed-gap sources expose ``next_event_cycle`` instead;
          the whole gap is skipped in O(1) and the arrival cycle runs
          densely via the main loop.
        """
        fabric = self.fabric
        traffic = self.traffic
        now = fabric.cycle
        horizon = self._event_horizon(now, end)
        budget = horizon - now
        if budget < 2:
            return 0
        idle_generate = getattr(traffic, "idle_generate", None)
        if idle_generate is None:
            next_arrival = getattr(traffic, "next_event_cycle", None)
            if next_arrival is None:
                return 0  # source without fast-forward support: stay dense
            arrival = next_arrival(now)
            span = budget if arrival is None else min(budget, arrival - now)
            if span <= 0:
                return 0
            fabric.skip_cycles(span)
            if self.drain_controller is not None:
                self.drain_controller.skip_cycles(span)
            return span

        consumed = idle_generate(fabric, now, budget)
        if consumed <= 0:
            return 0
        if fabric.quiescent:
            # Every consumed cycle was fully idle (any packet created was
            # swallowed as unroutable and left no trace in the fabric).
            fabric.skip_cycles(consumed)
            if self.drain_controller is not None:
                self.drain_controller.skip_cycles(consumed)
            return consumed
        # The final consumed cycle generated packets (they sit in NI
        # injection queues). Skip the idle prefix, then finish that cycle
        # densely: everything step() does after traffic.generate.
        prefix = consumed - 1
        if prefix:
            fabric.skip_cycles(prefix)
            if self.drain_controller is not None:
                self.drain_controller.skip_cycles(prefix)
        if self.fault_injector is not None:
            self.fault_injector.step()
        if self.degradation_ladder is not None:
            self.degradation_ladder.step()
        if self.drain_controller is not None:
            self.drain_controller.step()
        if self.spin_controller is not None:
            self.spin_controller.step()
        if self.bubble_controller is not None:
            self.bubble_controller.step()
        if self.ideal_resolver is not None:
            self.ideal_resolver.step()
        if self.watchdog is not None:
            self.watchdog.step()
        fabric.step()
        traffic.consume(fabric, fabric.cycle)
        return consumed

    def throughput(self) -> float:
        """Received packets/node/cycle over the measured window."""
        return self.stats.throughput(self.index.num_nodes)
