"""Top-level simulation facade: wire a topology, a scheme and a traffic
source into a runnable cycle-level simulation.

This is the main public entry point of the library::

    from repro import Simulation, SimConfig, Scheme, make_mesh
    from repro.traffic import SyntheticTraffic, UniformRandom
    import random

    topo = make_mesh(8, 8)
    config = SimConfig(scheme=Scheme.DRAIN)
    traffic = SyntheticTraffic(UniformRandom(64, 8), 0.05, random.Random(1))
    sim = Simulation(topo, config, traffic)
    stats = sim.run(cycles=10_000, warmup=2_000)
"""

from __future__ import annotations

from typing import Optional

from ..drain.controller import DrainController
from ..drain.path import DrainPath
from ..network.deadlock import (
    WaitForGraph,
    extract_cycle,
    find_deadlocked_slots,
    rotate_cycle,
)
from ..network.fabric import Fabric
from ..network.index import FabricIndex
from ..network.spin import SpinController
from ..network.staticbubble import StaticBubbleController
from ..routing.adaptive import AdaptiveMinimalRouting
from ..routing.dor import DimensionOrderRouting
from ..routing.updown import UpDownRouting
from ..topology.graph import Topology
from . import rng as rng_mod
from .config import Scheme, SimConfig
from .metrics import NetworkStats

__all__ = ["Simulation", "IdealResolver", "DeadlockWatchdog"]


class IdealResolver:
    """Oracle deadlock resolution at zero cost (Figure 5's ideal baseline).

    Periodically finds all deadlocked packets and rotates their cycles
    until none remain — instantly, without freezing the network or
    charging probe latency. No real hardware can do this; it upper-bounds
    what fully adaptive routing could achieve.
    """

    def __init__(self, fabric: Fabric, check_interval: int = 2) -> None:
        self.fabric = fabric
        self.check_interval = max(1, check_interval)

    def step(self) -> None:
        fabric = self.fabric
        if fabric.cycle % self.check_interval:
            return
        # Resolve aggressively: the bound must never be deadlock-limited,
        # even deep past saturation. Each pass rotates one resource cycle;
        # a rotation permutes the occupants of exactly the rotated slots,
        # so the wait-for graph is built once and only those slots are
        # re-derived between passes (dense mode keeps the full rebuild as
        # the parity reference).
        graph: Optional[WaitForGraph] = None
        for _ in range(256):  # safety bound
            if graph is None or getattr(fabric, "dense", False):
                graph = WaitForGraph(fabric)
            deadlocked = graph.deadlocked()
            if not deadlocked:
                return
            cycle = extract_cycle(fabric, deadlocked, graph=graph)
            if cycle is None:
                return
            fabric.stats.deadlock_events += 1
            rotate_cycle(fabric, cycle, forced_kind="ideal")
            graph.refresh_slots(cycle)


class DeadlockWatchdog:
    """Measurement-only deadlock detector for the ``NONE`` scheme.

    Used by the Figure 3 deadlock-likelihood study: when the network makes
    no progress for a grace period, the exact OR-model oracle is consulted;
    a non-empty deadlocked set marks the run as deadlocked.
    """

    def __init__(self, fabric: Fabric, check_interval: int, grace: int) -> None:
        self.fabric = fabric
        self.check_interval = max(1, check_interval)
        self.grace = grace
        self.deadlocked = False

    def step(self) -> None:
        fabric = self.fabric
        if self.deadlocked or fabric.cycle % self.check_interval:
            return
        occupancy = getattr(fabric, "packets_in_network", None)
        if occupancy is None:
            occupancy = fabric.count_flits()  # wormhole fabric
        if occupancy == 0:
            return
        if fabric.cycle - fabric.last_progress_cycle < self.grace:
            return
        if hasattr(fabric, "occupied_slots"):
            stuck = find_deadlocked_slots(fabric, assume_ejection_drains=False)
            if not stuck:
                return
            fabric.stats.deadlocks_detected += len(stuck)
        # Wormhole fabric: persistent zero progress with flits buffered is
        # the deadlock signal (no exact oracle over flit FIFOs).
        self.deadlocked = True
        fabric.stats.deadlock_events += 1


class Simulation:
    """A fully wired simulation of one (topology, scheme, traffic) triple."""

    def __init__(
        self,
        topology: Topology,
        config: SimConfig,
        traffic,
        drain_path: Optional[DrainPath] = None,
        halt_on_deadlock: bool = False,
        flow_control: str = "vct",
        flits_per_packet: int = 4,
        fault_schedule=None,
        fault_policy: str = "drop_retransmit",
        fault_curve_window: int = 0,
        fault_max_circuits: int = 512,
        dense: bool = False,
    ) -> None:
        if flow_control not in ("vct", "wormhole"):
            raise ValueError("flow_control must be 'vct' or 'wormhole'")
        if fault_schedule is not None and flow_control == "wormhole":
            raise ValueError(
                "runtime fault injection models the virtual cut-through "
                "fabric only (no wormhole fault hooks)"
            )
        self.topology = topology
        self.config = config
        self.traffic = traffic
        self.halt_on_deadlock = halt_on_deadlock
        self.flow_control = flow_control
        self.index = FabricIndex(topology)
        self.stats = NetworkStats()
        scheme = config.scheme
        if flow_control == "wormhole" and scheme not in (
            Scheme.DRAIN, Scheme.NONE
        ):
            raise ValueError(
                "the wormhole fabric models the DRAIN and NONE schemes only "
                "(the paper evaluates the baselines under virtual cut-through)"
            )

        # Main routing function (Table II: fully adaptive random everywhere
        # except the pure up*/down* baseline).
        if scheme is Scheme.UPDOWN:
            # The classic deterministic variant: this is the baseline whose
            # cost Figure 5 quantifies.
            routing = UpDownRouting(self.index, deterministic=True)
        else:
            routing = AdaptiveMinimalRouting(self.index)

        escape_mode = None
        escape_routing = None
        if scheme is Scheme.DRAIN:
            escape_mode = "drain"
        elif scheme is Scheme.ESCAPE_VC:
            escape_mode = "escape_vc"
            # DOR on the fault-free mesh, up*/down* on irregular topologies
            # (Section V-B's configuration).
            try:
                escape_routing = DimensionOrderRouting(self.index)
            except ValueError:
                escape_routing = UpDownRouting(self.index)

        if flow_control == "wormhole":
            from ..network.wormhole import WormholeFabric

            self.fabric = WormholeFabric(
                self.index,
                config,
                routing,
                escape_mode=escape_mode,
                flits_per_packet=flits_per_packet,
                stats=self.stats,
                rng=rng_mod.spawn(config.seed, "fabric"),
                dense=dense,
            )
        else:
            self.fabric = Fabric(
                self.index,
                config,
                routing,
                escape_mode=escape_mode,
                escape_routing=escape_routing,
                stats=self.stats,
                rng=rng_mod.spawn(config.seed, "fabric"),
                dense=dense,
            )

        self.drain_controller: Optional[DrainController] = None
        self.spin_controller: Optional[SpinController] = None
        self.bubble_controller: Optional[StaticBubbleController] = None
        self.ideal_resolver: Optional[IdealResolver] = None
        self.watchdog: Optional[DeadlockWatchdog] = None

        if scheme is Scheme.DRAIN:
            self.drain_controller = DrainController(
                self.fabric, config.drain, path=drain_path
            )
        elif scheme is Scheme.SPIN:
            self.spin_controller = SpinController(
                self.fabric, config.spin, check_interval=config.deadlock_check_interval
            )
        elif scheme is Scheme.STATIC_BUBBLE:
            self.bubble_controller = StaticBubbleController(
                self.fabric, config.spin,
                check_interval=config.deadlock_check_interval,
            )
        elif scheme is Scheme.IDEAL:
            self.ideal_resolver = IdealResolver(self.fabric)
        if scheme in (Scheme.NONE, Scheme.SPIN) or halt_on_deadlock:
            self.watchdog = DeadlockWatchdog(
                self.fabric,
                config.deadlock_check_interval,
                config.deadlock_grace,
            )

        self.fault_injector = None
        if fault_schedule is not None:
            from ..faults.injector import FaultInjector

            self.fault_injector = FaultInjector(
                self,
                fault_schedule,
                policy=fault_policy,
                curve_window=fault_curve_window,
                max_circuits=fault_max_circuits,
            )

    # ------------------------------------------------------------------
    @property
    def deadlocked(self) -> bool:
        """True when the measurement watchdog has flagged a deadlock."""
        return self.watchdog is not None and self.watchdog.deadlocked

    def step(self) -> None:
        """Advance the whole system by one cycle."""
        fabric = self.fabric
        if self.fault_injector is not None:
            # Faults strike at the cycle boundary, before traffic or any
            # controller sees the cycle, so all of them observe a
            # consistent post-fault network.
            self.fault_injector.step()
        self.traffic.generate(fabric, fabric.cycle)
        if self.drain_controller is not None:
            self.drain_controller.step()
        if self.spin_controller is not None:
            self.spin_controller.step()
        if self.bubble_controller is not None:
            self.bubble_controller.step()
        if self.ideal_resolver is not None:
            self.ideal_resolver.step()
        if self.watchdog is not None:
            self.watchdog.step()
        fabric.step()
        self.traffic.consume(fabric, fabric.cycle)

    def run(self, cycles: int, warmup: int = 0) -> NetworkStats:
        """Run for *cycles* cycles; statistics cover cycles >= *warmup*.

        Stops early when the traffic source reports completion (closed-loop
        workloads) or — with ``halt_on_deadlock`` — when the watchdog fires.
        """
        if warmup >= cycles:
            raise ValueError("warmup must be shorter than the run")
        fabric = self.fabric
        fabric.measure_from = fabric.cycle + warmup
        for _ in range(cycles):
            self.step()
            if self.traffic.done():
                break
            if self.halt_on_deadlock and self.deadlocked:
                break
        self.stats.measured_cycles = max(0, fabric.cycle - fabric.measure_from)
        return self.stats

    def throughput(self) -> float:
        """Received packets/node/cycle over the measured window."""
        return self.stats.throughput(self.index.num_nodes)
