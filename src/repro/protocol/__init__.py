"""Coherence-protocol traffic models (Ruby stand-ins): MESI and MOESI."""

from .coherence import CoherenceTraffic
from .moesi import MoesiTraffic

__all__ = ["CoherenceTraffic", "MoesiTraffic"]
