"""MOESI-style coherence traffic: six message classes (Section V-A).

The paper notes that while its MESI evaluation needs three virtual
networks, "other coherence protocols may require even more; e.g., MOESI
requires six virtual networks. In these cases, the area and power savings
of DRAIN would be even greater." This model realises that six-class
dependency structure so the claim is testable end-to-end:

- read/upgrade transactions:  ``REQ -> [FWD ->] RESP -> UNBLOCK``
  (the requester unblocks the directory after receiving its response —
  the directory entry stays busy until the UNBLOCK arrives);
- writeback transactions:     ``WB -> WB_ACK``
  (owned/modified lines written back to the home, which acknowledges).

Consumption rules (each creates the protocol dependency chain):

- REQ at home: needs injection space for FWD (3-hop) or RESP (2-hop);
- FWD at sharer: needs injection space for RESP;
- RESP at requester: needs injection space for UNBLOCK;
- WB at home: needs injection space for WB_ACK;
- WB_ACK, UNBLOCK: pure sinks.

With six virtual networks the chain can never close through the network;
on fewer shared VNs it can — and DRAIN removes it.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.config import ProtocolConfig
from ..network.fabric import Fabric
from ..router.packet import MessageClass, Packet

__all__ = ["MoesiTraffic"]


class MoesiTraffic:
    """Closed-loop MOESI-style transaction generator (6 message classes)."""

    def __init__(
        self,
        num_nodes: int,
        config: ProtocolConfig,
        issue_probability: float,
        rng: random.Random,
        total_transactions: Optional[int] = None,
        writeback_fraction: float = 0.3,
    ) -> None:
        if num_nodes < 3:
            raise ValueError("the 3-hop chain needs at least three nodes")
        if not 0.0 <= issue_probability <= 1.0:
            raise ValueError("issue_probability must be a probability")
        if not 0.0 <= writeback_fraction <= 1.0:
            raise ValueError("writeback_fraction must be a probability")
        self.num_nodes = num_nodes
        self.config = config
        self.issue_probability = issue_probability
        self.rng = rng
        self.total_transactions = total_transactions
        self.writeback_fraction = writeback_fraction
        self.outstanding: List[int] = [0] * num_nodes
        self.issued = 0
        self.completed = 0
        self._next_pid = 0
        self._busy_directories = 0  # entries awaiting UNBLOCK

    # ------------------------------------------------------------------
    def _pick_other(self, *exclude: int) -> int:
        while True:
            n = self.rng.randrange(self.num_nodes)
            if n not in exclude:
                return n

    def _packet(self, src: int, dst: int, cls: MessageClass, cycle: int) -> Packet:
        packet = Packet(self._next_pid, src, dst, cls, gen_cycle=cycle)
        self._next_pid += 1
        return packet

    # ------------------------------------------------------------------
    def generate(self, fabric: Fabric, cycle: int) -> None:
        rng = self.rng
        cfg = self.config
        for node in range(self.num_nodes):
            if self.outstanding[node] >= cfg.mshrs_per_node:
                continue
            if (
                self.total_transactions is not None
                and self.issued >= self.total_transactions
            ):
                return
            if rng.random() >= self.issue_probability:
                continue
            if rng.random() < self.writeback_fraction:
                cls = MessageClass.WB
            else:
                cls = MessageClass.REQ
            if fabric.injection_space(node, cls) <= 0:
                continue
            home = self._pick_other(node)
            packet = self._packet(node, home, cls, cycle)
            if cls is MessageClass.REQ:
                packet.needs_fwd = rng.random() < cfg.forward_probability
                if packet.needs_fwd:
                    packet.fwd_target = self._pick_other(node, home)
            if fabric.offer_packet(packet):
                self.outstanding[node] += 1
                self.issued += 1

    def consume(self, fabric: Fabric, cycle: int) -> None:
        for node in range(self.num_nodes):
            # Pure sinks first.
            unblock = fabric.peek_ejection(node, MessageClass.UNBLOCK)
            if unblock is not None:
                fabric.pop_ejection(node, MessageClass.UNBLOCK)
                self._busy_directories -= 1
                self.completed += 1
                fabric.stats.transactions_completed += 1

            wb_ack = fabric.peek_ejection(node, MessageClass.WB_ACK)
            if wb_ack is not None:
                fabric.pop_ejection(node, MessageClass.WB_ACK)
                self.outstanding[node] -= 1
                self.completed += 1
                fabric.stats.transactions_completed += 1

            # RESP at the requester: spawns the directory UNBLOCK.
            resp = fabric.peek_ejection(node, MessageClass.RESP)
            if resp is not None and fabric.injection_space(
                node, MessageClass.UNBLOCK
            ) > 0:
                fabric.pop_ejection(node, MessageClass.RESP)
                self.outstanding[node] -= 1
                # fwd_target carries the home directory to unblock.
                unblock_pkt = self._packet(
                    node, resp.fwd_target, MessageClass.UNBLOCK, cycle
                )
                if not fabric.offer_packet(unblock_pkt):
                    raise AssertionError("injection space vanished in-cycle")

            # REQ at the home directory.
            req = fabric.peek_ejection(node, MessageClass.REQ)
            if req is not None:
                if req.needs_fwd:
                    if fabric.injection_space(node, MessageClass.FWD) > 0:
                        fabric.pop_ejection(node, MessageClass.REQ)
                        self._busy_directories += 1
                        fwd = self._packet(
                            node, req.fwd_target, MessageClass.FWD, cycle
                        )
                        fwd.fwd_target = req.src
                        if not fabric.offer_packet(fwd):
                            raise AssertionError(
                                "injection space vanished in-cycle"
                            )
                elif fabric.injection_space(node, MessageClass.RESP) > 0:
                    fabric.pop_ejection(node, MessageClass.REQ)
                    self._busy_directories += 1
                    resp_pkt = self._packet(
                        node, req.src, MessageClass.RESP, cycle
                    )
                    resp_pkt.fwd_target = node  # home to unblock later
                    if not fabric.offer_packet(resp_pkt):
                        raise AssertionError("injection space vanished in-cycle")

            # FWD at the sharer: inject RESP to the original requester.
            fwd_msg = fabric.peek_ejection(node, MessageClass.FWD)
            if fwd_msg is not None and fabric.injection_space(
                node, MessageClass.RESP
            ) > 0:
                fabric.pop_ejection(node, MessageClass.FWD)
                resp_pkt = self._packet(
                    node, fwd_msg.fwd_target, MessageClass.RESP, cycle
                )
                resp_pkt.fwd_target = fwd_msg.src  # the home directory
                if not fabric.offer_packet(resp_pkt):
                    raise AssertionError("injection space vanished in-cycle")

            # WB at the home: acknowledge.
            wb = fabric.peek_ejection(node, MessageClass.WB)
            if wb is not None and fabric.injection_space(
                node, MessageClass.WB_ACK
            ) > 0:
                fabric.pop_ejection(node, MessageClass.WB)
                ack = self._packet(node, wb.src, MessageClass.WB_ACK, cycle)
                if not fabric.offer_packet(ack):
                    raise AssertionError("injection space vanished in-cycle")

    def done(self) -> bool:
        return (
            self.total_transactions is not None
            and self.completed >= self.total_transactions
        )

    def in_flight(self) -> int:
        return self.issued - self.completed
