"""MESI-flavoured coherence-transaction traffic (Ruby stand-in).

The paper runs full applications over gem5's Ruby MESI directory protocol.
What matters for deadlock behaviour is the *message-class dependency
chain*: consuming a request at the directory requires injecting a
dependent message (a forward/invalidation or a response), forwards require
injecting responses, and responses are a pure sink. With finite MSHRs and
finite per-class ejection queues, this is exactly the structure that
produces protocol-level deadlocks on a shared virtual network (Figure 2a)
and that virtual networks — or DRAIN — must break.

Transactions come in two shapes, chosen per request:

- 2-hop: ``REQ(src -> home)`` then ``RESP(home -> src)``;
- 3-hop: ``REQ(src -> home)``, ``FWD(home -> sharer)``,
  ``RESP(sharer -> src)`` — the invalidation/ownership-transfer chain.

The generator is closed-loop: each node issues a new transaction with a
per-cycle probability while it has a free MSHR, mirroring how a core's
outstanding misses are bounded (Section III-A's assumption that one
message class can never flood all network buffers).
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.config import ProtocolConfig
from ..network.fabric import Fabric
from ..router.packet import MessageClass, Packet

__all__ = ["CoherenceTraffic"]


class CoherenceTraffic:
    """Closed-loop directory-protocol transaction generator."""

    def __init__(
        self,
        num_nodes: int,
        config: ProtocolConfig,
        issue_probability: float,
        rng: random.Random,
        total_transactions: Optional[int] = None,
        locality: float = 0.0,
        mesh_width: Optional[int] = None,
    ) -> None:
        if num_nodes < 3:
            raise ValueError("the 3-hop chain needs at least three nodes")
        if not 0.0 <= issue_probability <= 1.0:
            raise ValueError("issue_probability must be a probability")
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be a probability")
        self.num_nodes = num_nodes
        self.config = config
        self.issue_probability = issue_probability
        self.rng = rng
        self.total_transactions = total_transactions
        self.locality = locality
        self.mesh_width = mesh_width
        self.outstanding: List[int] = [0] * num_nodes
        self.issued = 0
        self.completed = 0
        self._next_pid = 0
        self._next_txn = 0

    # ------------------------------------------------------------------
    def _pick_other(self, *exclude: int) -> int:
        while True:
            n = self.rng.randrange(self.num_nodes)
            if n not in exclude:
                return n

    def _pick_home(self, src: int) -> int:
        """Home directory for a new request; *locality* biases it nearby."""
        if self.locality > 0.0 and self.mesh_width and self.rng.random() < self.locality:
            width = self.mesh_width
            x, y = src % width, src // width
            neighbours = []
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = x + dx, y + dy
                if 0 <= nx < width and 0 <= ny * width + nx < self.num_nodes:
                    neighbours.append(ny * width + nx)
            neighbours = [n for n in neighbours if 0 <= n < self.num_nodes]
            if neighbours:
                return self.rng.choice(neighbours)
        return self._pick_other(src)

    def _make_packet(
        self, src: int, dst: int, msg_class: MessageClass, cycle: int
    ) -> Packet:
        packet = Packet(self._next_pid, src, dst, msg_class, gen_cycle=cycle)
        self._next_pid += 1
        return packet

    # ------------------------------------------------------------------
    # TrafficSource interface
    # ------------------------------------------------------------------
    def generate(self, fabric: Fabric, cycle: int) -> None:
        rng = self.rng
        cfg = self.config
        for node in range(self.num_nodes):
            if self.outstanding[node] >= cfg.mshrs_per_node:
                continue
            if self.total_transactions is not None and self.issued >= self.total_transactions:
                return
            if rng.random() >= self.issue_probability:
                continue
            if fabric.injection_space(node, MessageClass.REQ) <= 0:
                continue  # retried implicitly next cycle; MSHR not yet taken
            home = self._pick_home(node)
            req = self._make_packet(node, home, MessageClass.REQ, cycle)
            req.txn_id = self._next_txn
            self._next_txn += 1
            req.needs_fwd = rng.random() < cfg.forward_probability
            if req.needs_fwd:
                req.fwd_target = self._pick_other(node, home)
            if fabric.offer_packet(req):
                self.outstanding[node] += 1
                self.issued += 1

    def idle_generate(self, fabric: Fabric, cycle: int, budget: int) -> int:
        """Replay :meth:`generate` across up to *budget* known-idle cycles.

        During an idle span nothing is delivered, so ``outstanding`` and
        ``issued`` are frozen until the first issue attempt succeeds: the
        set of nodes that draw each cycle (free MSHR, quota not yet
        reached) is fixed and precomputable. The loop performs exactly the
        dense per-cycle draws — one ``rng.random()`` per eligible node —
        and completes the first cycle that issues via the dense logic
        (home/forward draws, NI offer, MSHR bookkeeping) before bailing.

        Returns the number of cycles consumed, each generate-complete.
        """
        rng = self.rng
        rand = rng.random
        p = self.issue_probability
        cfg = self.config
        total = self.total_transactions
        if total is not None and self.issued >= total:
            # Quota reached: generate() draws nothing — the span is free.
            return budget
        eligible = [
            node for node in range(self.num_nodes)
            if self.outstanding[node] < cfg.mshrs_per_node
        ]
        if not eligible:
            return budget
        consumed = 0
        while consumed < budget:
            now = cycle + consumed
            consumed += 1
            for i, node in enumerate(eligible):
                if rand() >= p:
                    continue
                # First hit: finish this cycle's issue — and the remaining
                # eligible nodes — with the dense logic (issued may reach
                # the quota mid-cycle, which stops further draws exactly
                # as generate()'s per-node quota check does).
                self._issue(fabric, node, now)
                for later in eligible[i + 1:]:
                    if total is not None and self.issued >= total:
                        break
                    if rand() < p:
                        self._issue(fabric, later, now)
                return consumed
        return consumed

    def _issue(self, fabric: Fabric, node: int, cycle: int) -> None:
        """One issue attempt past the Bernoulli draw (generate()'s body)."""
        rng = self.rng
        cfg = self.config
        if fabric.injection_space(node, MessageClass.REQ) <= 0:
            return
        home = self._pick_home(node)
        req = self._make_packet(node, home, MessageClass.REQ, cycle)
        req.txn_id = self._next_txn
        self._next_txn += 1
        req.needs_fwd = rng.random() < cfg.forward_probability
        if req.needs_fwd:
            req.fwd_target = self._pick_other(node, home)
        if fabric.offer_packet(req):
            self.outstanding[node] += 1
            self.issued += 1

    def consume(self, fabric: Fabric, cycle: int) -> None:
        """Per-cycle NI/directory/cache processing at every node.

        One message per class per node per cycle, and — crucially —
        consuming a REQ or FWD requires free injection space for the
        dependent message it spawns; otherwise it stays in its ejection
        queue and backpressures the network.
        """
        if not getattr(fabric, "ej_pending_total", 1):
            return  # nothing ejected anywhere this cycle
        ej_pending = getattr(fabric, "ej_pending", None)
        for node in range(self.num_nodes):
            if ej_pending is not None and not ej_pending[node]:
                continue
            # Responses: the sink class, always consumable.
            resp = fabric.peek_ejection(node, MessageClass.RESP)
            if resp is not None:
                fabric.pop_ejection(node, MessageClass.RESP)
                self.outstanding[node] -= 1
                self.completed += 1
                fabric.stats.transactions_completed += 1

            # Forwards: the cache must inject a RESP to the original
            # requester (carried in fwd_target).
            fwd = fabric.peek_ejection(node, MessageClass.FWD)
            if fwd is not None and fabric.injection_space(node, MessageClass.RESP) > 0:
                requester = fwd.fwd_target
                fabric.pop_ejection(node, MessageClass.FWD)
                resp_pkt = self._make_packet(node, requester, MessageClass.RESP, cycle)
                resp_pkt.txn_id = fwd.txn_id
                if not fabric.offer_packet(resp_pkt):
                    raise AssertionError("injection space vanished within a cycle")

            # Requests at the home directory.
            req = fabric.peek_ejection(node, MessageClass.REQ)
            if req is not None:
                if req.needs_fwd:
                    if fabric.injection_space(node, MessageClass.FWD) > 0:
                        fabric.pop_ejection(node, MessageClass.REQ)
                        fwd_pkt = self._make_packet(
                            node, req.fwd_target, MessageClass.FWD, cycle
                        )
                        fwd_pkt.txn_id = req.txn_id
                        fwd_pkt.fwd_target = req.src  # original requester
                        if not fabric.offer_packet(fwd_pkt):
                            raise AssertionError(
                                "injection space vanished within a cycle"
                            )
                else:
                    if fabric.injection_space(node, MessageClass.RESP) > 0:
                        fabric.pop_ejection(node, MessageClass.REQ)
                        resp_pkt = self._make_packet(
                            node, req.src, MessageClass.RESP, cycle
                        )
                        resp_pkt.txn_id = req.txn_id
                        if not fabric.offer_packet(resp_pkt):
                            raise AssertionError(
                                "injection space vanished within a cycle"
                            )

    def done(self) -> bool:
        return (
            self.total_transactions is not None
            and self.completed >= self.total_transactions
        )

    def in_flight(self) -> int:
        return self.issued - self.completed
