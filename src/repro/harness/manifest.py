"""Run manifests: a JSON audit trail next to every generated artefact.

A reproduction result is only as good as the record of how it was made.
Whenever the CLI regenerates an artefact it writes ``<name>.manifest.json``
alongside the rows, capturing:

- the git revision of the tree (dirty state flagged),
- the :class:`~repro.experiments.common.Scale` actually used,
- harness shape (worker count, cache hits/misses, cache location),
- one entry per trial: spec digest, runner, cached or executed, and the
  wall-clock seconds spent simulating it.

The manifest lets a reader answer "which seeds, which code, how long, how
much was reused from cache" without rerunning anything — and re-running
with the same manifest inputs reproduces the artefact bit for bit.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .pool import Harness

__all__ = ["RunManifest", "build_manifest", "write_manifest", "git_revision"]

MANIFEST_FORMAT = 1


def git_revision(repo_dir: Optional[Union[str, Path]] = None) -> str:
    """Short git revision of *repo_dir* (defaults to this package's repo).

    Appends ``-dirty`` when the working tree has local modifications;
    returns ``"unknown"`` outside a git checkout or without git installed.
    """
    cwd = Path(repo_dir) if repo_dir is not None else Path(__file__).resolve().parent
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if rev.returncode != 0:
            return "unknown"
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        dirty = "-dirty" if status.returncode == 0 and status.stdout.strip() else ""
        return rev.stdout.strip() + dirty
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@dataclass
class RunManifest:
    """Everything needed to audit (and exactly rerun) one artefact."""

    name: str
    created: str  # ISO-8601 UTC
    git_rev: str
    workers: int
    cache_dir: Optional[str]
    cache_hits: int
    cache_misses: int
    trials: List[Dict[str, Any]]
    scale: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Compiled-structure store counters (repro.structcache) of the parent
    #: process, or None when the store was inactive. ``compiles`` counts
    #: structures built from scratch this run — a warm rerun over an
    #: unchanged configuration must report 0 (asserted in CI).
    struct_cache: Optional[Dict[str, Any]] = None
    format: int = MANIFEST_FORMAT

    @property
    def total_trial_seconds(self) -> float:
        return sum(t.get("elapsed", 0.0) for t in self.trials if not t.get("cached"))

    def as_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["num_trials"] = len(self.trials)
        out["total_trial_seconds"] = self.total_trial_seconds
        return out


def build_manifest(
    name: str,
    harness: Harness,
    scale: Optional[Any] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> RunManifest:
    """Snapshot *harness* bookkeeping into a manifest for artefact *name*."""
    from .. import structcache

    scale_dict = None
    if scale is not None:
        scale_dict = dataclasses.asdict(scale)
        # JSON has no tuples; normalise for stable round-trips.
        scale_dict = {
            k: list(v) if isinstance(v, tuple) else v
            for k, v in scale_dict.items()
        }
    return RunManifest(
        name=name,
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        git_rev=git_revision(),
        workers=harness.workers,
        cache_dir=str(harness.cache.root) if harness.cache is not None else None,
        cache_hits=harness.cache_hits,
        cache_misses=harness.cache_misses,
        trials=[r.as_dict() for r in harness.records],
        scale=scale_dict,
        extra=dict(extra) if extra else {},
        struct_cache=structcache.stats(),
    )


def write_manifest(
    manifest: RunManifest, directory: Union[str, Path]
) -> Path:
    """Write ``<name>.manifest.json`` under *directory*; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{manifest.name}.manifest.json"
    path.write_text(json.dumps(manifest.as_dict(), indent=2, sort_keys=True) + "\n")
    return path
