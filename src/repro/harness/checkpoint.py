"""Append-only sweep journal: checkpoint/resume for interrupted sweeps.

A :class:`SweepJournal` is a line-per-trial JSONL file recording each
completed trial's digest and result. The harness writes an entry the
moment a trial finishes, so a sweep killed at any point — SIGINT, OOM, a
pulled power cord — leaves a journal whose entries are all valid except
possibly a torn final line. On the next run the harness resolves trials
from the journal before consulting the cache or executing, so a resumed
sweep replays the recorded results and produces a byte-identical merged
artefact (the determinism suite pins this).

The journal complements the content-addressed cache rather than
duplicating it: the cache is global, keyed only by trial digest, and may
be disabled or cold; the journal is per-sweep, cheap to ship alongside an
artefact, and readable as a progress log. Corrupt or torn lines are
skipped on load — the affected trials simply recompute.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["SweepJournal"]


class SweepJournal:
    """Digest-keyed JSONL checkpoint log for one sweep."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.corrupt_lines = 0
        self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                # Torn tail from a killed writer, or bit rot mid-file:
                # either way the trial recomputes, it is never trusted.
                self.corrupt_lines += 1
                continue
            if (
                isinstance(entry, dict)
                and isinstance(entry.get("digest"), str)
                and "result" in entry
            ):
                self._entries[entry["digest"]] = entry
            else:
                self.corrupt_lines += 1

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The journalled payload for *digest* (with ``result``), or None."""
        return self._entries.get(digest)

    def record(
        self, digest: str, result: Any, elapsed: float = 0.0
    ) -> None:
        """Append one completed trial; flushed and fsynced immediately."""
        entry = {"digest": digest, "result": result, "elapsed": elapsed}
        self._entries[digest] = entry
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SweepJournal({str(self.path)!r}, entries={len(self)})"
