"""Parallel sweep harness: trial specs, worker pool, result cache, manifests.

Every paper artefact is a sweep of independent simulation trials (seeds ×
fault patterns × injection rates × schemes). This package turns those
sweeps from inline loops into batches of declarative
:class:`~repro.harness.trials.TrialSpec` objects that a
:class:`~repro.harness.pool.Harness`:

- executes across ``multiprocessing`` workers (``workers=N``) with results
  merged back **in submission order**, so output is identical for any
  worker count;
- memoizes in a content-addressed on-disk
  :class:`~repro.harness.cache.ResultCache` keyed by a stable digest of
  (config, topology, traffic, seeds);
- records per-trial timing into a JSON
  :class:`~repro.harness.manifest.RunManifest` written alongside each
  artefact.

Environment knobs: ``REPRO_WORKERS`` (default worker count),
``REPRO_CACHE_DIR`` (enables + locates the default cache),
``REPRO_NO_CACHE`` (force-disables it). See DESIGN.md for the full
contract.
"""

from .cache import ResultCache, default_cache_dir
from .checkpoint import SweepJournal
from .manifest import RunManifest, build_manifest, git_revision, write_manifest
from .pool import (
    Harness,
    TrialExecutionError,
    TrialRecord,
    TrialTimeoutError,
    get_default_harness,
    run_trials,
    set_default_harness,
)
from .trials import (
    RUNNERS,
    TrialSpec,
    coherence_trial,
    execute_trial,
    fault_recovery_trial,
    lossless_trial,
    register_runner,
    synthetic_trial,
    topology_from_spec,
    topology_to_spec,
    workload_trial,
)

__all__ = [
    "Harness",
    "SweepJournal",
    "TrialExecutionError",
    "TrialRecord",
    "TrialSpec",
    "TrialTimeoutError",
    "ResultCache",
    "RunManifest",
    "RUNNERS",
    "build_manifest",
    "coherence_trial",
    "default_cache_dir",
    "execute_trial",
    "fault_recovery_trial",
    "get_default_harness",
    "git_revision",
    "lossless_trial",
    "register_runner",
    "run_trials",
    "set_default_harness",
    "synthetic_trial",
    "topology_from_spec",
    "topology_to_spec",
    "workload_trial",
    "write_manifest",
]
