"""Parallel trial execution with deterministic, order-stable results.

:class:`Harness` is the single entry point the experiment modules use to
run their sweeps. It takes a batch of :class:`~repro.harness.trials.
TrialSpec` objects and returns one result dict per spec **in submission
order**, regardless of how many worker processes executed them or in what
order they completed — so aggregation code downstream is bitwise
independent of the worker count, and ``workers=1`` output is the
reference that ``workers=N`` must (and does, see the determinism suite)
reproduce exactly.

Work distribution is a supervised worker pool rather than a fire-and-
forget ``Pool.map``: the parent owns one pipe per worker, dispatches one
trial at a time (trials are coarse — whole simulations — so per-trial
dispatch gives the best load balance), and watches both the pipes and the
clock. That supervision is what makes sweeps crash-proof:

- a worker that dies mid-trial (OOM kill, segfault in an extension,
  ``os._exit``) is detected by its pipe hitting EOF; the trial is
  requeued with a backoff and a fresh worker replaces the dead one,
  instead of the sweep hanging forever on a map() that cannot complete;
- a per-trial wall-clock ``timeout`` bounds runaway trials: the worker is
  terminated and the trial retried (``max_retries`` times, exponential
  ``retry_backoff``) before :class:`TrialTimeoutError` aborts the sweep;
- deterministic in-trial exceptions are **not** retried — they would
  recur — and surface immediately as :class:`TrialExecutionError`.

Each spec carries its own seeds (derived via :func:`repro.core.rng.
derive_seed`, stable across processes), so workers need no shared RNG
state, and retried trials return bit-identical results — wall-clock
timing never enters a result dict.

Two persistence layers can be attached. A :class:`~repro.harness.cache.
ResultCache` memoizes results globally by spec digest. A
:class:`~repro.harness.checkpoint.SweepJournal` checkpoints one sweep:
every finished trial is appended immediately, so an interrupted sweep
(SIGINT included) resumes from the journal and produces a byte-identical
merged artefact. Resolution order per trial: journal, then cache, then
execute. Fresh results are written back to both from the parent process
(single writer, no cross-process races).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .checkpoint import SweepJournal
from .trials import TrialSpec, batch_group_key, batch_payload, execute_trial

__all__ = [
    "Harness",
    "TrialRecord",
    "TrialExecutionError",
    "TrialTimeoutError",
    "run_trials",
    "get_default_harness",
    "set_default_harness",
    "BATCH_AUTO_SIZE",
    "BATCH_MIN_AUTO",
]

#: Batch size used by ``batch="auto"``.
BATCH_AUTO_SIZE = 16
#: Minimum compatible-group size before "auto" bothers batching at all —
#: below this the shared-construction amortization cannot pay for the
#: envelope overhead.
BATCH_MIN_AUTO = 4


class TrialExecutionError(RuntimeError):
    """A trial raised, or its worker kept dying, beyond recovery."""


class TrialTimeoutError(TrialExecutionError):
    """A trial exceeded the per-trial wall-clock timeout on every attempt."""


@dataclass
class TrialRecord:
    """Bookkeeping for one executed (or cache/journal-served) trial."""

    digest: str
    runner: str
    cached: bool
    elapsed: float  # seconds of simulation work (0 for definitionless hits)
    label: Optional[str] = None
    retries: int = 0  # crash/timeout requeues this trial needed
    #: True when this trial executed inside a lockstep batch (its elapsed
    #: is then the batch wall-clock split evenly over the members).
    batched: bool = False
    #: The recorded fallback reason when the batch executor evicted this
    #: trial to a solo run (None for full batch members and solo trials).
    batch_fallback: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "runner": self.runner,
            "cached": self.cached,
            "elapsed": self.elapsed,
            "label": self.label,
            "retries": self.retries,
            "batched": self.batched,
            "batch_fallback": self.batch_fallback,
        }


def _execute_payload(payload: Tuple[str, Dict[str, Any]]) -> Tuple[Dict[str, Any], float]:
    """Inline execution: run one trial, return (result, wall seconds)."""
    spec = TrialSpec(payload[0], payload[1])
    start = time.perf_counter()
    result = execute_trial(spec)
    return result, time.perf_counter() - start


def _worker_main(conn, struct_root=None) -> None:
    """Worker loop: receive (task_id, runner, params), send back outcomes.

    A ``None`` message is the shutdown sentinel. Exceptions are stringified
    and shipped to the parent — the worker survives them; only crashes
    (which close the pipe) take a worker down.

    *struct_root* re-activates the parent's compiled-structure store in
    spawn-context workers (fork workers inherit the activation and the
    warm in-process memos directly); the parent warm-started every
    structure before dispatch, so workers only ever mmap-load artefacts.
    """
    if struct_root is not None:
        from .. import structcache

        structcache.activate(struct_root)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg is None:
            return
        task_id, runner, params = msg
        start = time.perf_counter()
        try:
            result = execute_trial(TrialSpec(runner, params))
        except KeyboardInterrupt:
            return
        except BaseException as exc:
            try:
                conn.send(
                    (task_id, "error", f"{type(exc).__name__}: {exc}",
                     time.perf_counter() - start)
                )
            except (BrokenPipeError, OSError):
                return
            continue
        try:
            conn.send((task_id, "ok", result, time.perf_counter() - start))
        except (BrokenPipeError, OSError):
            return


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (Windows, some macOS setups)
        return multiprocessing.get_context("spawn")


class _WorkerHandle:
    """One supervised worker process and its parent-side pipe end."""

    __slots__ = ("proc", "conn", "task", "deadline")

    def __init__(self, ctx) -> None:
        from .. import structcache

        store = structcache.active_store()
        struct_root = str(store.root) if store is not None else None
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=_worker_main,
                                args=(child_conn, struct_root),
                                daemon=True)
        self.proc.start()
        child_conn.close()
        self.task: Optional[int] = None
        self.deadline: Optional[float] = None

    def shutdown(self, kill: bool = False) -> None:
        try:
            if not kill and self.proc.is_alive():
                self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        if kill and self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


class Harness:
    """Fan trial batches out over supervised workers, results in order."""

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.25,
        journal: Optional[SweepJournal] = None,
        preflight: bool = True,
        batch: Optional[str] = None,
    ) -> None:
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if batch is None:
            batch = os.environ.get("REPRO_BATCH", "off") or "off"
        batch = str(batch)
        if batch not in ("off", "auto"):
            try:
                size = int(batch)
            except ValueError:
                size = 0
            if size < 2:
                raise ValueError(
                    f"unknown batch {batch!r}: expected 'off', 'auto' or "
                    "an integer batch size of at least 2"
                )
        self.batch = batch
        self.workers = workers
        self.cache = cache
        self.timeout = timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.journal = journal
        self.preflight = preflight
        self.records: List[TrialRecord] = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.retries_performed = 0

    # ------------------------------------------------------------------
    def run(
        self,
        specs: Sequence[TrialSpec],
        label: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Execute *specs*; return their results in submission order.

        Unless constructed with ``preflight=False``, every spec is first
        statically validated (:func:`repro.analysis.preflight.
        validate_spec`) so malformed sweeps fail before any worker spawns
        — a :class:`~repro.analysis.preflight.PreflightError` names the
        offending spec and, for refuted configurations, carries the
        certifier's concrete counterexample.
        """
        specs = list(specs)
        if not specs:
            return []
        if self.preflight:
            # Imported lazily: repro.analysis imports harness.trials, so a
            # module-level import here would cycle during package init.
            from ..analysis.preflight import validate_spec

            for spec in specs:
                validate_spec(spec)
        digests = [spec.digest() for spec in specs]
        results: List[Optional[Dict[str, Any]]] = [None] * len(specs)
        records: List[Optional[TrialRecord]] = [None] * len(specs)

        pending: List[int] = []
        for i, (spec, digest) in enumerate(zip(specs, digests)):
            payload = self._lookup(digest)
            if payload is not None:
                self.cache_hits += 1
                results[i] = payload["result"]
                records[i] = TrialRecord(
                    digest, spec.runner, True, payload.get("elapsed", 0.0), label
                )
            else:
                self.cache_misses += 1
                pending.append(i)

        if pending:
            self._warm_structures([specs[i] for i in pending])
            units = self._plan_units(specs, pending)
            payloads: List[Tuple[str, Dict[str, Any]]] = []
            weights: List[int] = []
            for kind, members in units:
                if kind == "solo":
                    i = members[0]
                    payloads.append((specs[i].runner, dict(specs[i].params)))
                    weights.append(1)
                else:
                    wrapper = batch_payload([specs[i] for i in members])
                    payloads.append((wrapper.runner, dict(wrapper.params)))
                    weights.append(len(members))
            if self.workers == 1 and self.timeout is None:
                outcomes = [(*_execute_payload(p), 0) for p in payloads]
            else:
                outcomes = self._supervised_map(payloads, weights)
            for (kind, members), (result, elapsed, retries) in zip(
                units, outcomes
            ):
                if kind == "solo":
                    i = members[0]
                    results[i] = result
                    records[i] = TrialRecord(
                        digests[i], specs[i].runner, False, elapsed, label,
                        retries,
                    )
                    self._store(specs[i], digests[i], result, elapsed)
                else:
                    # Envelope from the batch.lockstep runner: one result
                    # per member in order, plus the eviction log. Cache
                    # and journal entries stay strictly per-trial — the
                    # envelope itself is never persisted.
                    share = elapsed / len(members)
                    fallbacks = {
                        e["index"]: e["reason"]
                        for e in result.get("evictions", ())
                    }
                    for pos, i in enumerate(members):
                        member_result = result["results"][pos]
                        results[i] = member_result
                        records[i] = TrialRecord(
                            digests[i], specs[i].runner, False, share,
                            label, retries, batched=True,
                            batch_fallback=fallbacks.get(pos),
                        )
                        self._store(
                            specs[i], digests[i], member_result, share
                        )

        self.records.extend(r for r in records if r is not None)
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    def _warm_structures(self, specs: Sequence[TrialSpec]) -> None:
        """Compile-once warm start for the structure store (no-op when off).

        With the store active, every distinct (topology, config-sans-seed)
        structure among *specs* is compiled or loaded exactly once here,
        in the parent, before any worker spawns — so N workers x M trials
        over one structure never compile it N x M times. Fork workers
        inherit the warm in-process memo; spawn workers re-activate the
        store and mmap-load the freshly-written artefacts.
        """
        from .. import structcache

        if structcache.active_store() is None:
            return
        from ..core.configio import config_from_dict
        from .trials import structural_params, topology_from_spec

        seen = set()
        for spec in specs:
            pair = structural_params(spec)
            if pair is None:
                continue
            topo_spec, config_dict = pair
            key = structcache.structure_digest(topo_spec, config_dict)
            if key in seen:
                continue
            seen.add(key)
            try:
                topology = topology_from_spec(topo_spec)
                config = config_from_dict(config_dict)
            except (KeyError, TypeError, ValueError):
                continue  # malformed spec: the trial itself reports it
            try:
                structcache.distances(topology)
                structcache.parts_for(topology, config)
            except ValueError:
                # Structurally broken (e.g. disconnected topology with
                # preflight off): let the per-trial error path surface it.
                continue

    # ------------------------------------------------------------------
    def _plan_units(
        self, specs: Sequence[TrialSpec], pending: List[int]
    ) -> List[Tuple[str, List[int]]]:
        """Partition pending trials into solo and batch dispatch units.

        Grouping is by :func:`repro.harness.trials.batch_group_key`;
        incompatible specs (key None) always run solo. "auto" batches
        groups of at least :data:`BATCH_MIN_AUTO` compatible specs in
        chunks of :data:`BATCH_AUTO_SIZE`; an explicit integer batches
        every group in chunks of that size (leftover singletons still run
        solo). The plan is a pure function of the spec sequence, so
        worker-count and scheduling never affect which trials batch
        together.
        """
        if self.batch == "off":
            return [("solo", [i]) for i in pending]
        size = BATCH_AUTO_SIZE if self.batch == "auto" else int(self.batch)
        min_group = BATCH_MIN_AUTO if self.batch == "auto" else 2
        groups: Dict[str, List[int]] = {}
        solo: List[int] = []
        for i in pending:
            key = batch_group_key(specs[i])
            if key is None:
                solo.append(i)
            else:
                groups.setdefault(key, []).append(i)
        units: List[Tuple[str, List[int]]] = [("solo", [i]) for i in solo]
        for members in groups.values():
            if len(members) < min_group:
                units.extend(("solo", [i]) for i in members)
                continue
            for lo in range(0, len(members), size):
                chunk = members[lo:lo + size]
                if len(chunk) > 1:
                    units.append(("batch", chunk))
                else:
                    units.append(("solo", chunk))
        return units

    # ------------------------------------------------------------------
    def _lookup(self, digest: str) -> Optional[Dict[str, Any]]:
        """Resolve a finished trial: journal first, then cache."""
        if self.journal is not None:
            payload = self.journal.get(digest)
            if payload is not None:
                return payload
        if self.cache is not None:
            payload = self.cache.get(digest)
            if payload is not None:
                return payload
        return None

    def _store(
        self, spec: TrialSpec, digest: str, result: Any, elapsed: float
    ) -> None:
        if self.journal is not None:
            self.journal.record(digest, result, elapsed)
        if self.cache is not None:
            self.cache.put(
                digest,
                {
                    "spec": json.loads(spec.canonical()),
                    "result": result,
                    "elapsed": elapsed,
                },
            )

    # ------------------------------------------------------------------
    def _supervised_map(
        self,
        payloads: List[Tuple[str, Dict[str, Any]]],
        weights: Optional[List[int]] = None,
    ) -> List[Tuple[Dict[str, Any], float, int]]:
        """Run *payloads* under supervision; (result, elapsed, retries) each.

        *weights* scales the per-payload deadline: a lockstep batch of N
        trials is one payload doing N trials' work, so its wall-clock
        budget is ``timeout * N`` rather than the single-trial budget.
        """
        ctx = _mp_context()
        total = len(payloads)
        if weights is None:
            weights = [1] * total
        results: List[Optional[Tuple[Dict[str, Any], float, int]]] = [None] * total
        attempts = [0] * total
        ready: deque = deque(range(total))
        delayed: List[Tuple[float, int]] = []  # (not-before monotonic, task)
        workers = [_WorkerHandle(ctx) for _ in range(min(self.workers, total))]
        completed = 0
        try:
            while completed < total:
                now = time.monotonic()
                if delayed:
                    still: List[Tuple[float, int]] = []
                    for not_before, task in sorted(delayed):
                        if not_before <= now:
                            ready.append(task)
                        else:
                            still.append((not_before, task))
                    delayed = still

                for worker in workers:
                    if worker.task is None and ready:
                        task = ready.popleft()
                        try:
                            worker.conn.send(
                                (task, payloads[task][0], payloads[task][1])
                            )
                        except (BrokenPipeError, OSError):
                            # Died while idle: replace it, task goes back.
                            ready.appendleft(task)
                            self._replace(workers, worker, ctx)
                            continue
                        worker.task = task
                        worker.deadline = (
                            now + self.timeout * weights[task]
                            if self.timeout else None
                        )

                busy = [w for w in workers if w.task is not None]
                if not busy:
                    if ready or delayed:
                        # Nothing running yet (e.g. all sends hit dead
                        # workers, or everything is backing off): wait out
                        # the shortest delay and loop.
                        wake = min((nb for nb, _ in delayed), default=now)
                        time.sleep(max(0.0, min(wake - now, 0.05)) or 0.001)
                        continue
                    raise TrialExecutionError(
                        f"supervised pool wedged: {completed}/{total} trials "
                        "done but nothing queued or running"
                    )

                wake_times = [w.deadline for w in busy if w.deadline is not None]
                wake_times.extend(nb for nb, _ in delayed)
                wait_for = (
                    max(0.0, min(wake_times) - time.monotonic())
                    if wake_times else None
                )
                ready_conns = mp_connection.wait(
                    [w.conn for w in busy], timeout=wait_for
                )

                for conn in ready_conns:
                    worker = next(w for w in workers if w.conn is conn)
                    task = worker.task
                    try:
                        task_id, status, payload, elapsed = conn.recv()
                    except (EOFError, OSError):
                        # Crash mid-trial: requeue with backoff.
                        self._replace(workers, worker, ctx)
                        self._requeue(
                            task, attempts, delayed, payloads,
                            reason="worker crashed",
                        )
                        continue
                    worker.task = None
                    worker.deadline = None
                    if status == "ok":
                        results[task_id] = (payload, elapsed, attempts[task_id])
                        completed += 1
                    else:
                        raise TrialExecutionError(
                            f"trial {task_id} "
                            f"({payloads[task_id][0]}) raised: {payload}"
                        )

                if self.timeout is not None:
                    now = time.monotonic()
                    for worker in workers:
                        if (
                            worker.task is not None
                            and worker.deadline is not None
                            and now >= worker.deadline
                        ):
                            task = worker.task
                            worker.shutdown(kill=True)
                            self._replace(workers, worker, ctx, respawn_only=True)
                            self._requeue(
                                task, attempts, delayed, payloads,
                                reason=f"timed out after {self.timeout:g}s",
                                timed_out=True,
                            )
        finally:
            for worker in workers:
                worker.shutdown(kill=True)
        return [r for r in results if r is not None]

    def _replace(
        self, workers: List[_WorkerHandle], worker: _WorkerHandle, ctx,
        respawn_only: bool = False,
    ) -> None:
        """Swap a dead/killed worker for a fresh one, in place."""
        if not respawn_only:
            worker.shutdown(kill=True)
        workers[workers.index(worker)] = _WorkerHandle(ctx)

    def _requeue(
        self,
        task: int,
        attempts: List[int],
        delayed: List[Tuple[float, int]],
        payloads: List[Tuple[str, Dict[str, Any]]],
        reason: str,
        timed_out: bool = False,
    ) -> None:
        attempts[task] += 1
        self.retries_performed += 1
        if attempts[task] > self.max_retries:
            err = TrialTimeoutError if timed_out else TrialExecutionError
            raise err(
                f"trial {task} ({payloads[task][0]}) {reason}; "
                f"gave up after {attempts[task]} attempts"
            )
        backoff = self.retry_backoff * (2 ** (attempts[task] - 1))
        delayed.append((time.monotonic() + backoff, task))

    # ------------------------------------------------------------------
    @property
    def trials_executed(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    @property
    def simulated_seconds(self) -> float:
        """Total wall time spent inside simulations (sum over trials)."""
        return sum(r.elapsed for r in self.records if not r.cached)


def run_trials(
    specs: Sequence[TrialSpec],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """One-shot convenience wrapper around :meth:`Harness.run`."""
    return Harness(workers=workers, cache=cache, timeout=timeout).run(specs)


# ----------------------------------------------------------------------
# Process-wide default harness (used when experiments get harness=None)
# ----------------------------------------------------------------------
_default_harness: Optional[Harness] = None


def get_default_harness() -> Harness:
    """The process-wide harness: ``REPRO_WORKERS`` workers, and an on-disk
    cache only when ``REPRO_CACHE_DIR`` is set (so test runs and library
    callers never write to the user's cache unless they opted in)."""
    global _default_harness
    if _default_harness is None:
        cache = None
        if os.environ.get("REPRO_CACHE_DIR") and not os.environ.get("REPRO_NO_CACHE"):
            cache = ResultCache()
        _default_harness = Harness(cache=cache)
    return _default_harness


def set_default_harness(harness: Optional[Harness]) -> None:
    """Install (or with None, reset) the process-wide default harness."""
    global _default_harness
    _default_harness = harness
