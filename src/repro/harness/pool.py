"""Parallel trial execution with deterministic, order-stable results.

:class:`Harness` is the single entry point the experiment modules use to
run their sweeps. It takes a batch of :class:`~repro.harness.trials.
TrialSpec` objects and returns one result dict per spec **in submission
order**, regardless of how many worker processes executed them or in what
order they completed — so aggregation code downstream is bitwise
independent of the worker count, and ``workers=1`` output is the
reference that ``workers=N`` must (and does, see the determinism suite)
reproduce exactly.

Work distribution is plain ``multiprocessing.Pool.map`` with chunksize 1:
trials are coarse (whole simulations, milliseconds to minutes each), so
scheduling overhead is negligible and per-trial dispatch gives the best
load balance across heterogeneous trial lengths. Each spec carries its own
seeds (derived via :func:`repro.core.rng.derive_seed`, which is stable
across processes), so workers need no shared RNG state.

A :class:`~repro.harness.cache.ResultCache` can be attached; cached trials
are served without touching the pool, fresh results are written back from
the parent process (single writer, no cross-process races).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .trials import TrialSpec, execute_trial

__all__ = [
    "Harness",
    "TrialRecord",
    "run_trials",
    "get_default_harness",
    "set_default_harness",
]


@dataclass
class TrialRecord:
    """Bookkeeping for one executed (or cache-served) trial."""

    digest: str
    runner: str
    cached: bool
    elapsed: float  # seconds of simulation work (0 for definitionless hits)
    label: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "runner": self.runner,
            "cached": self.cached,
            "elapsed": self.elapsed,
            "label": self.label,
        }


def _execute_payload(payload: Tuple[str, Dict[str, Any]]) -> Tuple[Dict[str, Any], float]:
    """Worker entry point: run one trial, return (result, wall seconds)."""
    spec = TrialSpec(payload[0], payload[1])
    start = time.perf_counter()
    result = execute_trial(spec)
    return result, time.perf_counter() - start


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (Windows, some macOS setups)
        return multiprocessing.get_context("spawn")


class Harness:
    """Fan trial batches out over worker processes, results in order."""

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache = cache
        self.records: List[TrialRecord] = []
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    def run(
        self,
        specs: Sequence[TrialSpec],
        label: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Execute *specs*; return their results in submission order."""
        specs = list(specs)
        if not specs:
            return []
        digests = [spec.digest() for spec in specs]
        results: List[Optional[Dict[str, Any]]] = [None] * len(specs)
        records: List[Optional[TrialRecord]] = [None] * len(specs)

        pending: List[int] = []
        for i, (spec, digest) in enumerate(zip(specs, digests)):
            payload = self.cache.get(digest) if self.cache is not None else None
            if payload is not None:
                self.cache_hits += 1
                results[i] = payload["result"]
                records[i] = TrialRecord(
                    digest, spec.runner, True, payload.get("elapsed", 0.0), label
                )
            else:
                self.cache_misses += 1
                pending.append(i)

        if pending:
            payloads = [(specs[i].runner, dict(specs[i].params)) for i in pending]
            if self.workers > 1 and len(pending) > 1:
                with _mp_context().Pool(min(self.workers, len(pending))) as pool:
                    outcomes = pool.map(_execute_payload, payloads, chunksize=1)
            else:
                outcomes = [_execute_payload(p) for p in payloads]
            for i, (result, elapsed) in zip(pending, outcomes):
                results[i] = result
                records[i] = TrialRecord(
                    digests[i], specs[i].runner, False, elapsed, label
                )
                if self.cache is not None:
                    self.cache.put(
                        digests[i],
                        {
                            "spec": json.loads(specs[i].canonical()),
                            "result": result,
                            "elapsed": elapsed,
                        },
                    )

        self.records.extend(r for r in records if r is not None)
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    @property
    def trials_executed(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    @property
    def simulated_seconds(self) -> float:
        """Total wall time spent inside simulations (sum over trials)."""
        return sum(r.elapsed for r in self.records if not r.cached)


def run_trials(
    specs: Sequence[TrialSpec],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Dict[str, Any]]:
    """One-shot convenience wrapper around :meth:`Harness.run`."""
    return Harness(workers=workers, cache=cache).run(specs)


# ----------------------------------------------------------------------
# Process-wide default harness (used when experiments get harness=None)
# ----------------------------------------------------------------------
_default_harness: Optional[Harness] = None


def get_default_harness() -> Harness:
    """The process-wide harness: ``REPRO_WORKERS`` workers, and an on-disk
    cache only when ``REPRO_CACHE_DIR`` is set (so test runs and library
    callers never write to the user's cache unless they opted in)."""
    global _default_harness
    if _default_harness is None:
        cache = None
        if os.environ.get("REPRO_CACHE_DIR") and not os.environ.get("REPRO_NO_CACHE"):
            cache = ResultCache()
        _default_harness = Harness(cache=cache)
    return _default_harness


def set_default_harness(harness: Optional[Harness]) -> None:
    """Install (or with None, reset) the process-wide default harness."""
    global _default_harness
    _default_harness = harness
