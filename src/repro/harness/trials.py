"""Trial specifications: declarative, picklable, digestible units of work.

The parallel harness (:mod:`repro.harness.pool`) must ship work to
``multiprocessing`` workers and memoize finished work on disk. Both needs
rule out closures over live simulator objects; instead a trial is a plain
:class:`TrialSpec` — a runner name registered in :data:`RUNNERS` plus a
JSON-able parameter mapping. The canonical JSON encoding of a spec doubles
as its cache identity (see :meth:`TrialSpec.digest`).

Four runners cover every sweep in the experiment suite:

- ``synthetic`` — open-loop synthetic traffic (Figures 10/11/14, the
  injection-rate sweeps, the VC/packet-size sensitivity studies);
- ``workload`` — a surrogate application profile run to completion or to a
  deadlock verdict (Figures 3/12/13/15);
- ``coherence`` — raw coherence-protocol traffic with explicit knobs (the
  ejection-depth and MSHR sensitivity studies);
- ``fault_recovery`` — synthetic traffic under a runtime
  :class:`~repro.faults.schedule.FaultSchedule`, returning the injector's
  degradation/recovery metrics alongside the usual summary. Fault
  parameters live under their own ``faults`` params key, so fault-free
  trial digests are untouched by the fault subsystem's existence.

Every runner reconstructs its full simulation from the parameters alone,
so a trial executes identically inline, in a worker process, or replayed
from a cold start — the determinism suite pins this.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..core.config import SimConfig
from ..core.configio import config_from_dict, config_to_dict
from ..core.metrics import NetworkStats
from ..core.rng import derive_seed
from ..core.simulator import Simulation
from ..topology.graph import Topology
from ..traffic.synthetic import SyntheticTraffic, pattern_by_name
from ..traffic.workloads import WorkloadProfile, make_workload_traffic

__all__ = [
    "TrialSpec",
    "RUNNERS",
    "register_runner",
    "execute_trial",
    "topology_to_spec",
    "topology_from_spec",
    "synthetic_trial",
    "workload_trial",
    "coherence_trial",
    "fault_recovery_trial",
    "lossless_trial",
    "batch_group_key",
    "batch_payload",
    "structural_params",
]

#: Bump to invalidate every cached result when trial semantics change.
TRIAL_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Topology (de)serialisation
# ----------------------------------------------------------------------
def topology_to_spec(topology: Topology) -> Dict[str, Any]:
    """Canonical JSON-able description of a topology (exact, order-stable)."""
    spec: Dict[str, Any] = {
        "name": topology.name,
        "num_nodes": topology.num_nodes,
        "edges": [list(e) for e in topology.bidirectional_links()],
    }
    if topology.coordinates is not None:
        spec["coordinates"] = {
            str(node): list(xy) for node, xy in sorted(topology.coordinates.items())
        }
    return spec


def topology_from_spec(spec: Mapping[str, Any]) -> Topology:
    """Rebuild the exact :class:`Topology` described by *spec*."""
    coordinates = None
    if spec.get("coordinates") is not None:
        coordinates = {
            int(node): tuple(xy) for node, xy in spec["coordinates"].items()
        }
    return Topology(
        spec["num_nodes"],
        [tuple(edge) for edge in spec["edges"]],
        name=spec.get("name", "custom"),
        coordinates=coordinates,
    )


# ----------------------------------------------------------------------
# Trial specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrialSpec:
    """One independent unit of simulation work.

    ``runner`` names a function in :data:`RUNNERS`; ``params`` must contain
    only JSON-able values (numbers, strings, bools, lists, dicts) so the
    spec can be pickled to workers and digested for the cache.
    """

    runner: str
    params: Mapping[str, Any]

    def canonical(self) -> str:
        """Canonical JSON encoding — the cache identity of this trial."""
        return json.dumps(
            {
                "format": TRIAL_FORMAT_VERSION,
                "runner": self.runner,
                "params": self.params,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def digest(self) -> str:
        """Content digest of the spec (hex BLAKE2b-128)."""
        return hashlib.blake2b(
            self.canonical().encode("utf-8"), digest_size=16
        ).hexdigest()


RUNNERS: Dict[str, Callable[[Mapping[str, Any]], Dict[str, Any]]] = {}


def register_runner(
    name: str,
) -> Callable[[Callable[[Mapping[str, Any]], Dict[str, Any]]], Callable]:
    """Register a trial runner under *name* (decorator)."""

    def deco(fn: Callable[[Mapping[str, Any]], Dict[str, Any]]) -> Callable:
        if name in RUNNERS:
            raise ValueError(f"runner {name!r} already registered")
        RUNNERS[name] = fn
        return fn

    return deco


def execute_trial(spec: TrialSpec) -> Dict[str, Any]:
    """Run one trial to completion and return its JSON-able result dict."""
    try:
        runner = RUNNERS[spec.runner]
    except KeyError:
        raise ValueError(
            f"unknown trial runner {spec.runner!r}; "
            f"registered: {sorted(RUNNERS)}"
        ) from None
    return runner(spec.params)


# ----------------------------------------------------------------------
# Result extraction
# ----------------------------------------------------------------------
def _summarise(sim: Simulation) -> Dict[str, Any]:
    """Flatten the headline metrics of a finished simulation."""
    stats: NetworkStats = sim.stats
    out: Dict[str, Any] = dict(stats.as_dict())
    out["throughput"] = sim.throughput()
    out["p99_latency"] = (
        stats.latency.percentile(99.0) if stats.latency.samples else 0.0
    )
    out["drained_packets"] = stats.drained_packets
    out["full_drains"] = stats.full_drains
    out["spins_performed"] = stats.spins_performed
    out["measured_cycles"] = stats.measured_cycles
    out["pre_drain_extensions"] = (
        sim.drain_controller.pre_drain_extensions
        if sim.drain_controller is not None
        else 0
    )
    return out


# ----------------------------------------------------------------------
# Builders + runners
# ----------------------------------------------------------------------
def synthetic_trial(
    topology: Topology,
    config: SimConfig,
    rate: float,
    cycles: int,
    warmup: int,
    pattern: str = "uniform_random",
    mesh_width: Optional[int] = None,
    traffic_seed: Optional[int] = None,
) -> TrialSpec:
    """Spec for one open-loop synthetic-traffic run.

    When *traffic_seed* is omitted the injector stream is derived from the
    config seed via :func:`repro.core.rng.derive_seed`, so child streams
    are stable across processes and interpreter restarts.
    """
    if traffic_seed is None:
        traffic_seed = derive_seed(config.seed, "traffic", pattern, rate)
    return TrialSpec(
        "synthetic",
        {
            "topology": topology_to_spec(topology),
            "config": config_to_dict(config),
            "pattern": pattern,
            "rate": rate,
            "mesh_width": mesh_width,
            "traffic_seed": traffic_seed,
            "cycles": cycles,
            "warmup": warmup,
        },
    )


@register_runner("synthetic")
def _run_synthetic(params: Mapping[str, Any]) -> Dict[str, Any]:
    topology = topology_from_spec(params["topology"])
    config = config_from_dict(params["config"])
    traffic = SyntheticTraffic(
        pattern_by_name(params["pattern"], topology.num_nodes,
                        params.get("mesh_width")),
        params["rate"],
        random.Random(params["traffic_seed"]),
    )
    sim = Simulation(topology, config, traffic)
    sim.run(params["cycles"], warmup=params["warmup"])
    out = _summarise(sim)
    out["rate"] = params["rate"]
    out["ejected"] = sim.stats.packets_ejected
    return out


def workload_trial(
    topology: Topology,
    config: SimConfig,
    workload: WorkloadProfile,
    max_cycles: int,
    total_transactions: Optional[int] = None,
    mesh_width: Optional[int] = None,
    intensity_scale: float = 1.0,
    halt_on_deadlock: bool = False,
    traffic_seed: Optional[int] = None,
) -> TrialSpec:
    """Spec for one surrogate-application run (Figures 3/12/13/15)."""
    if traffic_seed is None:
        traffic_seed = derive_seed(config.seed, "workload", workload.name)
    return TrialSpec(
        "workload",
        {
            "topology": topology_to_spec(topology),
            "config": config_to_dict(config),
            "workload": dataclasses.asdict(workload),
            "max_cycles": max_cycles,
            "total_transactions": total_transactions,
            "mesh_width": mesh_width,
            "intensity_scale": intensity_scale,
            "halt_on_deadlock": halt_on_deadlock,
            "traffic_seed": traffic_seed,
        },
    )


@register_runner("workload")
def _run_workload(params: Mapping[str, Any]) -> Dict[str, Any]:
    topology = topology_from_spec(params["topology"])
    config = config_from_dict(params["config"])
    workload = WorkloadProfile(**params["workload"])
    traffic = make_workload_traffic(
        workload,
        topology.num_nodes,
        random.Random(params["traffic_seed"]),
        protocol=config.protocol,
        total_transactions=params.get("total_transactions"),
        mesh_width=params.get("mesh_width"),
        intensity_scale=params.get("intensity_scale", 1.0),
    )
    sim = Simulation(
        topology, config, traffic,
        halt_on_deadlock=params.get("halt_on_deadlock", False),
    )
    sim.run(params["max_cycles"])
    out = _summarise(sim)
    out["workload"] = workload.name
    out["runtime"] = sim.stats.cycles
    out["completed"] = traffic.completed
    out["finished"] = traffic.done()
    out["deadlocked"] = sim.deadlocked
    return out


def coherence_trial(
    topology: Topology,
    config: SimConfig,
    issue_probability: float,
    max_cycles: int,
    total_transactions: Optional[int] = None,
    locality: float = 0.0,
    mesh_width: Optional[int] = None,
    traffic_seed: Optional[int] = None,
) -> TrialSpec:
    """Spec for a raw coherence-protocol run with explicit traffic knobs."""
    if traffic_seed is None:
        traffic_seed = derive_seed(config.seed, "coherence", issue_probability)
    return TrialSpec(
        "coherence",
        {
            "topology": topology_to_spec(topology),
            "config": config_to_dict(config),
            "issue_probability": issue_probability,
            "max_cycles": max_cycles,
            "total_transactions": total_transactions,
            "locality": locality,
            "mesh_width": mesh_width,
            "traffic_seed": traffic_seed,
        },
    )


def fault_recovery_trial(
    topology: Topology,
    config: SimConfig,
    rate: float,
    cycles: int,
    warmup: int,
    schedule,
    policy: str = "drop_retransmit",
    curve_window: int = 200,
    max_circuits: int = 512,
    pattern: str = "uniform_random",
    mesh_width: Optional[int] = None,
    traffic_seed: Optional[int] = None,
) -> TrialSpec:
    """Spec for one synthetic run under a runtime fault schedule.

    *schedule* is a :class:`repro.faults.FaultSchedule` (or its dict
    form); it is embedded in the params, so two trials with different
    schedules — or the same schedule under a different in-flight policy —
    digest differently and cache independently.
    """
    if traffic_seed is None:
        traffic_seed = derive_seed(config.seed, "traffic", pattern, rate)
    schedule_dict = (
        schedule if isinstance(schedule, Mapping) else schedule.as_dict()
    )
    return TrialSpec(
        "fault_recovery",
        {
            "topology": topology_to_spec(topology),
            "config": config_to_dict(config),
            "pattern": pattern,
            "rate": rate,
            "mesh_width": mesh_width,
            "traffic_seed": traffic_seed,
            "cycles": cycles,
            "warmup": warmup,
            "faults": {
                "schedule": schedule_dict,
                "policy": policy,
                "curve_window": curve_window,
                "max_circuits": max_circuits,
            },
        },
    )


@register_runner("fault_recovery")
def _run_fault_recovery(params: Mapping[str, Any]) -> Dict[str, Any]:
    from ..faults.schedule import FaultSchedule

    topology = topology_from_spec(params["topology"])
    config = config_from_dict(params["config"])
    traffic = SyntheticTraffic(
        pattern_by_name(params["pattern"], topology.num_nodes,
                        params.get("mesh_width")),
        params["rate"],
        random.Random(params["traffic_seed"]),
    )
    faults = params["faults"]
    sim = Simulation(
        topology, config, traffic,
        fault_schedule=FaultSchedule.from_dict(faults["schedule"]),
        fault_policy=faults.get("policy", "drop_retransmit"),
        fault_curve_window=faults.get("curve_window", 200),
        fault_max_circuits=faults.get("max_circuits", 512),
    )
    sim.run(params["cycles"], warmup=params["warmup"])
    out = _summarise(sim)
    out["rate"] = params["rate"]
    out["ejected"] = sim.stats.packets_ejected
    out["faults"] = sim.fault_injector.summary()
    if sim.drain_controller is not None:
        out["drain_covered_links"] = sim.drain_controller.total_path_length()
        out["drain_cycles_installed"] = len(sim.drain_controller.paths)
    out["links_alive"] = sim.index.num_links - len(sim.index.dead_links)
    return out


def lossless_trial(
    topology: Topology,
    config: SimConfig,
    flows,
    cycles: int,
    storm=None,
    degradation_ladder: bool = False,
    halt_on_deadlock: bool = False,
    traffic_seed: Optional[int] = None,
) -> TrialSpec:
    """Spec for one flow-level run on a lossless (pause/resume) fabric.

    *flows* is a list of :class:`repro.traffic.Flow` (or ``[src, dst,
    rate, packets]`` lists); *storm* an optional
    :class:`repro.faults.PauseStormSchedule` (or its dict form). All
    lossless-specific parameters live under the ``lossless`` key, so
    credit-mode trial digests are untouched by this subsystem.
    """
    if traffic_seed is None:
        traffic_seed = derive_seed(config.seed, "flows", len(flows))
    flow_lists = [
        list(f.as_tuple()) if hasattr(f, "as_tuple") else list(f)
        for f in flows
    ]
    storm_dict = None
    if storm is not None:
        storm_dict = storm if isinstance(storm, Mapping) else storm.as_dict()
    return TrialSpec(
        "lossless",
        {
            "topology": topology_to_spec(topology),
            "config": config_to_dict(config),
            "cycles": cycles,
            "traffic_seed": traffic_seed,
            "lossless": {
                "flows": flow_lists,
                "storm": storm_dict,
                "degradation_ladder": degradation_ladder,
                "halt_on_deadlock": halt_on_deadlock,
            },
        },
    )


@register_runner("lossless")
def _run_lossless(params: Mapping[str, Any]) -> Dict[str, Any]:
    from ..faults.storm import PauseStormSchedule
    from ..traffic.flows import Flow, FlowTraffic

    topology = topology_from_spec(params["topology"])
    config = config_from_dict(params["config"])
    lossless = params["lossless"]
    flows = [
        Flow(int(f[0]), int(f[1]), float(f[2]),
             packets=None if f[3] is None else int(f[3]))
        for f in lossless["flows"]
    ]
    traffic = FlowTraffic(flows, random.Random(params["traffic_seed"]))
    storm = None
    if lossless.get("storm") is not None:
        storm = PauseStormSchedule.from_dict(lossless["storm"])
    sim = Simulation(
        topology, config, traffic,
        halt_on_deadlock=lossless.get("halt_on_deadlock", False),
        pause_storm=storm,
        degradation_ladder=lossless.get("degradation_ladder", False),
    )
    sim.run(params["cycles"])
    out = _summarise(sim)
    out["runtime"] = sim.stats.cycles
    out["generated"] = traffic.generated
    out["delivered"] = traffic.delivered
    out["recovery_ratio"] = (
        traffic.delivered / traffic.generated if traffic.generated else 1.0
    )
    out["finished"] = traffic.done()
    out["deadlocked"] = sim.deadlocked
    out["deadlock_cycle"] = (
        sim.watchdog.cycle_payload if sim.watchdog is not None else None
    )
    if hasattr(sim.fabric, "pfc_summary"):
        out["pfc"] = sim.fabric.pfc_summary()
    if sim.degradation_ladder is not None:
        ladder = sim.degradation_ladder.summary()
        out["ladder"] = ladder
        out["lost_forever"] = ladder["packets_lost_forever"]
    else:
        out["lost_forever"] = 0
    if sim.fault_injector is not None:
        out["storm_applied"] = sim.fault_injector.storm_applied
    return out


# ----------------------------------------------------------------------
# Cross-trial lockstep batching
# ----------------------------------------------------------------------
#: Runners whose trials the lockstep batch executor can reconstruct.
#: ``synthetic`` is the perf path; ``fault_recovery`` joins for coverage
#: (its members build private index/routing parts and step their drain
#: controller densely — see repro.network.batched).
BATCHABLE_RUNNERS = ("synthetic", "fault_recovery")


def structural_params(
    spec: TrialSpec,
) -> Optional[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """The (topology spec, config dict) pair shaping *spec*'s structure.

    This is the structure store's view of a trial: everything under these
    two params (minus the config seed) keys the compiled artefacts the
    trial will boot from. Returns None for specs without the standard
    ``topology``/``config`` params (e.g. ``batch.lockstep`` wrappers,
    whose members are warmed individually before batching). Used by the
    harness's compile-once warm start (:mod:`repro.harness.pool`).
    """
    params = spec.params
    topo = params.get("topology") if isinstance(params, Mapping) else None
    config = params.get("config") if isinstance(params, Mapping) else None
    if not isinstance(topo, Mapping) or not isinstance(config, Mapping):
        return None
    return dict(topo), dict(config)


def batch_group_key(spec: TrialSpec) -> Optional[str]:
    """Compatibility key for lockstep batching, or None if unbatchable.

    Two specs may share a batch iff they agree on everything that shapes
    the simulation's structure: topology, scheme, engine selection, vc/vn
    geometry, traffic pattern — the full config minus the per-trial seed.
    Per-member knobs (rate, seeds, cycles, warmup, fault schedules) vary
    freely inside a group. Configurations the batch executor cannot build
    a :class:`~repro.network.batched.BatchMember` for (non-credit flow
    control, multi-flit packets, a VC geometry outside the vectorized
    engine's gate) return None and always run solo.
    """
    if spec.runner not in BATCHABLE_RUNNERS:
        return None
    params = spec.params
    config = dict(params.get("config") or {})
    network = dict(config.get("network") or {})
    if config.get("flow_control", "credit") != "credit":
        return None
    if network.get("packet_size_flits", 1) != 1:
        return None
    if network.get("vcs_per_vn", 2) != 2:
        return None
    config.pop("seed", None)
    key = json.dumps(
        {
            "topology": params.get("topology"),
            "config": config,
            "pattern": params.get("pattern"),
            "mesh_width": params.get("mesh_width"),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(key.encode("utf-8"), digest_size=16).hexdigest()


def batch_payload(specs) -> "TrialSpec":
    """Wrap a group of compatible specs as one ``batch.lockstep`` trial.

    The wrapper spec is a scheduling artefact only — it is never digested
    for the cache (cache and journal entries stay per-member), so its
    params simply carry each member's (runner, params) pair in order.
    """
    return TrialSpec(
        "batch.lockstep",
        {"trials": [[spec.runner, dict(spec.params)] for spec in specs]},
    )


@register_runner("batch.lockstep")
def _run_batch(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Run a group of compatible trials as one lockstep batch.

    Returns an envelope ``{"results": [...], "evictions": [...]}`` with
    one result per member in input order. Members whose configuration
    forces a scalar/dense fallback at fabric construction are evicted:
    they rerun solo through their own runner (bit-identical by the engine
    parity contract) and the fallback is recorded in ``evictions``.
    """
    from ..network.batched import (
        BatchedEngine,
        BatchMember,
        MirroredRandom,
        SharedParts,
        WordStream,
        adopt_engine_tables,
    )

    trials = params["trials"]
    results: list = [None] * len(trials)
    evictions: list = []
    topology: Optional[Topology] = None
    shared: Optional[SharedParts] = None
    entries: list = []
    for i, (runner, p) in enumerate(trials):
        if runner not in BATCHABLE_RUNNERS:
            results[i] = execute_trial(TrialSpec(runner, p))
            evictions.append({"index": i, "reason": f"runner {runner!r}"})
            continue
        if topology is None:
            topology = topology_from_spec(p["topology"])
        config = config_from_dict(p["config"])
        stream = WordStream(p["traffic_seed"])
        traffic = SyntheticTraffic(
            pattern_by_name(p["pattern"], topology.num_nodes,
                            p.get("mesh_width")),
            p["rate"],
            MirroredRandom(stream),
        )
        kwargs: Dict[str, Any] = {}
        if runner == "fault_recovery":
            from ..faults.schedule import FaultSchedule

            faults = p["faults"]
            kwargs = {
                "fault_schedule": FaultSchedule.from_dict(faults["schedule"]),
                "fault_policy": faults.get("policy", "drop_retransmit"),
                "fault_curve_window": faults.get("curve_window", 200),
                "fault_max_circuits": faults.get("max_circuits", 512),
            }
        sim = Simulation(topology, config, traffic, shared=shared, **kwargs)
        if sim.fabric.engine_name != "vectorized":
            # Structural fallback (stateful routing, forced scalar, ...):
            # evict and run solo — the solo rerun is the recorded result.
            reason = (sim.fabric.engine_fallback_reason
                      or f"engine {sim.fabric.engine_name!r}")
            results[i] = execute_trial(TrialSpec(runner, p))
            evictions.append({"index": i, "reason": reason})
            continue
        if shared is None and not kwargs:
            shared = SharedParts.from_simulation(sim)
        entries.append(
            (i, runner, p,
             BatchMember(sim, stream, p["cycles"], warmup=p["warmup"]))
        )
    if entries:
        if shared is not None:
            donor = next(
                m.sim.fabric for _, _, _, m in entries
                if m.sim.index is shared.index
            )
            adopt_engine_tables(
                donor,
                [m.sim.fabric for _, _, _, m in entries
                 if m.sim.fabric is not donor],
            )
        BatchedEngine([m for _, _, _, m in entries]).run()
    for i, runner, p, member in entries:
        sim = member.sim
        out = _summarise(sim)
        out["rate"] = p["rate"]
        out["ejected"] = sim.stats.packets_ejected
        if runner == "fault_recovery":
            out["faults"] = sim.fault_injector.summary()
            if sim.drain_controller is not None:
                out["drain_covered_links"] = (
                    sim.drain_controller.total_path_length()
                )
                out["drain_cycles_installed"] = len(sim.drain_controller.paths)
            out["links_alive"] = (
                sim.index.num_links - len(sim.index.dead_links)
            )
        results[i] = out
    return {"results": results, "evictions": evictions}


@register_runner("coherence")
def _run_coherence(params: Mapping[str, Any]) -> Dict[str, Any]:
    from ..protocol.coherence import CoherenceTraffic

    topology = topology_from_spec(params["topology"])
    config = config_from_dict(params["config"])
    traffic = CoherenceTraffic(
        topology.num_nodes,
        config.protocol,
        params["issue_probability"],
        random.Random(params["traffic_seed"]),
        total_transactions=params.get("total_transactions"),
        locality=params.get("locality", 0.0),
        mesh_width=params.get("mesh_width"),
    )
    sim = Simulation(topology, config, traffic)
    sim.run(params["max_cycles"])
    out = _summarise(sim)
    out["runtime"] = sim.stats.cycles
    out["completed"] = traffic.completed
    out["finished"] = traffic.done()
    return out
