"""Content-addressed on-disk cache of completed trial results.

A finished trial is a pure function of its :class:`~repro.harness.trials.
TrialSpec` — topology, full ``SimConfig``, traffic knobs and seeds are all
part of the spec, and the simulator is deterministic — so results can be
memoized by the spec's BLAKE2b digest. Re-running an experiment with
unchanged parameters then costs one cache lookup per trial instead of a
simulation, which makes iterating on aggregation/plotting code free and
lets interrupted sweeps resume.

Layout: ``<root>/<digest[:2]>/<digest>.json``, one JSON document per trial
holding the spec (for audit/debugging), its result, and timing metadata.
Writes are atomic (tempfile + rename) so concurrent sweeps never observe a
torn entry. Invalidation is by key construction: the digest covers
``TRIAL_FORMAT_VERSION``, so bumping that constant abandons stale entries;
``clear()`` deletes them eagerly.

The default location is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-drain``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["ResultCache", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR``, else ``~/.cache/repro-drain``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-drain"


class ResultCache:
    """Digest-keyed JSON store for trial results, with hit/miss counters."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """Return the cached payload for *digest*, or None on a miss.

        Corrupt entries — partial writes from killed runs, disk trouble,
        or files that parse as JSON but are not trial payloads (no
        ``result`` key) — are treated as misses and removed, so the trial
        recomputes cleanly instead of poisoning an artefact downstream.
        """
        path = self.path_for(digest)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            payload = None  # unreadable: fall through to removal
        if not isinstance(payload, dict) or "result" not in payload:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, digest: str, payload: Dict[str, Any]) -> None:
        """Store *payload* under *digest* atomically."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
