"""Static deadlock-freedom certification of DRAIN configurations.

DRAIN's correctness argument is static: deadlock freedom follows either
from an *acyclic* restricted channel-dependency graph (turn-restricted
routing such as DOR or up*/down*, and the escape sub-network of the
escape-VC baseline), or from a precomputed drain-cycle set covering every
unidirectional link of the (surviving) topology exactly once (the DRAIN
scheme itself, Section III of the paper). Both properties are decidable
from the configuration alone, so any (topology, routing, drain-path)
triple can be *certified or refuted* before a single simulated cycle.

The certifier emits a :class:`Certificate` either way:

- ``CERTIFIED`` carries a checkable proof object — a topological order of
  the restricted dependency graph's links (every legal turn goes strictly
  forward in the order, hence no cycle), or a coverage account (each
  surviving link covered exactly once by exactly one drain cycle, each
  cycle a closed walk of legal turns);
- ``REFUTED`` carries a concrete counterexample — a minimal reachable
  turn-cycle of the restricted dependency graph, or the uncovered /
  duplicated / foreign link sets in the same payload shape as
  :class:`~repro.drain.path.DrainPathError`.

The restricted channel-dependency graph is built per destination from the
routing function's own tables (see :meth:`~repro.routing.base.
RoutingFunction.route_candidates`): there is an edge ``l -> m`` when some
packet routed to destination ``d`` can hold link ``l`` while requesting
link ``m`` at router ``l.dst``. For phase-stateful routing (up*/down*)
the arrival phase is derived from the link class, so illegal down->up
turns never appear. Where holding-state reachability is approximated, the
approximation only *adds* edges — extra edges can produce a spurious
refutation but never a spurious certificate, keeping ``CERTIFIED`` sound.

**Pause-aware mode** (:func:`certify_pause_configuration`) extends the
same machinery to ``flow_control="pause_resume"``. Under PFC the blocking
unit is a whole buffer *row* — the ``vcs_per_vn`` slots of one (link
port, VN) pair: a row at its pause threshold asserts XOFF and stalls
*every* packet class sharing that port, not only the turn whose packets
filled it. Per-class escape disciplines therefore cannot break a
dependency the turn relation allows, and the buffer-dependency graph
(BDG) collapses onto link granularity: the pause-augmented BDG is the
turn-edge graph over the *full* candidate relation, optionally restricted
to a concrete flow set's reachable holding states. Two escape facts are
modelled explicitly: headroom feasibility (``pause_threshold + headroom
<= vcs_per_vn``, or the configuration cannot stay lossless at all), and
the escape-VC pause exemption (the pause fabric lets escape/VC0 claims
bypass XOFF whenever an escape mode is active), which restores the
credit-mode arguments for the drain and escape-VC schemes. Refutations
are emitted as a minimal *buffer cycle* in the exact payload shape the
runtime watchdog halt already uses, canonicalised to the
lexicographically-minimal rotation so differential comparison against a
live wedge is a plain equality check on the ``links`` field.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.config import PfcConfig, Scheme
from ..drain.path import (
    DrainPath,
    DrainPathError,
    euler_drain_path,
    hawick_james_drain_path,
)
from ..network.index import FabricIndex
from ..routing.adaptive import AdaptiveMinimalRouting
from ..routing.base import RoutingFunction
from ..routing.dor import DimensionOrderRouting
from ..routing.updown import UpDownRouting
from ..topology.graph import Link, Topology

__all__ = [
    "CERTIFIED",
    "REFUTED",
    "Certificate",
    "ROUTING_NAMES",
    "routing_for",
    "build_restricted_cdg",
    "build_pause_bdg",
    "topological_link_order",
    "find_turn_cycle",
    "canonical_rotation",
    "minimal_cycles",
    "certify_routing",
    "certify_drain_cover",
    "certify_configuration",
    "certify_pause_configuration",
    "apply_schedule",
]

CERTIFIED = "CERTIFIED"
REFUTED = "REFUTED"

#: Routing functions the certifier can instantiate by name.
ROUTING_NAMES = ("dor", "adaptive", "updown")


@dataclass(frozen=True)
class Certificate:
    """Machine-readable verdict of one static certification run.

    ``subject`` identifies what was checked (topology, routing, drain
    cycles, fault snapshot); ``proof`` is present exactly when the verdict
    is ``CERTIFIED`` and ``counterexample`` exactly when it is
    ``REFUTED``. :meth:`as_dict` is deterministic: link sets are sorted,
    cycles are rotated to start at their smallest link, and no timestamps
    or process state enter the payload.
    """

    verdict: str
    subject: Mapping[str, Any]
    proof: Optional[Mapping[str, Any]] = None
    counterexample: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if self.verdict not in (CERTIFIED, REFUTED):
            raise ValueError(f"unknown verdict {self.verdict!r}")
        if (self.verdict == CERTIFIED) == (self.counterexample is not None):
            raise ValueError(
                "CERTIFIED requires a proof and no counterexample; "
                "REFUTED requires a counterexample"
            )

    @property
    def certified(self) -> bool:
        return self.verdict == CERTIFIED

    def as_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "subject": dict(self.subject),
            "proof": None if self.proof is None else dict(self.proof),
            "counterexample": (
                None if self.counterexample is None
                else dict(self.counterexample)
            ),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        """One human-readable line (the CLI's non-JSON output)."""
        subject = self.subject
        what = subject.get("claim", subject.get("kind", "configuration"))
        head = f"{self.verdict}: {subject.get('topology', '?')} [{what}]"
        if self.certified:
            proof = self.proof or {}
            return f"{head} via {proof.get('method', '?')}"
        counter = self.counterexample or {}
        kind = counter.get("kind", "?")
        if kind == "turn-cycle":
            cycle = " -> ".join(counter.get("links", []))
            return f"{head}: turn-cycle of length {counter.get('length')}: {cycle}"
        if kind == "buffer-cycle":
            cycle = " -> ".join(
                f"{a}->{b}" for a, b in counter.get("links", [])
            )
            return (
                f"{head}: buffer-cycle of length {counter.get('length')}: "
                f"{cycle}"
            )
        if kind == "uncovered-links":
            return (
                f"{head}: missing={counter.get('missing')} "
                f"extra={counter.get('extra')}"
            )
        return f"{head}: {kind}"


# ----------------------------------------------------------------------
# Restricted channel-dependency graph construction
# ----------------------------------------------------------------------
def routing_for(name: str, index: FabricIndex) -> RoutingFunction:
    """Instantiate the routing function called *name* over *index*."""
    if name == "dor":
        return DimensionOrderRouting(index)
    if name == "adaptive":
        return AdaptiveMinimalRouting(index)
    if name == "updown":
        return UpDownRouting(index)
    raise ValueError(
        f"unknown routing function {name!r}; choose from {ROUTING_NAMES}"
    )


def build_restricted_cdg(
    index: FabricIndex, routing: RoutingFunction
) -> List[List[int]]:
    """Adjacency (link id -> sorted successor link ids) of reachable turns.

    An edge ``l -> m`` means: for some destination ``d``, a packet routed
    to ``d`` can hold ``l`` (i.e. ``l`` is offered by the routing function
    at ``l.src`` for ``d`` in some reachable phase) while requesting ``m``
    at ``l.dst``. Dead links and routers (the index's fault state) are
    excluded.
    """
    n = index.num_nodes
    num_links = index.num_links
    phases: Tuple[bool, ...] = (True, False) if routing.stateful else (True,)

    def alive(link: int) -> bool:
        return (
            link not in index.dead_links
            and index.link_src[link] not in index.dead_routers
            and index.link_dst[link] not in index.dead_routers
        )

    successors: List[set] = [set() for _ in range(num_links)]
    for dst in range(n):
        if dst in index.dead_routers:
            continue
        # Candidate tables for this destination, per (router, phase).
        cand: Dict[Tuple[int, bool], frozenset] = {}
        for router in range(n):
            if router == dst or router in index.dead_routers:
                continue
            for phase in phases:
                cand[(router, phase)] = frozenset(
                    routing.route_candidates(router, dst, up_phase=phase)
                )
        for link in range(num_links):
            if not alive(link):
                continue
            src, mid = index.link_src[link], index.link_dst[link]
            if src == dst or mid == dst:
                # A packet at its destination ejects; it neither leaves the
                # destination nor requests a turn out of it.
                continue
            for phase in phases:
                if link not in cand.get((src, phase), ()):
                    continue
                arrival = routing.arrival_phase(link, phase)
                for m in cand.get((mid, arrival), ()):
                    if alive(m):
                        successors[link].add(m)
    return [sorted(s) for s in successors]


def topological_link_order(
    adjacency: Sequence[Sequence[int]],
) -> Optional[List[int]]:
    """Kahn topological order of the dependency graph, or None if cyclic.

    The returned order is itself the acyclicity certificate: every edge of
    *adjacency* goes strictly forward in it, which any third party can
    re-check in linear time.
    """
    n = len(adjacency)
    indegree = [0] * n
    for succs in adjacency:
        for m in succs:
            indegree[m] += 1
    # Sorted frontier keeps the emitted order deterministic.
    frontier = sorted(i for i in range(n) if indegree[i] == 0)
    order: List[int] = []
    while frontier:
        node = frontier.pop(0)
        order.append(node)
        changed = False
        for m in adjacency[node]:
            indegree[m] -= 1
            if indegree[m] == 0:
                frontier.append(m)
                changed = True
        if changed:
            frontier.sort()
    return order if len(order) == n else None


def find_turn_cycle(
    adjacency: Sequence[Sequence[int]],
) -> Optional[List[int]]:
    """A minimal cycle of the dependency graph as a link-id list, or None.

    Per-node BFS: for each node the shortest closed walk through it is
    found; the global minimum (ties broken by smallest starting node) is
    returned, rotated to begin at its smallest member. Runs in
    ``O(V * (V + E))`` — fine at channel-dependency-graph sizes.
    """
    n = len(adjacency)
    best: Optional[List[int]] = None
    for start in range(n):
        if best is not None and len(best) == 2:
            break  # a 2-cycle is globally minimal (self-loops are impossible)
        parent: Dict[int, int] = {}
        depth = {start: 0}
        frontier = [start]
        found: Optional[List[int]] = None
        while frontier and found is None:
            next_frontier: List[int] = []
            for node in frontier:
                if best is not None and depth[node] + 1 >= len(best):
                    continue  # cannot beat the incumbent from here
                for m in adjacency[node]:
                    if m == start:
                        cycle = [node]
                        while cycle[-1] != start:
                            cycle.append(parent[cycle[-1]])
                        cycle.reverse()
                        found = cycle
                        break
                    if m not in depth:
                        depth[m] = depth[node] + 1
                        parent[m] = node
                        next_frontier.append(m)
                if found is not None:
                    break
            frontier = next_frontier
        if found is not None and (best is None or len(found) < len(best)):
            best = found
    if best is None:
        return None
    pivot = best.index(min(best))
    return best[pivot:] + best[:pivot]


# ----------------------------------------------------------------------
# Serialisation helpers (everything sorted / order-stable)
# ----------------------------------------------------------------------
def _link_label(link: Link) -> str:
    return f"{link.src}->{link.dst}"


def _link_pairs(links: Sequence[Link]) -> List[List[int]]:
    return [[link.src, link.dst] for link in sorted(links)]


def _topology_subject(topology: Topology) -> Dict[str, Any]:
    return {
        "topology": topology.name,
        "nodes": topology.num_nodes,
        "links": 2 * topology.num_edges,
    }


# ----------------------------------------------------------------------
# Certification engines
# ----------------------------------------------------------------------
def certify_routing(
    topology: Topology,
    routing: Union[str, RoutingFunction],
    index: Optional[FabricIndex] = None,
    subject_extra: Optional[Mapping[str, Any]] = None,
    node_labels: Optional[Sequence[int]] = None,
) -> Certificate:
    """Certify (or refute) acyclicity of one routing function's CDG.

    ``CERTIFIED`` means the restricted channel-dependency graph is acyclic
    — the routing function is deadlock-free by construction. ``REFUTED``
    carries a minimal reachable turn-cycle as the counterexample.

    *node_labels* relabels router ids in the emitted proof or
    counterexample (used when certifying a renumbered component of a
    larger post-fault topology).
    """
    if index is None:
        index = FabricIndex(topology)
    name = routing if isinstance(routing, str) else type(routing).__name__
    if isinstance(routing, str):
        routing = routing_for(routing, index)

    def label(link: Link) -> str:
        if node_labels is None:
            return _link_label(link)
        return f"{node_labels[link.src]}->{node_labels[link.dst]}"

    adjacency = build_restricted_cdg(index, routing)
    num_turns = sum(len(s) for s in adjacency)
    subject = _topology_subject(topology)
    subject.update({
        "claim": "routing-acyclicity",
        "routing": name,
        "turns": num_turns,
    })
    if subject_extra:
        subject.update(subject_extra)
    order = topological_link_order(adjacency)
    if order is not None:
        links = index.links
        proof = {
            "method": "topological-link-order",
            "links": len(links),
            "turns": num_turns,
            # The order is the checkable proof: every legal turn goes
            # strictly forward in it.
            "link_order": [label(links[i]) for i in order],
        }
        return Certificate(CERTIFIED, subject, proof=proof)
    cycle = find_turn_cycle(adjacency)
    assert cycle is not None  # Kahn failed, so a cycle must exist
    routers = [index.link_src[i] for i in cycle]
    if node_labels is not None:
        routers = [node_labels[r] for r in routers]
    counter = {
        "kind": "turn-cycle",
        "length": len(cycle),
        "links": [label(index.links[i]) for i in cycle],
        "routers": routers,
    }
    return Certificate(REFUTED, subject, counterexample=counter)


def certify_drain_cover(
    topology: Topology,
    paths: Sequence[Union[DrainPath, Sequence[Link]]],
    subject_extra: Optional[Mapping[str, Any]] = None,
) -> Certificate:
    """Certify that *paths* is a valid drain cover of *topology*.

    The drain cover must consist of closed walks of legal turns (each link
    handing over to a link leaving its endpoint) that together cover every
    unidirectional link of *topology* exactly once. Refutations reuse the
    :class:`~repro.drain.path.DrainPathError` payload shape: sorted
    ``missing`` / ``extra`` link-pair lists, or the broken turn.
    """
    subject = _topology_subject(topology)
    subject.update({"claim": "drain-coverage", "cycles": len(paths)})
    if subject_extra:
        subject.update(subject_extra)
    link_lists: List[List[Link]] = [
        list(p.links) if isinstance(p, DrainPath) else [
            link if isinstance(link, Link) else Link(*link) for link in p
        ]
        for p in paths
    ]
    # Every cycle must be a closed walk of legal turns.
    for ci, links in enumerate(link_lists):
        if not links:
            counter = {"kind": "empty-cycle", "cycle": ci}
            return Certificate(REFUTED, subject, counterexample=counter)
        for i, link in enumerate(links):
            nxt = links[(i + 1) % len(links)]
            if link.dst != nxt.src:
                counter = {
                    "kind": "broken-cycle",
                    "cycle": ci,
                    "position": i,
                    "links": [_link_label(link), _link_label(nxt)],
                }
                return Certificate(REFUTED, subject, counterexample=counter)
    # Exact coverage: every surviving unidirectional link exactly once.
    expected = set(topology.unidirectional_links())
    seen: Dict[Link, int] = {}
    duplicates: List[Link] = []
    for links in link_lists:
        for link in links:
            if link in seen:
                duplicates.append(link)
            seen[link] = seen.get(link, 0) + 1
    if duplicates:
        counter = {
            "kind": "duplicate-links",
            "duplicates": _link_pairs(sorted(set(duplicates))),
        }
        return Certificate(REFUTED, subject, counterexample=counter)
    covered = set(seen)
    if covered != expected:
        err = DrainPathError(
            "drain cover does not cover the topology exactly",
            missing=expected - covered,
            extra=covered - expected,
        )
        counter = {"kind": "uncovered-links"}
        counter.update({k: v for k, v in err.as_dict().items()
                        if k != "message"})
        return Certificate(REFUTED, subject, counterexample=counter)
    proof = {
        "method": "drain-coverage",
        "cycles": len(link_lists),
        "covered_links": len(covered),
        "cycle_lengths": [len(links) for links in link_lists],
        "cycle_roots": [
            min(link.src for link in links) for links in link_lists
        ],
    }
    return Certificate(CERTIFIED, subject, proof=proof)


def apply_schedule(topology: Topology, schedule) -> Topology:
    """End-state survivor of *topology* under a fault-schedule snapshot.

    Applies every permanent event of *schedule* (transient faults heal and
    do not change the end state): link faults remove the bidirectional
    link, router faults remove every incident link (the router remains as
    an isolated node so ids keep matching). Missing targets are ignored —
    a link can die only once.
    """
    survivor = topology.copy()
    survivor.name = f"{topology.name}-post-fault"
    for event in schedule.permanent_events():
        if event.kind == "link":
            a, b = event.target
            if survivor.has_edge(a, b):
                survivor.remove_edge(a, b)
        else:
            router = event.target[0]
            for m in list(survivor.neighbors(router)):
                survivor.remove_edge(router, m)
    return survivor


def _component_members(topology: Topology) -> List[List[int]]:
    """Sorted member lists of each connected component with >= 1 link."""
    seen: set = set()
    components: List[List[int]] = []
    for node in topology.nodes:
        if node in seen or topology.degree(node) == 0:
            continue
        members = {node}
        frontier = [node]
        while frontier:
            n = frontier.pop()
            for m in topology.neighbors(n):
                if m not in members:
                    members.add(m)
                    frontier.append(m)
        seen |= members
        components.append(sorted(members))
    return components


def _component_full(topology: Topology, members: Sequence[int]) -> Topology:
    """One component as a sub-topology on the *full* router numbering.

    Routers outside the component stay as isolated nodes, so the
    component's links keep their original ``src``/``dst`` ids — required
    for drain covers, whose cycles must name real fabric ports.
    """
    member_set = set(members)
    edges = [
        (a, b) for a, b in topology.bidirectional_links() if a in member_set
    ]
    return Topology(
        topology.num_nodes, edges, name=f"{topology.name}-c{members[0]}"
    )


def _component_compact(
    topology: Topology, members: Sequence[int]
) -> Topology:
    """One component renumbered to ``0..len(members)-1`` (connected).

    Routing functions build strictly (every pair must be routable), so
    they need a view without the isolated-node padding; pair this with
    ``node_labels=members`` to keep original ids in certificates.
    """
    renumber = {orig: i for i, orig in enumerate(members)}
    member_set = set(members)
    edges = [
        (renumber[a], renumber[b])
        for a, b in topology.bidirectional_links()
        if a in member_set
    ]
    return Topology(
        len(members), edges, name=f"{topology.name}-c{members[0]}"
    )


def certify_configuration(
    topology: Topology,
    scheme: Union[Scheme, str] = Scheme.DRAIN,
    routing: Optional[str] = None,
    drain_paths: Optional[Sequence[Union[DrainPath, Sequence[Link]]]] = None,
    schedule=None,
    method: str = "euler",
    max_circuits: Optional[int] = None,
) -> Certificate:
    """Certify one full (topology, scheme/routing, drain, faults) config.

    The static claim checked depends on the scheme:

    - ``drain``: the drain cover (given via *drain_paths*, or constructed
      per surviving component with *method*) covers every surviving
      unidirectional link exactly once;
    - ``updown``: the up*/down* dependency graph is acyclic;
    - ``escape_vc``: the escape sub-network's routing (DOR on a complete
      mesh, up*/down* otherwise — the simulator's own selection) is
      acyclic;
    - everything else (``none``/``spin``/``static_bubble``/``ideal``, or
      an explicit *routing* name): the main routing function's dependency
      graph — fully adaptive routing is expected to be **refuted**, with
      the minimal turn-cycle as the witness; those schemes rely on
      runtime recovery, not on a static property.

    *schedule* (a :class:`~repro.faults.schedule.FaultSchedule`) is
    applied first; certification then runs over the survivor, per
    connected component where components exist.
    """
    scheme = Scheme(scheme)
    survivor = apply_schedule(topology, schedule) if schedule else topology
    fault_extra: Dict[str, Any] = {}
    if schedule is not None:
        fault_extra["faults_applied"] = len(schedule.permanent_events())

    if routing is None and scheme is Scheme.DRAIN:
        if drain_paths is None:
            drain_paths = _construct_drain_cover(
                survivor, method=method, max_circuits=max_circuits
            )
            if isinstance(drain_paths, Certificate):  # construction refuted
                return drain_paths
        cert = certify_drain_cover(
            survivor, drain_paths,
            subject_extra={"scheme": scheme.value, **fault_extra},
        )
        return cert

    if routing is None:
        if scheme is Scheme.UPDOWN:
            routing = "updown"
        elif scheme is Scheme.ESCAPE_VC:
            routing = _escape_routing_name(survivor)
        else:
            routing = "adaptive"
    components = _component_members(survivor)
    if not components:
        return Certificate(
            REFUTED,
            {**_topology_subject(survivor), "claim": "routing-acyclicity",
             "scheme": scheme.value, **fault_extra},
            counterexample={"kind": "no-links", "links": 0},
        )
    if len(components) == 1 and len(components[0]) == survivor.num_nodes:
        # Fully connected: certify the survivor directly (coordinates and
        # router ids are preserved, so DOR stays instantiable).
        return certify_routing(
            survivor, routing,
            subject_extra={"scheme": scheme.value, **fault_extra},
        )
    certs: List[Certificate] = []
    for members in components:
        comp = _component_compact(survivor, members)
        comp_routing = (
            _escape_routing_name(comp)
            if scheme is Scheme.ESCAPE_VC else routing
        )
        cert = certify_routing(
            comp, comp_routing, node_labels=members,
            subject_extra={"scheme": scheme.value, **fault_extra},
        )
        if not cert.certified:
            return cert
        certs.append(cert)
    subject = _topology_subject(survivor)
    subject.update({
        "claim": "routing-acyclicity",
        "routing": routing,
        "scheme": scheme.value,
        "components": len(components),
        **fault_extra,
    })
    proof = {
        "method": "per-component-topological-link-order",
        "components": len(components),
        "component_roots": [members[0] for members in components],
    }
    return Certificate(CERTIFIED, subject, proof=proof)


def _escape_routing_name(topology: Topology) -> str:
    """The simulator's escape-VC routing selection, statically mirrored."""
    try:
        DimensionOrderRouting(FabricIndex(topology))
    except ValueError:
        return "updown"
    return "dor"


# ----------------------------------------------------------------------
# Pause-aware certification (flow_control="pause_resume")
# ----------------------------------------------------------------------
def _min_rotation_offset(items: Sequence[Any]) -> int:
    """Offset of the lexicographically-minimal rotation of *items*."""
    n = len(items)
    best = 0
    for offset in range(1, n):
        for j in range(n):
            a = items[(offset + j) % n]
            b = items[(best + j) % n]
            if a != b:
                if a < b:
                    best = offset
                break
    return best


def canonical_rotation(cycle: Sequence[Any]) -> List[Any]:
    """The lexicographically-minimal rotation of *cycle*.

    The canonical representative of a cyclic sequence: two rotations of
    the same cycle map to the same output, so rotational equivalence (the
    one degree of freedom a deadlock cycle has) becomes plain equality.
    """
    items = list(cycle)
    if len(items) < 2:
        return items
    offset = _min_rotation_offset(items)
    return items[offset:] + items[:offset]


def minimal_cycles(
    adjacency: Sequence[Sequence[int]],
) -> List[List[int]]:
    """Distinct minimal-length cycles of the graph, canonicalised.

    Runs the shortest-cycle BFS from every node, keeps every cycle of the
    globally minimal length, collapses rotationally-equivalent duplicates
    via :func:`canonical_rotation`, and returns them sorted — element 0 is
    *the* canonical minimal counterexample. Empty when the graph is
    acyclic.
    """
    n = len(adjacency)
    best_len: Optional[int] = None
    found: List[List[int]] = []
    for start in range(n):
        parent: Dict[int, int] = {}
        depth = {start: 0}
        frontier = [start]
        cycle: Optional[List[int]] = None
        while frontier and cycle is None:
            next_frontier: List[int] = []
            for node in frontier:
                if best_len is not None and depth[node] + 1 > best_len:
                    continue  # longer than the incumbent: not minimal
                for m in adjacency[node]:
                    if m == start:
                        path = [node]
                        while path[-1] != start:
                            path.append(parent[path[-1]])
                        path.reverse()
                        cycle = path
                        break
                    if m not in depth:
                        depth[m] = depth[node] + 1
                        parent[m] = node
                        next_frontier.append(m)
                if cycle is not None:
                    break
            frontier = next_frontier
        if cycle is None:
            continue
        if best_len is None or len(cycle) < best_len:
            best_len = len(cycle)
            found = [cycle]
        elif len(cycle) == best_len:
            found.append(cycle)
    unique = sorted({tuple(canonical_rotation(c)) for c in found})
    return [list(c) for c in unique]


def build_pause_bdg(
    index: FabricIndex,
    routing: RoutingFunction,
    flows: Optional[Sequence[Tuple[int, int]]] = None,
) -> List[List[int]]:
    """Pause-augmented buffer-dependency adjacency over link rows.

    Under pause/resume flow control a full (link port, VN) row asserts
    XOFF and blocks **every** packet class sharing that port — per-class
    VC separation cannot break a dependency the turn relation allows, so
    the buffer-dependency graph collapses onto link granularity: edge
    ``l -> m`` whenever a tracked packet can hold ``l`` while its
    candidates at ``l.dst`` include ``m``. *flows* (``(src, dst)`` pairs)
    restricts holding states to links reachable by packets those flows
    actually inject (packets inject in the up phase); ``None`` models
    all-pairs traffic, which reduces to the same reachable-turn relation
    as :func:`build_restricted_cdg`. The reachability approximation only
    *adds* edges relative to true holding states, keeping ``CERTIFIED``
    sound.
    """
    n = index.num_nodes
    num_links = index.num_links

    def alive(link: int) -> bool:
        return (
            link not in index.dead_links
            and index.link_src[link] not in index.dead_routers
            and index.link_dst[link] not in index.dead_routers
        )

    sources_by_dst: Dict[int, Optional[set]]
    if flows is None:
        sources_by_dst = {dst: None for dst in range(n)}
    else:
        sources_by_dst = {}
        for src, dst in flows:
            sources_by_dst.setdefault(dst, set()).add(src)

    successors: List[set] = [set() for _ in range(num_links)]
    for dst in sorted(sources_by_dst):
        if dst in index.dead_routers:
            continue
        sources = sources_by_dst[dst]
        cand: Dict[Tuple[int, bool], Tuple[int, ...]] = {}

        def candidates(router: int, phase: bool) -> Tuple[int, ...]:
            key = (router, phase)
            got = cand.get(key)
            if got is None:
                got = cand[key] = tuple(
                    routing.route_candidates(router, dst, up_phase=phase)
                )
            return got

        # BFS over (link, arrival-phase) holding states reachable from the
        # flow's injection points.
        seen: set = set()
        stack: List[Tuple[int, bool]] = []
        for src in sorted(range(n) if sources is None else sources):
            if src == dst or src in index.dead_routers:
                continue
            for link in candidates(src, True):
                if not alive(link):
                    continue
                state = (link, routing.arrival_phase(link, True))
                if state not in seen:
                    seen.add(state)
                    stack.append(state)
        while stack:
            link, phase = stack.pop()
            mid = index.link_dst[link]
            if mid == dst:
                continue  # the packet ejects; it requests no further turn
            for m in candidates(mid, phase):
                if not alive(m):
                    continue
                successors[link].add(m)
                state = (m, routing.arrival_phase(m, phase))
                if state not in seen:
                    seen.add(state)
                    stack.append(state)
    return [sorted(s) for s in successors]


def _buffer_cycle_counterexample(
    index: FabricIndex,
    cycle: Sequence[int],
    vn: int,
    node_labels: Optional[Sequence[int]] = None,
    distinct: int = 1,
) -> Dict[str, Any]:
    """A static buffer cycle in the watchdog halt-payload shape.

    Hops carry ``vc=None`` and ``packet=None`` — the static claim is about
    buffer rows, not concrete occupants — but the ``kind`` / ``length`` /
    ``routers`` / ``links`` / ``cycle`` structure matches
    :func:`repro.network.deadlock.deadlock_cycle_payload` exactly, and the
    ``links`` field is the canonical (lexicographically-minimal) rotation,
    so a dynamic wedge and its static refutation compare equal directly.
    ``distinct_minimal_cycles`` annotates how many rotationally-distinct
    minimal cycles the graph contains (duplicates are already collapsed).
    """
    def nid(router: int) -> int:
        return router if node_labels is None else node_labels[router]

    pairs = [
        [nid(index.link_src[link]), nid(index.link_dst[link])]
        for link in cycle
    ]
    # Canonicalise in the emitted (possibly relabelled) pair space.
    offset = _min_rotation_offset(pairs) if len(pairs) > 1 else 0
    pairs = pairs[offset:] + pairs[:offset]
    local = list(cycle[offset:]) + list(cycle[:offset])
    hops: List[Dict[str, Any]] = []
    routers: List[int] = []
    for link, pair in zip(local, pairs):
        router = pair[1]  # the input buffer row lives at the link's dst
        if router not in routers:
            routers.append(router)
        hops.append({
            "router": router,
            # Port ids only exist in the full fabric numbering; a
            # renumbered component has no meaningful port to name.
            "port": link if node_labels is None else None,
            "vn": vn,
            "vc": None,
            "link": list(pair),
            "packet": None,
        })
    return {
        "kind": "buffer-cycle",
        "length": len(hops),
        "routers": routers,
        "links": [list(pair) for pair in pairs],
        "cycle": hops,
        "distinct_minimal_cycles": distinct,
    }


def _certify_pause_bdg(
    topology: Topology,
    routing_name: str,
    flows: Optional[Sequence[Tuple[int, int]]],
    vn: int,
    subject: Mapping[str, Any],
    pause_model: Mapping[str, Any],
    node_labels: Optional[Sequence[int]] = None,
) -> Certificate:
    """Certify acyclicity of one component's pause-augmented BDG."""
    index = FabricIndex(topology)
    routing = routing_for(routing_name, index)
    adjacency = build_pause_bdg(index, routing, flows)
    pause_edges = sum(len(s) for s in adjacency)
    subject = dict(subject)
    subject.update({"routing": routing_name, "pause_edges": pause_edges})

    def label(link: Link) -> str:
        if node_labels is None:
            return _link_label(link)
        return f"{node_labels[link.src]}->{node_labels[link.dst]}"

    order = topological_link_order(adjacency)
    if order is not None:
        links = index.links
        proof = {
            "method": "pause-augmented-topological-link-order",
            "links": len(links),
            "pause_edges": pause_edges,
            "pfc": dict(pause_model),
            # The order is the checkable proof: every pause-augmented
            # buffer dependency goes strictly forward in it.
            "link_order": [label(links[i]) for i in order],
        }
        return Certificate(CERTIFIED, subject, proof=proof)
    cycles = minimal_cycles(adjacency)
    assert cycles  # Kahn failed, so a cycle must exist
    counter = _buffer_cycle_counterexample(
        index, cycles[0], vn, node_labels=node_labels, distinct=len(cycles)
    )
    return Certificate(REFUTED, subject, counterexample=counter)


def certify_pause_configuration(
    topology: Topology,
    scheme: Union[Scheme, str] = Scheme.NONE,
    pfc: Optional[PfcConfig] = None,
    vcs_per_vn: int = 2,
    num_vns: int = 1,
    flows: Optional[Sequence[Tuple[int, int]]] = None,
    routing: Optional[str] = None,
    schedule=None,
    method: str = "euler",
    max_circuits: Optional[int] = None,
    vn: int = 0,
) -> Certificate:
    """Certify one lossless (``flow_control="pause_resume"``) config.

    Infeasible :class:`~repro.core.config.PfcConfig` rows (thresholds
    that do not fit the ``vcs_per_vn`` row depth) raise ``ValueError``
    with the shared feasibility detail — such a configuration cannot even
    stay lossless, so there is nothing to certify. Feasible ones are
    decided per scheme:

    - ``drain``: the escape-VC pause exemption lets drain rotations
      bypass XOFF, so the credit-mode drain-cover account carries over —
      ``CERTIFIED`` with the cover plus an exemption account, or
      ``REFUTED`` with the cover defect;
    - ``escape_vc``: the exemption keeps the escape sub-network credit-
      behaved — ``CERTIFIED`` iff its restricted CDG is acyclic;
    - ``updown`` (or an explicit *routing* name): no exemption applies —
      ``CERTIFIED`` iff the pause-augmented BDG over that routing
      relation, restricted to *flows*, is acyclic;
    - everything else (``none``/``spin``/``static_bubble``/``ideal``):
      the pause-augmented BDG over the fully-adaptive relation — expected
      ``REFUTED``, with the minimal CBD buffer cycle (canonical rotation,
      watchdog payload shape) as the counterexample.

    *flows* restricts the BDG to the holding states a concrete flow set
    can reach (the harness's lossless trials pin exactly such sets);
    *vn* only labels the emitted counterexample rows — the dependency
    relation is identical across VNs.
    """
    scheme = Scheme(scheme)
    pfc = PfcConfig() if pfc is None else pfc
    if vcs_per_vn < 1:
        raise ValueError("vcs_per_vn must be at least 1")
    if num_vns < 1:
        raise ValueError("num_vns must be at least 1")
    if not 0 <= vn < num_vns:
        raise ValueError(f"vn {vn} outside 0..{num_vns - 1}")
    err = pfc.feasibility_error(vcs_per_vn)
    if err is not None:
        raise ValueError(err)

    survivor = apply_schedule(topology, schedule) if schedule else topology
    fault_extra: Dict[str, Any] = {}
    if schedule is not None:
        fault_extra["faults_applied"] = len(schedule.permanent_events())

    flow_list: Optional[List[Tuple[int, int]]] = None
    if flows is not None:
        flow_list = sorted({(int(s), int(d)) for s, d in flows})
        for s, d in flow_list:
            if not (0 <= s < survivor.num_nodes
                    and 0 <= d < survivor.num_nodes):
                raise ValueError(
                    f"flow ({s}, {d}) names a router outside the topology"
                )
            if s == d:
                raise ValueError(f"flow ({s}, {d}) has identical endpoints")

    exempt = routing is None and scheme in (Scheme.DRAIN, Scheme.ESCAPE_VC)
    pause_model = {
        "pause_threshold": pfc.pause_threshold,
        "resume_threshold": pfc.resume_threshold,
        "headroom": pfc.headroom,
        "row_depth": vcs_per_vn,
        "rows": 2 * survivor.num_edges * num_vns,
        "exempt_escape_vc": exempt,
    }
    subject = _topology_subject(survivor)
    subject.update({
        "claim": "pause-deadlock-freedom",
        "scheme": scheme.value,
        "flow_control": "pause_resume",
        "flows": "all-pairs" if flow_list is None else len(flow_list),
        "vn": vn,
        "pfc": dict(pause_model),
        **fault_extra,
    })

    if routing is None and scheme is Scheme.DRAIN:
        inner = certify_configuration(
            survivor, Scheme.DRAIN, method=method, max_circuits=max_circuits
        )
        if inner.certified:
            proof = {
                "method": "pause-exempt-drain-cover",
                "pfc": dict(pause_model),
                "exemption": {
                    "escape_vc": 0,
                    "pause_exempt_escape": True,
                    "account": (
                        "escape (VC0) claims bypass XOFF, so drain "
                        "rotations proceed regardless of pause state; the "
                        "drain cover then guarantees eventual progress "
                        "exactly as in credit mode"
                    ),
                },
                "drain": dict(inner.proof or {}),
            }
            subject["cycles"] = inner.subject.get("cycles")
            return Certificate(CERTIFIED, subject, proof=proof)
        return Certificate(
            REFUTED, subject,
            counterexample=dict(inner.counterexample or {}),
        )

    if routing is None and scheme is Scheme.ESCAPE_VC:
        inner = certify_configuration(survivor, Scheme.ESCAPE_VC)
        if inner.certified:
            proof = {
                "method": "pause-exempt-escape-acyclicity",
                "pfc": dict(pause_model),
                "exemption": {
                    "escape_vc": 0,
                    "pause_exempt_escape": True,
                    "account": (
                        "escape (VC0) claims bypass XOFF, so the escape "
                        "sub-network keeps its credit-mode behaviour; its "
                        "acyclic dependency graph guarantees every escape "
                        "packet progresses, and adaptive packets always "
                        "hold an escape candidate"
                    ),
                },
                "escape": dict(inner.proof or {}),
            }
            return Certificate(CERTIFIED, subject, proof=proof)
        return Certificate(
            REFUTED, subject,
            counterexample=dict(inner.counterexample or {}),
        )

    if routing is None:
        routing = "updown" if scheme is Scheme.UPDOWN else "adaptive"
    components = _component_members(survivor)
    if not components:
        return Certificate(
            REFUTED, subject,
            counterexample={"kind": "no-links", "links": 0},
        )
    if len(components) == 1 and len(components[0]) == survivor.num_nodes:
        return _certify_pause_bdg(
            survivor, routing, flow_list, vn, subject, pause_model
        )
    roots: List[int] = []
    for members in components:
        comp = _component_compact(survivor, members)
        comp_flows: Optional[List[Tuple[int, int]]] = None
        if flow_list is not None:
            member_set = set(members)
            renumber = {orig: i for i, orig in enumerate(members)}
            # Flows crossing components can never be routed, so they
            # occupy no network buffer and add no dependency.
            comp_flows = [
                (renumber[s], renumber[d]) for s, d in flow_list
                if s in member_set and d in member_set
            ]
        cert = _certify_pause_bdg(
            comp, routing, comp_flows, vn, subject, pause_model,
            node_labels=members,
        )
        if not cert.certified:
            return cert
        roots.append(members[0])
    subject = dict(subject)
    subject.update({"routing": routing, "components": len(components)})
    proof = {
        "method": "per-component-pause-augmented-link-order",
        "components": len(components),
        "component_roots": roots,
        "pfc": dict(pause_model),
    }
    return Certificate(CERTIFIED, subject, proof=proof)


def _construct_drain_cover(
    survivor: Topology,
    method: str,
    max_circuits: Optional[int],
) -> Union[List[DrainPath], Certificate]:
    """Build one drain cycle per surviving component, or a refutation."""
    components = _component_members(survivor)
    if not components:
        subject = _topology_subject(survivor)
        subject.update({"claim": "drain-coverage", "cycles": 0})
        return Certificate(
            REFUTED, subject,
            counterexample={"kind": "no-links", "links": 0},
        )
    paths: List[DrainPath] = []
    for members in components:
        comp = _component_full(survivor, members)
        try:
            if method == "hawick-james":
                paths.append(
                    hawick_james_drain_path(comp, max_circuits=max_circuits)
                )
            elif method == "euler":
                # start= skips the global connectivity precondition, which
                # the isolated-node padding of full-numbering components
                # would otherwise fail.
                paths.append(euler_drain_path(comp, start=members[0]))
            else:
                raise ValueError(f"unknown drain-path method {method!r}")
        except DrainPathError as exc:
            subject = _topology_subject(survivor)
            subject.update({"claim": "drain-coverage", "cycles": len(paths)})
            counter = {"kind": "uncovered-links", "component": comp.name}
            counter.update({k: v for k, v in exc.as_dict().items()
                            if k != "message"})
            return Certificate(REFUTED, subject, counterexample=counter)
    return paths
