"""Differential validation of the pause-aware static certifier.

The certifier (:func:`repro.analysis.certify_pause_configuration`) and
the simulator's pause-aware deadlock oracle model the same object — the
buffer-dependency structure of a lossless (pause/resume) fabric — from
opposite ends. This module closes the loop between them in both
directions:

- **Refutation matching**: when the certifier REFUTES a configuration
  and a live run of the same (topology, scheme, pfc, flow-set) halts on
  the watchdog, the static counterexample and the dynamic halt payload
  must name the same buffer cycle. Both sides are canonicalised to the
  lexicographically-minimal rotation at emission time, so the comparison
  is plain equality on the ``links`` field.
- **Certified storm survival**: any configuration the certifier accepts
  must survive seeded pause-storm schedules (stuck-XOFF rows, resume
  jitter, victim bursts) without a watchdog halt and without losing
  packets. A CERTIFIED verdict that a storm can falsify would be a
  soundness bug, so the sweep is a standing adversarial check.

Schemes whose certificate rests on the escape-VC pause exemption and the
drain cover (``drain``) guarantee *eventual* progress — the oracle
legitimately reports transient wedges between drain epochs — so their
sweep runs under the degradation ladder and asserts lossless completion.
Schemes certified by an acyclic dependency graph (``updown``,
``escape_vc``) guarantee continuous progress and run with
``halt_on_deadlock`` armed: any watchdog halt fails the sweep outright.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.config import Scheme, SimConfig
from ..topology.graph import Topology
from .certifier import Certificate, canonical_rotation

__all__ = [
    "canonical_cycle_links",
    "refutation_matches",
    "storm_survival_sweep",
]

#: Schemes whose pause certificate guarantees continuous progress — a
#: watchdog halt under any storm falsifies the certificate directly.
_HALT_SCHEMES = frozenset({Scheme.UPDOWN, Scheme.ESCAPE_VC})


def canonical_cycle_links(
    payload: Optional[Mapping[str, Any]],
) -> List[List[int]]:
    """The ``links`` field of a buffer-cycle payload, canonicalised.

    Both the watchdog payload and the certifier counterexample already
    emit canonical rotations; re-canonicalising here makes the comparison
    robust to payloads produced by older runs (cached harness results
    predate the canonicalisation).
    """
    if payload is None:
        return []
    links = [list(pair) for pair in payload.get("links") or []
             if pair is not None]
    return canonical_rotation(links)


def refutation_matches(
    certificate: Certificate,
    payload: Optional[Mapping[str, Any]],
) -> bool:
    """True when static refutation and dynamic wedge name the same cycle.

    *certificate* is the static verdict for the configuration the halted
    run executed; *payload* the watchdog's ``cycle_payload``. Matching is
    rotation-invariant equality of the buffer cycle's link sequence.
    """
    if certificate.certified or payload is None:
        return False
    counter = certificate.counterexample or {}
    if counter.get("kind") != "buffer-cycle":
        return False
    if payload.get("kind") != "buffer-cycle":
        return False
    static_links = canonical_cycle_links(counter)
    return bool(static_links) and (
        static_links == canonical_cycle_links(payload)
    )


def storm_survival_sweep(
    topology: Topology,
    config: SimConfig,
    flows: Sequence[Any],
    *,
    seeds: Sequence[int],
    cycles: int,
    num_events: int = 6,
    window: Optional[Tuple[int, int]] = None,
) -> Dict[str, Any]:
    """Run a CERTIFIED config through seeded pause storms; report halts.

    One trial per seed in *seeds*: the seed parameterises both the storm
    schedule (:meth:`repro.faults.PauseStormSchedule.generate`) and the
    simulation seed, so the sweep covers independent schedules.  The
    result's ``survived`` is True iff no run halted on the watchdog, all
    closed flows completed, and no packet was lost — the dynamic
    obligations a pause certificate takes on.
    """
    from ..faults.storm import PauseStormSchedule
    from ..harness.trials import execute_trial, lossless_trial

    if config.flow_control != "pause_resume":
        raise ValueError(
            "storm survival sweeps exercise pause/resume configurations; "
            f"got flow_control={config.flow_control!r}"
        )
    scheme = config.scheme
    if scheme is not Scheme.DRAIN and scheme not in _HALT_SCHEMES:
        raise ValueError(
            f"scheme {scheme.value!r} has no pause certificate to validate"
        )
    if window is None:
        window = (200, max(400, cycles // 4))
    use_ladder = scheme is Scheme.DRAIN
    runs: List[Dict[str, Any]] = []
    for seed in seeds:
        storm = PauseStormSchedule.generate(
            topology, num_events, seed, window,
            num_vns=config.network.num_vns,
        )
        spec = lossless_trial(
            topology, config.with_seed(seed), flows, cycles,
            storm=storm,
            degradation_ladder=use_ladder,
            halt_on_deadlock=not use_ladder,
        )
        row = execute_trial(spec)
        runs.append({
            "seed": seed,
            "deadlocked": bool(row["deadlocked"]),
            "finished": bool(row["finished"]),
            "lost_forever": int(row["lost_forever"]),
            "recovery_ratio": float(row["recovery_ratio"]),
            "storm_events": len(storm),
        })
    halts = sum(1 for r in runs if r["deadlocked"])
    survived = all(
        not r["deadlocked"] and r["finished"] and r["lost_forever"] == 0
        for r in runs
    )
    return {
        "scheme": scheme.value,
        "mode": "degradation-ladder" if use_ladder else "halt-on-deadlock",
        "runs": runs,
        "halts": halts,
        "survived": survived,
    }
