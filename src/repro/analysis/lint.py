"""Determinism lint pass (``repro-drain lint``).

An AST-based checker that statically enforces the reproducibility
invariants the harness depends on. Every rule targets a construct that has
actually corrupted a result cache or broken a golden summary somewhere:

- **DET001** — bare ``hash()``. Python salts ``str``/``bytes`` hashing per
  process (``PYTHONHASHSEED``), so ``hash()`` output is not stable across
  runs. Use :func:`repro.core.rng.stable_hash` (BLAKE2b) instead.
- **DET002** — calls through the module-level ``random`` state
  (``random.random()``, ``random.shuffle(...)``, ``random.seed(...)``, …).
  Shared global state makes trial outcomes order-dependent; construct a
  ``random.Random(seed)`` instance instead (``random.Random`` itself is
  allowed — it *is* the fix).
- **DET003** — wall-clock reads (``time.time``/``time_ns``/``monotonic``,
  ``datetime.now``/``utcnow``/``today``, ``date.today``) in trial code.
  Timing is environment-dependent and must never leak into trial results.
  Harness bookkeeping files that legitimately timestamp journals are
  allowlisted (:data:`WALL_CLOCK_ALLOWED`).
- **DET004** — non-JSON-able literals (set / set comprehension / lambda /
  generator expression / ``bytes``) passed inside ``TrialSpec(...)``
  parameters. Specs must round-trip through canonical JSON to digest
  stably; sets also iterate in hash order.
- **DET005** — mutating (``del`` / ``.pop()`` / ``.update()`` /
  subscript-assignment) a dict obtained from an ``as_dict()`` call. Golden
  summaries are compared shape-for-shape; mutate a *copy* if a derived
  view is needed.
- **DET006** — mutable default arguments (``def f(x=[])``). The shared
  default bleeds state across calls — classic, and it has non-obvious
  interactions with result caching.

The **engine-parity family** (DET007–DET009) guards the scalar/vectorized
draw-order contract: all movement engines must be bit-identical, which
constrains how kernel code (everything under ``repro/network`` — see
:func:`is_kernel_path`) may consume randomness and shared state:

- **DET007** — RNG draw-method calls (``.random()``/``.randrange()``/
  ``.shuffle()``/…) inside a kernel loop. Engines share one inline LCG
  stream (``fabric._lcg``); an ad-hoc draw inside a movement loop
  desynchronises the streams between engines even when each engine is
  individually deterministic.
- **DET008** — mutation of exported :class:`~repro.network.index.
  DenseCandidateTables` (writes to their ``offsets``/``counts``/
  ``links``/``epoch``). The tables are shared between engines and the
  routing function; an in-place write silently desynchronises them
  (the arrays are also frozen at runtime — this catches it at review
  time).
- **DET009** — iteration over an unordered set (set literals/
  comprehensions, ``set()``/``frozenset()`` results, and the index's
  ``dead_links``/``dead_routers``) in kernel code. Set order is hash-
  dependent; iterate ``sorted(...)`` instead. Plain dicts iterate in
  insertion order (guaranteed since 3.7) and are not flagged.

- **DET010** — wall-clock readers imported by name (``from time import
  perf_counter``) anywhere outside the bench/harness allowlist sentinel
  (:data:`WALL_CLOCK_ALLOWED`). A from-import binds the reader to a bare
  name, which evades DET003's attribute-based detection; import the
  module and read through it (so DET003 can see the call), or move the
  timing into an allowlisted boundary file.

- **DET011** — per-trial branching inside a batched inner loop. The
  cross-trial batch runner (``repro.network.batched``) dispatches
  members round-robin; a branch on member state inside the dispatch
  loop reintroduces exactly the per-trial Python overhead batching
  exists to amortize, and — worse — lets one member's state steer
  another's schedule. Only the live-mask/eviction fields
  (:data:`_BATCH_MASK_FIELDS`: ``retired``/``evicted``/``live``) may be
  tested there; anything else belongs inside the member's own step (or
  the member belongs on the solo fallback path). Scoped to kernel code
  via :func:`is_kernel_path`, and only to loops over a member
  collection (an iterable named ``live``/``members``) nested inside
  another loop — the scheduling rounds.

- **DET012** — direct ``all_pairs_distances()`` calls outside the
  implementation (``topology/graph.py``) and the compiled-structure
  store (``structcache/store.py``). The all-pairs BFS is the single most
  expensive boot computation at datacenter scale; every consumer must go
  through ``repro.structcache.distances`` — the content-digest memo
  layer that computes each matrix once per process and persists it —
  or the duplicate-BFS regressions PR 10 removed creep straight back in
  (allowlist: :data:`ALL_PAIRS_ALLOWED`).

A finding on a line ending with the pragma comment ``# det: allow`` is
suppressed; the pragma documents an audited exception in place.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

__all__ = [
    "ALL_PAIRS_ALLOWED",
    "LintFinding",
    "WALL_CLOCK_ALLOWED",
    "is_kernel_path",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Files (matched by trailing path components) allowed to read the wall
#: clock: harness bookkeeping that timestamps journals and manifests for
#: humans, never for trial results.
WALL_CLOCK_ALLOWED: Tuple[str, ...] = (
    "harness/pool.py",
    "harness/checkpoint.py",
    "harness/manifest.py",
    # The bench layer's timing boundary: wall time is the measurement
    # there, and it never feeds back into trial results.
    "bench/runner.py",
)

#: Files (matched by trailing path components) allowed to call
#: ``all_pairs_distances()`` directly: the implementation itself and the
#: compiled-structure store's memo layer. Every other caller goes through
#: ``repro.structcache.distances`` so each matrix is computed once per
#: structure and shared (DET012).
ALL_PAIRS_ALLOWED: Tuple[str, ...] = (
    "topology/graph.py",
    "structcache/store.py",
)

#: Pragma suppressing any finding on its line.
PRAGMA = "# det: allow"


def is_kernel_path(path: str) -> bool:
    """True when *path* is movement-kernel code (under ``repro/network``).

    The engine-parity rules DET007–DET009 apply only here: kernel code is
    where the scalar and vectorized engines must replay each other's draw
    order and state reads bit-for-bit.
    """
    parts = path.replace(os.sep, "/").split("/")
    return "network" in parts[:-1]


#: RNG draw methods whose call order is part of the engine contract.
_RNG_DRAW_METHODS: Set[str] = {
    "random", "randrange", "randint", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "gauss", "normalvariate",
    "betavariate", "expovariate", "triangular",
}

#: Attributes of exported DenseCandidateTables that must never be
#: written after construction (the arrays are frozen at runtime too).
_TABLES_FIELDS: Tuple[str, ...] = ("offsets", "counts", "links", "epoch")

#: FabricIndex attributes that are genuine unordered sets; iterating
#: them directly in kernel code is hash-order dependent.
_UNORDERED_INDEX_ATTRS: Tuple[str, ...] = ("dead_links", "dead_routers")

#: BatchMember fields a batched inner loop may branch on: the live-mask
#: and eviction markers that steer the round-robin dispatch itself.
_BATCH_MASK_FIELDS: Tuple[str, ...] = ("retired", "evicted", "live")

#: Iterable names recognised as a batch-member collection (``for m in
#: live`` / ``for m in self.members``).
_BATCH_COLLECTION_NAMES: Tuple[str, ...] = ("live", "members")

#: ``time``-module functions that read the wall clock; importing one by
#: name binds it to a bare identifier DET003 cannot see.
_WALL_CLOCK_FROM_IMPORTS: Set[str] = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
}

_WALL_CLOCK_CALLS: Set[Tuple[str, str]] = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_MUTABLE_DEFAULTS = (ast.List, ast.Dict, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)

_NON_JSON_LITERALS = (ast.Set, ast.SetComp, ast.Lambda, ast.GeneratorExp)


@dataclass(frozen=True, order=True)
class LintFinding:
    """One determinism violation, sortable into deterministic report order."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of a call target (``a.b.c`` -> "a.b.c")."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: Sequence[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: List[LintFinding] = []
        self.wall_clock_ok = any(
            path.replace(os.sep, "/").endswith(suffix) for suffix in WALL_CLOCK_ALLOWED
        )
        self.all_pairs_ok = any(
            path.replace(os.sep, "/").endswith(suffix) for suffix in ALL_PAIRS_ALLOWED
        )
        self.kernel = is_kernel_path(path)
        #: Nesting depth of for/while loops (kernel rules key off it).
        self.loop_depth = 0
        #: Variable names assigned from an ``as_dict()`` call in the current
        #: scope stack (tracked flat — shadowing across scopes is rare enough
        #: that a false positive there is acceptable and pragma-escapable).
        self.as_dict_vars: Set[str] = set()
        #: Names bound to exported DenseCandidateTables instances.
        self.tables_vars: Set[str] = set()
        #: Names bound to set()/frozenset()/set-literal values.
        self.set_vars: Set[str] = set()
        #: Loop variables of batched inner loops currently in scope
        #: (DET011: branches on their non-mask attributes are per-trial
        #: work smuggled into the lockstep dispatch).
        self.batch_member_vars: Set[str] = set()

    # -- reporting ------------------------------------------------------
    def report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if 1 <= line <= len(self.lines) and self.lines[line - 1].rstrip().endswith(PRAGMA):
            return
        self.findings.append(
            LintFinding(self.path, line, getattr(node, "col_offset", 0), code, message)
        )

    # -- DET006: mutable default arguments ------------------------------
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
            if isinstance(default, _MUTABLE_DEFAULTS):
                self.report(
                    default,
                    "DET006",
                    f"mutable default argument in {node.name!r}; default is "
                    "shared across calls — use None and construct inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- calls: DET001/DET002/DET003/DET004/DET005 ----------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "hash":
            self.report(
                node,
                "DET001",
                "bare hash() is salted per process (PYTHONHASHSEED); "
                "use repro.core.rng.stable_hash",
            )
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted.startswith("random.") and dotted.count(".") == 1:
                attr = func.attr
                if attr not in ("Random", "SystemRandom"):
                    self.report(
                        node,
                        "DET002",
                        f"call through module-level random state (random.{attr}); "
                        "construct a seeded random.Random instance",
                    )
            base = _dotted(func.value).rsplit(".", 1)[-1]
            if (base, func.attr) in _WALL_CLOCK_CALLS and not self.wall_clock_ok:
                self.report(
                    node,
                    "DET003",
                    f"wall-clock read {base}.{func.attr}() in trial code; "
                    "timing must not influence results (allowlist: "
                    + ", ".join(WALL_CLOCK_ALLOWED)
                    + ")",
                )
            if func.attr == "all_pairs_distances" and not self.all_pairs_ok:
                self.report(
                    node,
                    "DET012",
                    "direct all_pairs_distances() call; route it through "
                    "repro.structcache.distances (the content-digest memo "
                    "layer) so the all-pairs BFS runs once per structure "
                    "(allowlist: " + ", ".join(ALL_PAIRS_ALLOWED) + ")",
                )
            if func.attr == "pop" and isinstance(func.value, ast.Name):
                if func.value.id in self.as_dict_vars:
                    self.report(
                        node,
                        "DET005",
                        f"mutating golden-summary dict {func.value.id!r} "
                        "(.pop() on an as_dict() result); copy before reshaping",
                    )
            if (
                self.kernel
                and self.loop_depth > 0
                and func.attr in _RNG_DRAW_METHODS
                and not isinstance(func.value, ast.Constant)
            ):
                self.report(
                    node,
                    "DET007",
                    f"RNG draw .{func.attr}() inside a kernel loop; engines "
                    "must consume the shared fabric LCG stream so "
                    "scalar/vectorized draw order stays bit-identical",
                )
        if isinstance(func, ast.Name) and func.id == "TrialSpec":
            self._check_spec_params(node)
        self.generic_visit(node)

    def _check_spec_params(self, call: ast.Call) -> None:
        for sub in ast.walk(call):
            if sub is call:
                continue
            if isinstance(sub, _NON_JSON_LITERALS):
                kind = type(sub).__name__
                self.report(
                    sub,
                    "DET004",
                    f"non-JSON-able {kind} inside TrialSpec(...); params must "
                    "round-trip through canonical JSON to digest stably",
                )
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, bytes):
                self.report(
                    sub,
                    "DET004",
                    "bytes literal inside TrialSpec(...); params must "
                    "round-trip through canonical JSON to digest stably",
                )

    # -- DET005/DET008/DET009 support: track value provenance ------------
    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        is_as_dict = (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "as_dict"
        )
        is_tables = isinstance(value, ast.Call) and (
            (isinstance(value.func, ast.Name)
             and value.func.id == "DenseCandidateTables")
            or (isinstance(value.func, ast.Attribute)
                and value.func.attr == "export_tables")
        )
        is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        )
        for target in node.targets:
            if isinstance(target, ast.Name):
                for tracked, hit in (
                    (self.as_dict_vars, is_as_dict),
                    (self.tables_vars, is_tables),
                    (self.set_vars, is_set),
                ):
                    if hit:
                        tracked.add(target.id)
                    else:
                        tracked.discard(target.id)
            self._check_tables_mutation(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_tables_mutation(node.target)
        self.generic_visit(node)

    # -- DET008: mutation of exported DenseCandidateTables ----------------
    def _check_tables_mutation(self, target: ast.AST) -> None:
        if not self.kernel:
            return
        node = target
        if isinstance(node, ast.Subscript):
            if (isinstance(node.value, ast.Name)
                    and node.value.id in self.tables_vars):
                self.report(
                    target,
                    "DET008",
                    f"subscript write into exported candidate tables "
                    f"{node.value.id!r}; engines share them — rebuild via "
                    "export_tables() instead of mutating",
                )
                return
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in _TABLES_FIELDS:
            base = _dotted(node.value)
            leaf = base.rsplit(".", 1)[-1]
            if leaf in self.tables_vars or leaf.endswith("tables"):
                self.report(
                    target,
                    "DET008",
                    f"write to {base}.{node.attr} mutates exported "
                    "DenseCandidateTables; engines share them — rebuild "
                    "via export_tables() instead of mutating",
                )

    # -- DET009: unordered-set iteration in kernel code -------------------
    def _iterates_unordered(self, iter_node: ast.AST) -> bool:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            return True
        if (isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Name)
                and iter_node.func.id in ("set", "frozenset")):
            return True
        if (isinstance(iter_node, ast.Name)
                and iter_node.id in self.set_vars):
            return True
        if (isinstance(iter_node, ast.Attribute)
                and iter_node.attr in _UNORDERED_INDEX_ATTRS):
            return True
        return False

    def _check_loop_iter(self, node) -> None:
        if self.kernel and self._iterates_unordered(node.iter):
            self.report(
                node,
                "DET009",
                "iteration over an unordered set in kernel code is "
                "hash-order dependent; iterate sorted(...) to pin the "
                "order the engines replay",
            )

    # -- DET011: per-trial branching in batched inner loops ---------------
    def _batch_member_target(self, node) -> str:
        """The loop variable when *node* is a batched inner loop, else ''.

        A batched inner loop iterates a member collection (``live`` /
        ``members`` / ``something.members``) and sits inside another loop
        — the scheduling rounds. Top-level member loops (setup sweeps,
        result assembly) are not dispatch and stay exempt.
        """
        if not self.kernel or self.loop_depth == 0:
            return ""
        if not isinstance(node.target, ast.Name):
            return ""
        it = node.iter
        name = ""
        if isinstance(it, ast.Name):
            name = it.id
        elif isinstance(it, ast.Attribute):
            name = it.attr
        if name in _BATCH_COLLECTION_NAMES or name.endswith("members"):
            return node.target.id
        return ""

    def _check_batch_branch(self, test: ast.AST) -> None:
        if not self.batch_member_vars:
            return
        for sub in ast.walk(test):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in self.batch_member_vars
                and sub.attr not in _BATCH_MASK_FIELDS
            ):
                self.report(
                    sub,
                    "DET011",
                    f"per-trial branch on {sub.value.id}.{sub.attr} inside "
                    "a batched inner loop; only the live-mask/eviction "
                    f"fields ({', '.join(_BATCH_MASK_FIELDS)}) may steer "
                    "the lockstep dispatch — move per-trial state into "
                    "the member's own step, or evict the trial to the "
                    "solo path",
                )

    def visit_If(self, node: ast.If) -> None:
        self._check_batch_branch(node.test)
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._check_batch_branch(node.test)
        self.generic_visit(node)

    def _visit_loop(self, node, member: str = "") -> None:
        added = bool(member) and member not in self.batch_member_vars
        if added:
            self.batch_member_vars.add(member)
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1
        if added:
            self.batch_member_vars.discard(member)

    def visit_For(self, node: ast.For) -> None:
        self._check_loop_iter(node)
        self._visit_loop(node, self._batch_member_target(node))

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_loop_iter(node)
        self._visit_loop(node, self._batch_member_target(node))

    def visit_While(self, node: ast.While) -> None:
        self._check_batch_branch(node.test)
        self._visit_loop(node)

    # -- DET010: from-imported wall-clock readers -------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time" and not self.wall_clock_ok:
            for alias in node.names:
                if alias.name in _WALL_CLOCK_FROM_IMPORTS:
                    bound = alias.asname or alias.name
                    self.report(
                        node,
                        "DET010",
                        f"wall-clock reader bound to bare name {bound!r} "
                        f"(from time import {alias.name}) evades the "
                        "attribute-based DET003 check; import the module "
                        "and read through it, or move the timing into an "
                        "allowlisted boundary file ("
                        + ", ".join(WALL_CLOCK_ALLOWED) + ")",
                    )
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                if target.value.id in self.as_dict_vars:
                    self.report(
                        node,
                        "DET005",
                        f"mutating golden-summary dict {target.value.id!r} "
                        "(del on an as_dict() result); copy before reshaping",
                    )
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint Python *source*; returns findings in deterministic order."""
    tree = ast.parse(source, filename=path)
    visitor = _Visitor(path, source.splitlines())
    visitor.visit(tree)
    return sorted(visitor.findings)


def lint_file(path: str) -> List[LintFinding]:
    """Lint one file. Syntax errors surface as a single ``DET000`` finding."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        return lint_source(source, path)
    except SyntaxError as exc:
        return [
            LintFinding(path, exc.lineno or 1, exc.offset or 0, "DET000", f"syntax error: {exc.msg}")
        ]


def lint_paths(paths: Iterable[str]) -> List[LintFinding]:
    """Lint files and/or directories (recursing into ``*.py``), sorted."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    findings: List[LintFinding] = []
    for file_path in sorted(set(files)):
        findings.extend(lint_file(file_path))
    return sorted(findings)
