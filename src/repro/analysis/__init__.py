"""Static analysis of DRAIN configurations (`repro.analysis`).

Two engines, both pure functions of their inputs (no simulation, no
wall-clock, no global state):

- :mod:`repro.analysis.certifier` — a configuration certifier. Given a
  topology, a routing function and/or a drain-path set (optionally after
  applying a :class:`~repro.faults.schedule.FaultSchedule` snapshot), it
  constructs the restricted channel-dependency graph, enumerates reachable
  turn-cycles, and emits a machine-readable :class:`~repro.analysis.
  certifier.Certificate`: ``CERTIFIED`` with a coverage/acyclicity proof
  object, or ``REFUTED`` with a concrete counterexample (the offending
  turn-cycle, or the uncovered-link set in
  :class:`~repro.drain.path.DrainPathError` payload form).

- :mod:`repro.analysis.lint` — an AST-based determinism lint pass that
  statically enforces the project's reproducibility invariants over
  ``src/``: no unsalted ``hash()``, no module-level ``random`` state, no
  wall-clock reads in trial code, no non-picklable ``TrialSpec`` params,
  no golden-summary shape mutation, no mutable default arguments.

The certifier also backs the harness's opt-out pre-flight gate
(:mod:`repro.analysis.preflight`): every :class:`~repro.harness.trials.
TrialSpec` is statically validated before worker submission, so malformed
sweeps fail in milliseconds instead of timing out per-trial.

CLI entry points: ``repro-drain check`` and ``repro-drain lint``.
"""

from .certifier import (
    CERTIFIED,
    REFUTED,
    ROUTING_NAMES,
    Certificate,
    build_restricted_cdg,
    certify_configuration,
    certify_drain_cover,
    certify_routing,
    find_turn_cycle,
    routing_for,
    topological_link_order,
)
from .lint import LintFinding, lint_file, lint_paths, lint_source
from .preflight import PreflightError, validate_spec

__all__ = [
    "CERTIFIED",
    "REFUTED",
    "Certificate",
    "LintFinding",
    "PreflightError",
    "ROUTING_NAMES",
    "build_restricted_cdg",
    "certify_configuration",
    "certify_drain_cover",
    "certify_routing",
    "find_turn_cycle",
    "lint_file",
    "lint_paths",
    "lint_source",
    "routing_for",
    "topological_link_order",
    "validate_spec",
]
