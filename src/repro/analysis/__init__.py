"""Static analysis of DRAIN configurations (`repro.analysis`).

Three engines, all pure functions of their inputs (no simulation state,
no wall-clock, no global state):

- :mod:`repro.analysis.certifier` — a configuration certifier. Given a
  topology, a routing function and/or a drain-path set (optionally after
  applying a :class:`~repro.faults.schedule.FaultSchedule` snapshot), it
  constructs the restricted channel-dependency graph, enumerates reachable
  turn-cycles, and emits a machine-readable :class:`~repro.analysis.
  certifier.Certificate`: ``CERTIFIED`` with a coverage/acyclicity proof
  object, or ``REFUTED`` with a concrete counterexample (the offending
  turn-cycle, or the uncovered-link set in
  :class:`~repro.drain.path.DrainPathError` payload form). For lossless
  fabrics (``flow_control="pause_resume"``) the pause-aware entry point
  :func:`~repro.analysis.certifier.certify_pause_configuration` builds
  the pause-augmented buffer-dependency graph instead, models the
  escape-VC pause exemption and PFC headroom feasibility, and refutes
  with a minimal buffer cycle in the watchdog halt-payload shape.

- :mod:`repro.analysis.lint` — an AST-based determinism lint pass that
  statically enforces the project's reproducibility invariants over
  ``src/``: no unsalted ``hash()``, no module-level ``random`` state, no
  wall-clock reads in trial code, no non-picklable ``TrialSpec`` params,
  no golden-summary shape mutation, no mutable default arguments — plus
  the engine-parity family (DET007–DET011) guarding the scalar/vectorized
  draw-order contract and the lockstep batch dispatch in kernel code.

- :mod:`repro.analysis.differential` — differential validation closing
  the loop between the certifier and the simulator: static refutations
  must match live watchdog wedges up to rotation (plain equality after
  canonicalisation), and certified configurations must survive seeded
  pause-storm sweeps without a watchdog halt.

The certifier also backs the harness's opt-out pre-flight gate
(:mod:`repro.analysis.preflight`): every :class:`~repro.harness.trials.
TrialSpec` is statically validated before worker submission, so malformed
sweeps fail in milliseconds instead of timing out per-trial.

CLI entry points: ``repro-drain check`` and ``repro-drain lint``.
"""

from .certifier import (
    CERTIFIED,
    REFUTED,
    ROUTING_NAMES,
    Certificate,
    build_pause_bdg,
    build_restricted_cdg,
    canonical_rotation,
    certify_configuration,
    certify_drain_cover,
    certify_pause_configuration,
    certify_routing,
    find_turn_cycle,
    minimal_cycles,
    routing_for,
    topological_link_order,
)
from .differential import (
    canonical_cycle_links,
    refutation_matches,
    storm_survival_sweep,
)
from .lint import LintFinding, is_kernel_path, lint_file, lint_paths, lint_source
from .preflight import PreflightError, validate_spec

__all__ = [
    "CERTIFIED",
    "REFUTED",
    "Certificate",
    "LintFinding",
    "PreflightError",
    "ROUTING_NAMES",
    "build_pause_bdg",
    "build_restricted_cdg",
    "canonical_cycle_links",
    "canonical_rotation",
    "certify_configuration",
    "certify_drain_cover",
    "certify_pause_configuration",
    "certify_routing",
    "find_turn_cycle",
    "is_kernel_path",
    "lint_file",
    "lint_paths",
    "lint_source",
    "minimal_cycles",
    "refutation_matches",
    "routing_for",
    "storm_survival_sweep",
    "topological_link_order",
    "validate_spec",
]
