"""Static pre-flight validation of trial specs (harness gate).

The parallel harness ships :class:`~repro.harness.trials.TrialSpec` objects
to worker processes and memoizes their results by content digest. A
malformed spec — unknown runner, un-JSON-able parameter, disconnected
topology, or a scheme whose deadlock-freedom claim is statically false —
used to surface as a per-trial worker crash or, worse, a simulation that
times out after minutes. The pre-flight gate runs the cheap static checks
(and, where the scheme makes a static claim, the full
:mod:`repro.analysis.certifier`) **before** any worker is spawned, so a
broken sweep fails in milliseconds with the offending spec identified.

Certification results are memoized per ``(topology, scheme, flow
control, flow set)`` within the process: a 500-trial injection-rate
sweep over one topology certifies the configuration exactly once, and a
lossless sweep re-certifies only when its pinned flow set (which shapes
the pause-augmented buffer-dependency graph) actually changes.

The gate is opt-out: ``Harness(preflight=False)`` or the CLI flag
``--no-preflight`` skips it (e.g. for deliberately broken configurations
under study, such as the paper's deadlock-probability experiments).
"""

from __future__ import annotations

import json
import pickle
from typing import Any, Dict, Mapping, Optional, Tuple

from ..core.config import PfcConfig, Scheme
from .certifier import (
    CERTIFIED,
    Certificate,
    certify_configuration,
    certify_pause_configuration,
)

__all__ = ["PreflightError", "validate_spec", "clear_preflight_cache"]

#: Schemes whose static claim pre-flight enforces. Reactive schemes
#: (spin, static_bubble, none, ideal) make no static deadlock-freedom
#: claim — their correctness is a runtime property — so refusing their
#: specs statically would be wrong. This holds under pause/resume flow
#: control too: the lossless experiments deliberately run scheme-none
#: rows into a CBD wedge to measure it.
_STATIC_SCHEMES = frozenset({Scheme.DRAIN, Scheme.UPDOWN, Scheme.ESCAPE_VC})

_CERT_CACHE: Dict[Tuple[str, str, str, str], Certificate] = {}


class PreflightError(ValueError):
    """A trial spec failed static validation before submission.

    ``digest`` identifies the offending spec; ``certificate`` carries the
    refutation (with its concrete counterexample) when the failure came
    from the configuration certifier rather than a structural check.
    """

    def __init__(
        self,
        message: str,
        digest: str = "",
        certificate: Optional[Certificate] = None,
    ) -> None:
        super().__init__(message)
        self.digest = digest
        self.certificate = certificate

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"message": str(self), "digest": self.digest}
        if self.certificate is not None:
            out["certificate"] = self.certificate.as_dict()
        return out


def clear_preflight_cache() -> None:
    """Drop memoized certificates (tests; topology-heavy long sessions)."""
    _CERT_CACHE.clear()


def _topology_key(topo_spec: Mapping[str, Any]) -> str:
    return json.dumps(topo_spec, sort_keys=True, separators=(",", ":"))


def validate_spec(spec: "Any") -> Optional[Certificate]:
    """Statically validate one trial spec; raise :class:`PreflightError`.

    Checks, cheapest first:

    1. the runner is registered;
    2. the params encode to canonical JSON (digest identity exists);
    3. the spec pickles (it must cross the process boundary);
    4. any embedded topology is connected;
    5. for schemes with a static deadlock-freedom claim (drain, up*/down*,
       escape-VC), the configuration certifier issues ``CERTIFIED`` on the
       boot topology — the pause-aware certifier when the config runs
       ``flow_control="pause_resume"`` (restricted to the trial's pinned
       flow set, with the PFC thresholds' feasibility checked first) —
       memoized per (topology, scheme, flow-control, flow-set).

    Returns the certificate when one was produced (step 5), else ``None``.
    Fault-schedule trials are certified on the *boot* topology only: the
    post-fault configuration is re-certified online by the recovery engine,
    which is exactly the mechanism under test.
    """
    from ..harness.trials import RUNNERS, TrialSpec, topology_from_spec

    if not isinstance(spec, TrialSpec):
        raise PreflightError(f"not a TrialSpec: {type(spec).__name__}")

    if spec.runner not in RUNNERS:
        raise PreflightError(
            f"unknown trial runner {spec.runner!r}; registered: {sorted(RUNNERS)}"
        )

    try:
        digest = spec.digest()
    except (TypeError, ValueError) as exc:
        raise PreflightError(
            f"params are not canonically JSON-able ({exc}); TrialSpec params "
            "must be numbers, strings, bools, lists and dicts"
        ) from exc

    try:
        pickle.dumps(spec)
    except Exception as exc:  # pickle raises a zoo of types
        raise PreflightError(
            f"spec does not pickle ({exc}); it cannot cross the worker "
            "process boundary",
            digest=digest,
        ) from exc

    params = spec.params
    topo_spec = params.get("topology") if isinstance(params, Mapping) else None
    if topo_spec is None:
        return None

    topology = topology_from_spec(topo_spec)
    if not topology.is_connected():
        raise PreflightError(
            f"topology {topology.name!r} is not connected; every trial "
            "assumes all-pairs reachability at boot",
            digest=digest,
        )

    config = params.get("config")
    scheme_value = config.get("scheme") if isinstance(config, Mapping) else None
    if scheme_value is None:
        return None
    try:
        scheme = Scheme(scheme_value)
    except ValueError as exc:
        raise PreflightError(
            f"unknown scheme {scheme_value!r} in trial config", digest=digest
        ) from exc
    if scheme not in _STATIC_SCHEMES:
        return None

    flow_control = str(config.get("flow_control", "credit"))
    network = config.get("network") or {}
    if flow_control == "pause_resume":
        # Feasibility is threshold-dependent but the certificate memo key
        # deliberately is not (thresholds don't shape the pause BDG), so
        # an infeasible config must be refused *before* any cached — or
        # store-persisted — certificate can answer for it.
        try:
            pfc = PfcConfig(**(config.get("pfc") or {}))
            error = pfc.feasibility_error(int(network.get("vcs_per_vn", 2)))
        except (TypeError, ValueError) as exc:
            error = str(exc)
        if error:
            raise PreflightError(
                f"pause/resume configuration is infeasible for "
                f"{topology.name!r}: {error}",
                digest=digest,
            )
    flow_set = _flow_set(params)
    flow_key = json.dumps(flow_set, separators=(",", ":"))
    cache_key = (
        _topology_key(topo_spec), scheme.value, flow_control, flow_key
    )
    certificate = _CERT_CACHE.get(cache_key)
    if certificate is None:
        # Persistent layer: the compiled-structure store keeps issued
        # certificates across processes and runs (keyed by the same memo
        # tuple). A corrupt or absent entry just falls through to the
        # certifier; verdicts re-enter both layers on the way out.
        from .. import structcache

        stored = structcache.load_certificate(cache_key)
        if stored is not None:
            try:
                certificate = Certificate(**stored)
            except (TypeError, ValueError):
                certificate = None
        if certificate is not None:
            _CERT_CACHE[cache_key] = certificate
    if certificate is None:
        if flow_control == "pause_resume":
            network = config.get("network") or {}
            try:
                pfc = PfcConfig(**(config.get("pfc") or {}))
                certificate = certify_pause_configuration(
                    topology,
                    scheme=scheme,
                    pfc=pfc,
                    vcs_per_vn=int(network.get("vcs_per_vn", 2)),
                    num_vns=int(network.get("num_vns", 1)),
                    flows=flow_set,
                )
            except (TypeError, ValueError) as exc:
                raise PreflightError(
                    f"pause/resume configuration is infeasible for "
                    f"{topology.name!r}: {exc}",
                    digest=digest,
                ) from exc
        else:
            certificate = certify_configuration(topology, scheme=scheme)
        _CERT_CACHE[cache_key] = certificate
        structcache.save_certificate(cache_key, certificate.as_dict())
    if certificate.verdict != CERTIFIED:
        raise PreflightError(
            f"configuration refuted for scheme {scheme.value!r} on "
            f"{topology.name!r}: {certificate.summary()}",
            digest=digest,
            certificate=certificate,
        )
    return certificate


def _flow_set(params: Mapping[str, Any]) -> Optional[list]:
    """The trial's pinned (src, dst) flow pairs, sorted, or ``None``.

    Lossless trials carry their flows under ``params["lossless"]
    ["flows"]`` as ``[src, dst, rate, packets]`` rows; only the endpoint
    pairs shape the pause-augmented BDG, so rates and packet budgets do
    not enter the memoization key.
    """
    lossless = params.get("lossless") if isinstance(params, Mapping) else None
    if not isinstance(lossless, Mapping):
        return None
    flows = lossless.get("flows")
    if not flows:
        return None
    return sorted({(int(f[0]), int(f[1])) for f in flows})
