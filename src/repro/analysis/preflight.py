"""Static pre-flight validation of trial specs (harness gate).

The parallel harness ships :class:`~repro.harness.trials.TrialSpec` objects
to worker processes and memoizes their results by content digest. A
malformed spec — unknown runner, un-JSON-able parameter, disconnected
topology, or a scheme whose deadlock-freedom claim is statically false —
used to surface as a per-trial worker crash or, worse, a simulation that
times out after minutes. The pre-flight gate runs the cheap static checks
(and, where the scheme makes a static claim, the full
:mod:`repro.analysis.certifier`) **before** any worker is spawned, so a
broken sweep fails in milliseconds with the offending spec identified.

Certification results are memoized per ``(topology, scheme)`` within the
process: a 500-trial injection-rate sweep over one topology certifies the
configuration exactly once.

The gate is opt-out: ``Harness(preflight=False)`` or the CLI flag
``--no-preflight`` skips it (e.g. for deliberately broken configurations
under study, such as the paper's deadlock-probability experiments).
"""

from __future__ import annotations

import json
import pickle
from typing import Any, Dict, Mapping, Optional, Tuple

from ..core.config import Scheme
from .certifier import CERTIFIED, Certificate, certify_configuration

__all__ = ["PreflightError", "validate_spec", "clear_preflight_cache"]

#: Schemes whose static claim pre-flight enforces. Reactive schemes
#: (spin, static_bubble, none, ideal) make no static deadlock-freedom
#: claim — their correctness is a runtime property — so refusing their
#: specs statically would be wrong.
_STATIC_SCHEMES = frozenset({Scheme.DRAIN, Scheme.UPDOWN, Scheme.ESCAPE_VC})

_CERT_CACHE: Dict[Tuple[str, str], Certificate] = {}


class PreflightError(ValueError):
    """A trial spec failed static validation before submission.

    ``digest`` identifies the offending spec; ``certificate`` carries the
    refutation (with its concrete counterexample) when the failure came
    from the configuration certifier rather than a structural check.
    """

    def __init__(
        self,
        message: str,
        digest: str = "",
        certificate: Optional[Certificate] = None,
    ) -> None:
        super().__init__(message)
        self.digest = digest
        self.certificate = certificate

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"message": str(self), "digest": self.digest}
        if self.certificate is not None:
            out["certificate"] = self.certificate.as_dict()
        return out


def clear_preflight_cache() -> None:
    """Drop memoized certificates (tests; topology-heavy long sessions)."""
    _CERT_CACHE.clear()


def _topology_key(topo_spec: Mapping[str, Any]) -> str:
    return json.dumps(topo_spec, sort_keys=True, separators=(",", ":"))


def validate_spec(spec: "Any") -> Optional[Certificate]:
    """Statically validate one trial spec; raise :class:`PreflightError`.

    Checks, cheapest first:

    1. the runner is registered;
    2. the params encode to canonical JSON (digest identity exists);
    3. the spec pickles (it must cross the process boundary);
    4. any embedded topology is connected;
    5. for schemes with a static deadlock-freedom claim (drain, up*/down*,
       escape-VC), the configuration certifier issues ``CERTIFIED`` on the
       boot topology — memoized per (topology, scheme).

    Returns the certificate when one was produced (step 5), else ``None``.
    Fault-schedule trials are certified on the *boot* topology only: the
    post-fault configuration is re-certified online by the recovery engine,
    which is exactly the mechanism under test.
    """
    from ..harness.trials import RUNNERS, TrialSpec, topology_from_spec

    if not isinstance(spec, TrialSpec):
        raise PreflightError(f"not a TrialSpec: {type(spec).__name__}")

    if spec.runner not in RUNNERS:
        raise PreflightError(
            f"unknown trial runner {spec.runner!r}; registered: {sorted(RUNNERS)}"
        )

    try:
        digest = spec.digest()
    except (TypeError, ValueError) as exc:
        raise PreflightError(
            f"params are not canonically JSON-able ({exc}); TrialSpec params "
            "must be numbers, strings, bools, lists and dicts"
        ) from exc

    try:
        pickle.dumps(spec)
    except Exception as exc:  # pickle raises a zoo of types
        raise PreflightError(
            f"spec does not pickle ({exc}); it cannot cross the worker "
            "process boundary",
            digest=digest,
        ) from exc

    params = spec.params
    topo_spec = params.get("topology") if isinstance(params, Mapping) else None
    if topo_spec is None:
        return None

    topology = topology_from_spec(topo_spec)
    if not topology.is_connected():
        raise PreflightError(
            f"topology {topology.name!r} is not connected; every trial "
            "assumes all-pairs reachability at boot",
            digest=digest,
        )

    config = params.get("config")
    scheme_value = config.get("scheme") if isinstance(config, Mapping) else None
    if scheme_value is None:
        return None
    try:
        scheme = Scheme(scheme_value)
    except ValueError as exc:
        raise PreflightError(
            f"unknown scheme {scheme_value!r} in trial config", digest=digest
        ) from exc
    if scheme not in _STATIC_SCHEMES:
        return None

    cache_key = (_topology_key(topo_spec), scheme.value)
    certificate = _CERT_CACHE.get(cache_key)
    if certificate is None:
        certificate = certify_configuration(topology, scheme=scheme)
        _CERT_CACHE[cache_key] = certificate
    if certificate.verdict != CERTIFIED:
        raise PreflightError(
            f"configuration refuted for scheme {scheme.value!r} on "
            f"{topology.name!r}: {certificate.summary()}",
            digest=digest,
            certificate=certificate,
        )
    return certificate
