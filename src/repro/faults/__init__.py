"""Runtime fault injection and online DRAIN recovery.

Three layers, from declarative to operational:

- :mod:`repro.faults.schedule` — deterministic seed-derived fault
  schedules (what dies, when, transient vs permanent);
- :mod:`repro.faults.recovery` — re-covering the surviving dependency
  graph with drain cycles (Hawick-James under a budget, Eulerian
  fallback);
- :mod:`repro.faults.injector` — the per-cycle engine that applies
  events to a live simulation, resolves in-flight packets by policy and
  records degradation/recovery metrics.

Attach a schedule to a :class:`~repro.core.simulator.Simulation` via its
``fault_schedule`` argument; the simulator owns the injector.
"""

from .injector import FAULT_POLICIES, FaultInjector
from .recovery import RecoveryResult, recover_drain_paths
from .schedule import ONSET_DISTRIBUTIONS, FaultEvent, FaultSchedule
from .storm import STORM_EVENT_KINDS, PauseStormEvent, PauseStormSchedule

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "FAULT_POLICIES",
    "ONSET_DISTRIBUTIONS",
    "PauseStormEvent",
    "PauseStormSchedule",
    "STORM_EVENT_KINDS",
    "RecoveryResult",
    "recover_drain_paths",
]
