"""Online drain-path recovery over the surviving dependency graph.

When a permanent fault removes links (or whole routers), the boot-time
drain path no longer exists: some of its links are gone, and the survivor
graph may even have split into several connected components. DRAIN's
fault story (Section III-B / VI of the paper) is to rerun the offline
path-construction algorithm on the survivor graph and broadcast fresh
turn-tables; this module is that rerun.

Per surviving component the paper's preferred engine — Hawick-James
elementary-circuit search — is tried first under a deterministic
``max_circuits`` budget (the stand-in for a wall-clock timeout: cycle
enumeration is exponential in the worst case, and the budget bounds it
without leaking real time into results). On budget exhaustion, or for
components too large to search at all, recovery falls back to the
spanning-tree/Eulerian engine (Hierholzer), which is linear-time and
guaranteed to succeed on any component — every router keeps equal in- and
out-degree because links die in bidirectional pairs.

The result is one covering cycle per component; together they cover every
surviving unidirectional link exactly once, which
:meth:`repro.drain.controller.DrainController.install_paths` requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..drain.path import (
    DrainPath,
    DrainPathError,
    euler_drain_path,
    hawick_james_drain_path,
)
from ..network.index import FabricIndex
from ..topology.graph import Topology

__all__ = ["RecoveryResult", "recover_drain_paths"]

#: Components with more unidirectional links than this skip Hawick-James
#: entirely — the circuit space is far too large to enumerate — and go
#: straight to the Eulerian engine.
HAWICK_JAMES_LINK_BUDGET = 24


@dataclass
class RecoveryResult:
    """Outcome of one online drain-path recovery."""

    paths: List[DrainPath]
    engines: List[str] = field(default_factory=list)  # one per component
    covered_links: int = 0  # unidirectional links covered, all components

    @property
    def components(self) -> int:
        return len(self.paths)

    @property
    def engine(self) -> str:
        """Summary label: ``hawick-james``, ``euler`` or ``mixed``."""
        unique = set(self.engines)
        if len(unique) == 1:
            return next(iter(unique))
        return "mixed" if unique else "none"

    @property
    def fallback_used(self) -> bool:
        return "euler" in self.engines


def recover_drain_paths(
    index: FabricIndex,
    max_circuits: int = 512,
    hawick_james_link_budget: int = HAWICK_JAMES_LINK_BUDGET,
) -> RecoveryResult:
    """Re-cover the surviving graph of *index* with drain cycles.

    Returns one :class:`~repro.drain.path.DrainPath` per surviving
    connected component (components are sub-topologies on the full router
    numbering with dead routers isolated, so link identities — and hence
    the fabric's port ids — are preserved). Raises
    :class:`~repro.drain.path.DrainPathError` when no links survive at
    all; anything less catastrophic always succeeds via the Eulerian
    fallback.
    """
    surviving = index.surviving_topology()
    components = _link_components(surviving)
    if not components:
        raise DrainPathError(
            f"no links survive on {surviving.name!r}; "
            "the drain path cannot be recovered"
        )
    result = RecoveryResult(paths=[])
    for root, edges in components:
        comp = Topology(
            surviving.num_nodes, edges, name=f"{surviving.name}-c{root}"
        )
        num_links = 2 * len(edges)
        path = None
        engine = "euler"
        if num_links <= hawick_james_link_budget:
            try:
                path = hawick_james_drain_path(comp, max_circuits=max_circuits)
                engine = "hawick-james"
            except DrainPathError:
                path = None  # budget exhausted: fall back
        if path is None:
            path = euler_drain_path(comp, start=root)
        result.paths.append(path)
        result.engines.append(engine)
        result.covered_links += len(path)
    return result


def _link_components(
    surviving: Topology,
) -> List[Tuple[int, List[Tuple[int, int]]]]:
    """Connected components with at least one link, as (root, edges) pairs.

    Roots are the smallest router id of each component; components are
    returned in root order so recovery output is deterministic.
    """
    seen = set()
    components: List[Tuple[int, List[Tuple[int, int]]]] = []
    for node in surviving.nodes:
        if node in seen or surviving.degree(node) == 0:
            continue
        members = {node}
        frontier = [node]
        while frontier:
            n = frontier.pop()
            for m in surviving.neighbors(n):
                if m not in members:
                    members.add(m)
                    frontier.append(m)
        seen |= members
        edges = [
            (a, b) for a, b in surviving.bidirectional_links() if a in members
        ]
        components.append((min(members), edges))
    return components
