"""Deterministic, seed-derived fault schedules.

A :class:`FaultSchedule` is the declarative input to runtime fault
injection: an ordered list of :class:`FaultEvent` records saying *what*
dies (a bidirectional link or a whole router), *when* (a simulation
cycle), and whether the fault is transient (it heals after a fixed
duration) or permanent.

Schedules are plain data — JSON round-trippable, picklable, and hashable
through the harness's canonical-JSON trial digests — so a fault experiment
is exactly as cacheable and replayable as a fault-free one. Generation is
fully determined by ``(topology, seed, parameters)`` via
:func:`repro.core.rng.spawn`; no wall-clock anything.

Onset distributions (Section VI's lifetime framing):

- ``uniform`` — failures spread evenly over the fault window;
- ``wearout`` — failure density grows linearly with time (CDF ``x^2``),
  modelling electromigration-style aging where late life is riskier;
- ``burst`` — all failures cluster tightly around one uniformly drawn
  burst centre, modelling a localised event (voltage droop, particle
  strike cascade).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core import rng as rng_mod
from ..topology.graph import Topology

__all__ = ["FaultEvent", "FaultSchedule", "ONSET_DISTRIBUTIONS"]

ONSET_DISTRIBUTIONS = ("uniform", "wearout", "burst")


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One fault: a link or router that dies at *cycle*.

    ``target`` is a ``(a, b)`` router pair for ``kind="link"`` (the
    bidirectional link — both unidirectional links die together, per the
    paper's assumption 2) or ``(r, -1)`` for ``kind="router"``.
    Transient faults carry the cycle at which they heal.
    """

    cycle: int
    kind: str  # "link" | "router"
    target: Tuple[int, int]
    repair_cycle: Optional[int] = None  # None == permanent

    def __post_init__(self) -> None:
        if self.kind not in ("link", "router"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.repair_cycle is not None and self.repair_cycle <= self.cycle:
            raise ValueError("a transient fault must heal after it strikes")

    @property
    def transient(self) -> bool:
        return self.repair_cycle is not None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "target": list(self.target),
            "repair_cycle": self.repair_cycle,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FaultEvent":
        return FaultEvent(
            cycle=int(data["cycle"]),
            kind=str(data["kind"]),
            target=(int(data["target"][0]), int(data["target"][1])),
            repair_cycle=(
                None if data.get("repair_cycle") is None
                else int(data["repair_cycle"])
            ),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered batch of fault events plus its generation provenance."""

    events: Tuple[FaultEvent, ...]
    seed: Optional[int] = None
    onset: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(sorted(self.events)))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def permanent_events(self) -> List[FaultEvent]:
        return [e for e in self.events if not e.transient]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "events": [e.as_dict() for e in self.events],
            "seed": self.seed,
            "onset": self.onset,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FaultSchedule":
        return FaultSchedule(
            events=tuple(FaultEvent.from_dict(e) for e in data["events"]),
            seed=data.get("seed"),
            onset=data.get("onset"),
        )

    @staticmethod
    def from_json(text: str) -> "FaultSchedule":
        return FaultSchedule.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    @staticmethod
    def generate(
        topology: Topology,
        num_faults: int,
        seed: int,
        window: Tuple[int, int],
        onset: str = "uniform",
        transient_fraction: float = 0.0,
        transient_duration: int = 500,
        router_fraction: float = 0.0,
        ensure_connected: bool = True,
    ) -> "FaultSchedule":
        """Draw a deterministic schedule of *num_faults* events.

        Onset cycles fall in ``[window[0], window[1])`` following *onset*
        (see module docstring). A *transient_fraction* of events heal after
        *transient_duration* cycles; a *router_fraction* kill whole routers
        instead of links. With *ensure_connected* (the default), permanent
        link faults are drawn only among edges whose removal — given all
        earlier permanent faults — keeps the surviving graph connected,
        and permanent router faults are skipped entirely (a dead router
        always strands its own traffic); the schedule then never creates
        unreachable alive pairs, which the DRAIN recovery guarantees need.

        Raises :class:`ValueError` when the topology cannot absorb the
        requested number of permanent faults (e.g. a ring has exactly one
        removable edge; a 2-node network has none).
        """
        if num_faults < 0:
            raise ValueError("num_faults must be >= 0")
        if onset not in ONSET_DISTRIBUTIONS:
            raise ValueError(
                f"unknown onset distribution {onset!r}; "
                f"choose from {ONSET_DISTRIBUTIONS}"
            )
        start, end = window
        if not 0 <= start < end:
            raise ValueError(f"fault window {window} must satisfy 0 <= start < end")
        if not 0.0 <= transient_fraction <= 1.0:
            raise ValueError("transient_fraction must be in [0, 1]")
        if not 0.0 <= router_fraction <= 1.0:
            raise ValueError("router_fraction must be in [0, 1]")

        rng = rng_mod.spawn(seed, "fault-schedule", topology.name, num_faults)
        cycles = _draw_onsets(rng, num_faults, start, end, onset)

        # Permanent-fault budget check up front, so impossible requests
        # fail with a clear message instead of a mid-generation surprise.
        num_transient = round(num_faults * transient_fraction)
        num_permanent = num_faults - num_transient
        if ensure_connected:
            max_removable = topology.num_edges - (topology.num_nodes - 1)
            if num_permanent > max_removable:
                raise ValueError(
                    f"cannot schedule {num_permanent} permanent link faults on "
                    f"{topology.name!r}: only {max_removable} edges are "
                    f"removable while keeping the topology connected"
                )

        # Which event indices are transient: spread deterministically.
        transient_idx = set(
            rng.sample(range(num_faults), num_transient) if num_transient else []
        )

        survivor = topology.copy()
        events: List[FaultEvent] = []
        for i, cycle in enumerate(cycles):
            transient = i in transient_idx
            repair = cycle + transient_duration if transient else None
            want_router = (
                router_fraction > 0.0
                and rng.random() < router_fraction
                and (transient or not ensure_connected)
            )
            if want_router:
                alive = sorted(
                    n for n in survivor.nodes if survivor.degree(n) > 0
                )
                rng.shuffle(alive)
                chosen = -1
                for router in alive:
                    if ensure_connected and _is_cut_router(survivor, router):
                        continue
                    chosen = router
                    break
                if chosen >= 0:
                    events.append(
                        FaultEvent(cycle, "router", (chosen, -1), repair)
                    )
                    if not transient:
                        for m in survivor.neighbors(chosen):
                            survivor.remove_edge(chosen, m)
                    continue
            edge = _pick_edge(rng, survivor, ensure_connected)
            if edge is None:
                raise ValueError(
                    f"no removable edge left on {topology.name!r} after "
                    f"{len(events)} faults (requested {num_faults})"
                )
            events.append(FaultEvent(cycle, "link", edge, repair))
            if not transient:
                survivor.remove_edge(*edge)
        return FaultSchedule(tuple(events), seed=seed, onset=onset)


def _draw_onsets(
    rng, count: int, start: int, end: int, onset: str
) -> List[int]:
    span = end - start
    cycles: List[int] = []
    if onset == "burst":
        centre = start + rng.randrange(span)
        for _ in range(count):
            jitter = rng.randrange(-(span // 20) - 1, span // 20 + 2)
            cycles.append(min(end - 1, max(start, centre + jitter)))
    else:
        for _ in range(count):
            u = rng.random()
            if onset == "wearout":
                u = u ** 0.5  # CDF x^2: density grows linearly with time
            cycles.append(min(end - 1, start + int(u * span)))
    return sorted(cycles)


def _pick_edge(
    rng, survivor: Topology, keep_connected: bool
) -> Optional[Tuple[int, int]]:
    edges = survivor.bidirectional_links()
    rng.shuffle(edges)
    for a, b in edges:
        if keep_connected and survivor.is_critical_edge(a, b):
            continue
        return (a, b)
    return None


def _is_cut_router(survivor: Topology, router: int) -> bool:
    """True when killing *router* would disconnect the remaining routers."""
    neighbours = survivor.neighbors(router)
    for m in neighbours:
        survivor.remove_edge(router, m)
    try:
        remaining = [
            n for n in survivor.nodes
            if n != router and survivor.degree(n) > 0
        ]
        if not remaining:
            return True
        seen = {remaining[0]}
        frontier = [remaining[0]]
        while frontier:
            n = frontier.pop()
            for m in survivor.neighbors(n):
                if m not in seen:
                    seen.add(m)
                    frontier.append(m)
        return len(seen) != len(remaining)
    finally:
        for m in neighbours:
            survivor.add_edge(router, m)
