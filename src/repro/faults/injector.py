"""Runtime fault application, in-flight packet policy, and degradation metrics.

:class:`FaultInjector` sits between a :class:`~repro.faults.schedule.
FaultSchedule` and a live simulation. Each cycle it:

1. heals transient faults whose repair time arrived,
2. applies fault events due this cycle — marking links/routers dead on the
   :class:`~repro.network.index.FabricIndex`, resolving packets caught on
   dying wires per the configured policy, rebuilding the routing tables
   over the survivor graph, and (under DRAIN) recomputing a covering
   drain-cycle set via :mod:`repro.faults.recovery` and installing it on
   the controller,
3. re-offers retransmittable packets whose backoff expired, and
4. samples the recovery curve (windowed deltas of the run counters).

Two in-flight policies model the ends of the recovery-cost spectrum:

- ``drop_retransmit`` — flits on a dying wire are lost; the packet is
  re-offered at its source NI after an exponential backoff (end-to-end
  retransmission, the usual fault-tolerant-NoC assumption);
- ``source_reroute`` — the serialised transfer is cancelled and the packet
  stays in the upstream buffer it never released, to be re-routed over the
  survivor graph (link-level retry, zero loss on wire faults).

Everything here is cycle-counted and seed-free: no wall-clock value ever
reaches a result dict, so fault trials are bit-reproducible across worker
counts and machines — which the determinism suite pins.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..drain.path import DrainPathError
from ..router.packet import Packet
from .recovery import recover_drain_paths
from .schedule import FaultEvent, FaultSchedule
from .storm import PauseStormEvent, PauseStormSchedule

__all__ = ["FaultInjector", "FAULT_POLICIES"]

FAULT_POLICIES = ("drop_retransmit", "source_reroute")


class FaultInjector:
    """Apply a fault schedule to a running simulation, cycle by cycle.

    Optionally also steps a :class:`PauseStormSchedule` — flow-control
    faults (stuck XOFF rows, delayed resumes, victim bursts) — through
    the same pipeline; storms require a pause-capable fabric
    (:class:`repro.network.PauseResumeFabric`).
    """

    def __init__(
        self,
        sim,
        schedule: Optional[FaultSchedule] = None,
        policy: str = "drop_retransmit",
        curve_window: int = 0,
        max_circuits: int = 512,
        backoff_base: int = 8,
        backoff_max: int = 1024,
        max_retransmit_attempts: int = 8,
        storm: Optional[PauseStormSchedule] = None,
    ) -> None:
        if policy not in FAULT_POLICIES:
            raise ValueError(
                f"unknown fault policy {policy!r}; choose from {FAULT_POLICIES}"
            )
        if curve_window < 0:
            raise ValueError("curve_window must be >= 0")
        if schedule is None:
            schedule = FaultSchedule(events=())
        if storm is not None and any(
            e.kind in ("stuck_xoff", "resume_jitter") for e in storm
        ) and not hasattr(sim.fabric, "force_pause"):
            raise ValueError(
                "pause storms need a pause/resume fabric: set "
                "flow_control='pause_resume' in the SimConfig"
            )
        self.sim = sim
        self.schedule = schedule
        self.storm = storm
        self.policy = policy
        self.curve_window = curve_window
        self.max_circuits = max_circuits
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.max_retransmit_attempts = max_retransmit_attempts

        self._events: List[FaultEvent] = list(schedule.events)
        self._next_event = 0
        #: Active fault multiplicity per target (overlapping transients).
        self._edge_faults: Dict[Tuple[int, int], int] = {}
        self._router_faults: Dict[int, int] = {}
        #: Pending transient repairs as (repair_cycle, seq, event).
        self._repairs: List[Tuple[int, int, FaultEvent]] = []
        #: Retransmission queue as (ready_cycle, seq, attempt, packet).
        self._retransmit: List[Tuple[int, int, int, Packet]] = []
        self._seq = 0

        #: Pause-storm pipeline state.
        self._storm_events: List[PauseStormEvent] = (
            list(storm.events) if storm is not None else []
        )
        self._next_storm = 0
        #: Active resume-jitter intervals as (expiry_cycle, jitter).
        self._jitter_active: List[Tuple[int, int]] = []
        self.storm_applied = 0

        #: Per-recompute metadata (cycle, engine, components, ...).
        self.recomputes: List[Dict[str, Any]] = []
        #: Recovery-curve samples (windowed counter deltas).
        self.curve: List[Dict[str, Any]] = []
        self._curve_prev: Dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def events_remaining(self) -> int:
        return len(self._events) - self._next_event

    def _dead_sets(self) -> Tuple[Set[int], Set[int]]:
        """Current dead unidirectional-link ids and router ids."""
        index = self.sim.index
        dead_routers = {r for r, n in self._router_faults.items() if n > 0}
        dead_links: Set[int] = set()
        for (a, b), n in self._edge_faults.items():
            if n > 0:
                for link in index.links:
                    if {link.src, link.dst} == {a, b}:
                        dead_links.add(index.link_id[link])
        for r in dead_routers:
            dead_links.update(index.in_links[r])
            dead_links.update(index.out_links[r])
        return dead_links, dead_routers

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Run the fault pipeline for the current fabric cycle."""
        cycle = self.sim.fabric.cycle
        changed = False
        changed |= self._apply_repairs(cycle)
        dropped = self._apply_events(cycle)
        if dropped is not None:
            changed = True
        if changed:
            self._reconfigure(cycle, dropped or [])
        self._apply_storm(cycle)
        self._pump_retransmits(cycle)
        if self.curve_window and cycle and cycle % self.curve_window == 0:
            self._sample_curve(cycle)

    def next_event_cycle(self, now: int) -> Optional[int]:
        """First cycle >= *now* at which :meth:`step` may act; None = never.

        The minimum over the four pipelines: the next unapplied schedule
        event, the earliest pending transient repair, the earliest pending
        retransmission, and (with curve sampling on) the next
        ``curve_window`` boundary. On every cycle strictly before the
        returned value :meth:`step` provably mutates nothing.
        """
        nxt: Optional[int] = None
        if self._next_event < len(self._events):
            nxt = self._events[self._next_event].cycle
        if self._next_storm < len(self._storm_events):
            storm_cycle = self._storm_events[self._next_storm].cycle
            if nxt is None or storm_cycle < nxt:
                nxt = storm_cycle
        for expiry, _ in self._jitter_active:
            if nxt is None or expiry < nxt:
                nxt = expiry
        for ready, _, _ in self._repairs:
            if nxt is None or ready < nxt:
                nxt = ready
        for ready, _, _, _ in self._retransmit:
            if nxt is None or ready < nxt:
                nxt = ready
        if self.curve_window:
            window = self.curve_window
            if now <= 0:
                boundary = window  # _sample_curve skips cycle 0
            elif now % window == 0:
                boundary = now
            else:
                boundary = (now // window + 1) * window
            if nxt is None or boundary < nxt:
                nxt = boundary
        if nxt is not None and nxt < now:
            nxt = now
        return nxt

    # ------------------------------------------------------------------
    def _apply_repairs(self, cycle: int) -> bool:
        due = [r for r in self._repairs if r[0] <= cycle]
        if not due:
            return False
        self._repairs = [r for r in self._repairs if r[0] > cycle]
        stats = self.sim.stats
        for _, _, event in sorted(due):
            if event.kind == "link":
                key = tuple(sorted(event.target))
                self._edge_faults[key] = self._edge_faults.get(key, 1) - 1
            else:
                r = event.target[0]
                self._router_faults[r] = self._router_faults.get(r, 1) - 1
            stats.faults_revived += 1
        return True

    def _apply_events(self, cycle: int) -> Optional[List[Packet]]:
        """Apply all events due at *cycle*; None when nothing was due.

        Returns the packets dropped by the fabric-side fault primitives so
        :meth:`_reconfigure` can route them into loss/retransmit handling.
        """
        events = self._events
        due: List[FaultEvent] = []
        while self._next_event < len(events) and events[self._next_event].cycle <= cycle:
            due.append(events[self._next_event])
            self._next_event += 1
        if not due:
            return None
        fabric = self.sim.fabric
        stats = self.sim.stats
        index = self.sim.index
        dropped: List[Packet] = []
        newly_dead_links: Set[int] = set()
        newly_dead_routers: Set[int] = set()
        for event in due:
            stats.faults_applied += 1
            if event.transient:
                self._seq += 1
                self._repairs.append((event.repair_cycle, self._seq, event))
            if event.kind == "link":
                key = tuple(sorted(event.target))
                prev = self._edge_faults.get(key, 0)
                self._edge_faults[key] = prev + 1
                if prev == 0:
                    a, b = key
                    for link_obj in (index.links[i] for i in index.out_links[a]):
                        if link_obj.dst == b:
                            newly_dead_links.add(index.link_id[link_obj])
                            newly_dead_links.add(
                                index.link_reverse[index.link_id[link_obj]]
                            )
            else:
                r = event.target[0]
                prev = self._router_faults.get(r, 0)
                self._router_faults[r] = prev + 1
                if prev == 0:
                    newly_dead_routers.add(r)
                    newly_dead_links.update(index.in_links[r])
                    newly_dead_links.update(index.out_links[r])
        if newly_dead_links:
            dropped.extend(
                fabric.fault_cancel_transfers(
                    newly_dead_links, drop=self.policy == "drop_retransmit"
                )
            )
        for r in sorted(newly_dead_routers):
            dropped.extend(fabric.fault_kill_router(r))
        return dropped

    def _reconfigure(self, cycle: int, dropped: List[Packet]) -> None:
        """Rebuild distances, routing and the drain cover after a change."""
        sim = self.sim
        index = sim.index
        fabric = sim.fabric
        stats = sim.stats
        dead_links, dead_routers = self._dead_sets()
        index.apply_faults(dead_links, dead_routers)
        fabric.routing.rebuild()
        if fabric.escape_routing is not None:
            fabric.escape_routing.rebuild()
        fabric.invalidate_routing_cache()
        dropped = list(dropped)
        dropped.extend(fabric.fault_drop_unroutable())
        if sim.drain_controller is not None:
            self._recompute_drain(cycle)
        for packet in dropped:
            stats.packets_lost += 1
            if (
                self.policy == "drop_retransmit"
                and packet.eject_cycle is None
                and packet.src not in dead_routers
            ):
                self._schedule_retransmit(cycle, 0, packet)

    def _recompute_drain(self, cycle: int) -> None:
        sim = self.sim
        try:
            result = recover_drain_paths(sim.index, max_circuits=self.max_circuits)
            paths = result.paths
            meta = {
                "engine": result.engine,
                "engines": list(result.engines),
                "components": result.components,
                "covered_links": result.covered_links,
            }
        except DrainPathError as exc:
            # Faults left no drainable links at all (every router isolated):
            # drain windows become no-ops until a transient repair restores
            # an edge. The error's sorted link payload goes into the journal
            # record so the failure is diagnosable (and byte-stable) offline.
            paths = []
            meta = {"engine": "none", "engines": [], "components": 0,
                    "covered_links": 0,
                    "uncovered": exc.as_dict()["missing"]}
        sim.drain_controller.install_paths(paths)
        sim.drain_controller.reinstalls += 1
        sim.stats.drain_recomputes += 1
        record = {
            "cycle": cycle,
            "links_alive": sim.index.num_links - len(sim.index.dead_links),
            "unreachable_pairs": sim.index.unreachable_pairs(),
        }
        record.update(meta)
        self.recomputes.append(record)

    # ------------------------------------------------------------------
    def _apply_storm(self, cycle: int) -> None:
        """Apply due pause-storm events and expire resume-jitter windows."""
        if self._jitter_active:
            live = [(e, v) for e, v in self._jitter_active if e > cycle]
            if len(live) != len(self._jitter_active):
                self._jitter_active = live
                self.sim.fabric.resume_jitter = max(
                    (v for _, v in live), default=0
                )
        events = self._storm_events
        if self._next_storm >= len(events):
            return
        fabric = self.sim.fabric
        traffic = getattr(self.sim, "traffic", None)
        while self._next_storm < len(events) and events[self._next_storm].cycle <= cycle:
            event = events[self._next_storm]
            self._next_storm += 1
            self.storm_applied += 1
            if event.kind == "stuck_xoff":
                link, vn = event.target
                fabric.force_pause(link, vn, cycle + event.duration)
            elif event.kind == "resume_jitter":
                self._jitter_active.append(
                    (cycle + event.duration, event.value)
                )
                fabric.resume_jitter = max(
                    v for _, v in self._jitter_active
                )
            else:  # burst
                if traffic is None or not hasattr(traffic, "queue_burst"):
                    raise ValueError(
                        "burst storm events need flow-level traffic with "
                        "queue_burst (repro.traffic.FlowTraffic)"
                    )
                src, dst = event.target
                traffic.queue_burst(src, dst, event.value, cycle)

    # ------------------------------------------------------------------
    def _schedule_retransmit(self, cycle: int, attempt: int, packet: Packet) -> None:
        if attempt >= self.max_retransmit_attempts:
            return
        delay = min(self.backoff_max, self.backoff_base << attempt)
        self._seq += 1
        self._retransmit.append((cycle + delay, self._seq, attempt, packet))

    def _pump_retransmits(self, cycle: int) -> None:
        if not self._retransmit:
            return
        ready = sorted(r for r in self._retransmit if r[0] <= cycle)
        if not ready:
            return
        self._retransmit = [r for r in self._retransmit if r[0] > cycle]
        fabric = self.sim.fabric
        stats = self.sim.stats
        for _, _, attempt, packet in ready:
            # Reset transport state; identity (pid, src, dst, gen_cycle)
            # is preserved so end-to-end latency includes the lost attempt
            # and the backoff — that cost is the point of the experiment.
            packet.in_escape = False
            packet.net_entry_cycle = None
            packet.blocked_since = None
            if fabric.offer_packet(packet):
                stats.packets_retransmitted += 1
            else:
                # Source NI queue full: back off again, bounded.
                self._schedule_retransmit(cycle, attempt + 1, packet)

    # ------------------------------------------------------------------
    def _sample_curve(self, cycle: int) -> None:
        sim = self.sim
        stats = sim.stats
        prev = self._curve_prev
        lat_count = stats.latency.count
        lat_sum = stats.latency.mean * lat_count
        window_count = lat_count - prev.get("lat_count", 0)
        window_sum = lat_sum - prev.get("lat_sum", 0.0)
        alive_nodes = sim.index.num_nodes - len(sim.index.dead_routers)
        ejected = stats.packets_ejected - int(prev.get("ejected", 0))
        sample = {
            "cycle": cycle,
            "ejected": ejected,
            "injected": stats.packets_injected - int(prev.get("injected", 0)),
            "lost": stats.packets_lost - int(prev.get("lost", 0)),
            "retransmitted": stats.packets_retransmitted
            - int(prev.get("retransmitted", 0)),
            "unroutable": stats.packets_unroutable
            - int(prev.get("unroutable", 0)),
            "avg_latency": (window_sum / window_count) if window_count else 0.0,
            "in_network": fabric_occupancy(sim.fabric),
            "throughput": (
                ejected / (alive_nodes * self.curve_window)
                if alive_nodes else 0.0
            ),
            "faults_active": sum(
                1 for n in self._edge_faults.values() if n > 0
            ) + sum(1 for n in self._router_faults.values() if n > 0),
        }
        self.curve.append(sample)
        self._curve_prev = {
            "ejected": stats.packets_ejected,
            "injected": stats.packets_injected,
            "lost": stats.packets_lost,
            "retransmitted": stats.packets_retransmitted,
            "unroutable": stats.packets_unroutable,
            "lat_count": lat_count,
            "lat_sum": lat_sum,
        }

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-able degradation/recovery summary for result dicts."""
        stats = self.sim.stats
        return {
            "policy": self.policy,
            "faults_applied": stats.faults_applied,
            "faults_revived": stats.faults_revived,
            "packets_lost": stats.packets_lost,
            "packets_retransmitted": stats.packets_retransmitted,
            "packets_unroutable": stats.packets_unroutable,
            "drain_recomputes": stats.drain_recomputes,
            "recomputes": list(self.recomputes),
            "unreachable_pairs": self.sim.index.unreachable_pairs(),
            "events_remaining": self.events_remaining,
            "recovery_curve": list(self.curve),
            "storm_applied": self.storm_applied,
            "storm_events_remaining": (
                len(self._storm_events) - self._next_storm
            ),
        }


def fabric_occupancy(fabric) -> int:
    """Packets currently buffered in the network, fabric-type agnostic."""
    occupancy = getattr(fabric, "packets_in_network", None)
    if occupancy is None:
        occupancy = fabric.count_flits()
    return occupancy
