"""Deterministic, seed-derived PFC pause-storm schedules.

A :class:`PauseStormSchedule` is the pause-mode analogue of
:class:`repro.faults.FaultSchedule`: an ordered list of
:class:`PauseStormEvent` records describing lossless-fabric failure modes
that are *flow-control* faults rather than physical ones:

- ``stuck_xoff`` — a switch keeps honouring a pause frame long after the
  congestion cleared (lost XON / babbling pauser): one (link port, VN)
  row is pinned XOFF for ``duration`` cycles via
  :meth:`repro.network.PauseResumeFabric.force_pause`.
- ``resume_jitter`` — slow pause-frame processing: every XON in the
  fabric is delayed by ``value`` cycles for ``duration`` cycles.
- ``burst`` — a victim-flow burst: ``count`` packets from ``target[0]``
  to ``target[1]`` are enqueued at once through
  :meth:`repro.traffic.FlowTraffic.queue_burst`, loading the dependency
  cycle the stuck pauses created.

Schedules are plain data (JSON round-trippable, digest-hashable) and are
stepped by :class:`repro.faults.FaultInjector` alongside physical faults.
Generation is fully determined by ``(topology, seed, parameters)``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core import rng as rng_mod
from ..topology.graph import Topology

__all__ = ["PauseStormEvent", "PauseStormSchedule", "STORM_EVENT_KINDS"]

STORM_EVENT_KINDS = ("stuck_xoff", "resume_jitter", "burst")


@dataclass(frozen=True, order=True)
class PauseStormEvent:
    """One storm event at *cycle*.

    ``target`` is ``(link_port, vn)`` for ``stuck_xoff``, ``(0, 0)``
    (unused) for ``resume_jitter``, and ``(src, dst)`` for ``burst``.
    ``value`` is the jitter in cycles for ``resume_jitter`` and the
    packet count for ``burst``; ``duration`` is how long a
    ``stuck_xoff``/``resume_jitter`` condition holds.
    """

    cycle: int
    kind: str
    target: Tuple[int, int]
    duration: int = 0
    value: int = 0

    def __post_init__(self) -> None:
        if self.kind not in STORM_EVENT_KINDS:
            raise ValueError(f"unknown storm event kind {self.kind!r}")
        if self.cycle < 0:
            raise ValueError("storm events cannot strike before cycle 0")
        if self.kind in ("stuck_xoff", "resume_jitter") and self.duration < 1:
            raise ValueError(f"{self.kind} events need a positive duration")
        if self.kind == "burst" and self.value < 1:
            raise ValueError("burst events need a positive packet count")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "target": list(self.target),
            "duration": self.duration,
            "value": self.value,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "PauseStormEvent":
        return PauseStormEvent(
            cycle=int(data["cycle"]),
            kind=str(data["kind"]),
            target=(int(data["target"][0]), int(data["target"][1])),
            duration=int(data.get("duration", 0)),
            value=int(data.get("value", 0)),
        )


@dataclass(frozen=True)
class PauseStormSchedule:
    """An ordered batch of pause-storm events plus generation provenance."""

    events: Tuple[PauseStormEvent, ...]
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(sorted(self.events)))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "events": [e.as_dict() for e in self.events],
            "seed": self.seed,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "PauseStormSchedule":
        return PauseStormSchedule(
            events=tuple(PauseStormEvent.from_dict(e) for e in data["events"]),
            seed=data.get("seed"),
        )

    @staticmethod
    def from_json(text: str) -> "PauseStormSchedule":
        return PauseStormSchedule.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    @staticmethod
    def generate(
        topology: Topology,
        num_events: int,
        seed: int,
        window: Tuple[int, int],
        num_vns: int = 1,
        stuck_fraction: float = 0.5,
        jitter_fraction: float = 0.2,
        stuck_duration: int = 400,
        jitter: int = 8,
        burst_count: int = 4,
    ) -> "PauseStormSchedule":
        """Draw a deterministic storm of *num_events* events.

        Onset cycles are uniform over ``[window[0], window[1])``.  Each
        event is a ``stuck_xoff`` with probability *stuck_fraction*, a
        ``resume_jitter`` with probability *jitter_fraction*, and a
        victim ``burst`` otherwise.  Stuck-XOFF targets are drawn over
        the topology's directed link ports (two per bidirectional edge,
        matching :class:`repro.network.FabricIndex` port ids) and VN
        ``rng.randrange(num_vns)``; burst endpoints are distinct nodes.
        """
        if num_events < 0:
            raise ValueError("num_events must be >= 0")
        start, end = window
        if not 0 <= start < end:
            raise ValueError(
                f"storm window {window} must satisfy 0 <= start < end"
            )
        if num_vns < 1:
            raise ValueError("num_vns must be >= 1")
        if not 0.0 <= stuck_fraction + jitter_fraction <= 1.0:
            raise ValueError(
                "stuck_fraction + jitter_fraction must be in [0, 1]"
            )
        num_links = 2 * topology.num_edges
        if num_links == 0:
            raise ValueError("cannot storm a topology with no links")
        rng = rng_mod.spawn(seed, "pause-storm", topology.name, num_events)
        events: List[PauseStormEvent] = []
        for _ in range(num_events):
            cycle = start + rng.randrange(end - start)
            u = rng.random()
            if u < stuck_fraction:
                link = rng.randrange(num_links)
                vn = rng.randrange(num_vns)
                events.append(PauseStormEvent(
                    cycle, "stuck_xoff", (link, vn), duration=stuck_duration
                ))
            elif u < stuck_fraction + jitter_fraction:
                events.append(PauseStormEvent(
                    cycle, "resume_jitter", (0, 0),
                    duration=stuck_duration, value=jitter,
                ))
            else:
                src = rng.randrange(topology.num_nodes)
                dst = rng.randrange(topology.num_nodes - 1)
                if dst >= src:
                    dst += 1
                events.append(PauseStormEvent(
                    cycle, "burst", (src, dst), value=burst_count
                ))
        return PauseStormSchedule(tuple(events), seed=seed)
