"""Static analysis of drain paths and drain-overhead accounting.

The offline algorithm has freedom in *which* covering cycle it returns;
this module quantifies what a given choice costs at runtime:

- :func:`misroute_expectation` — probability that a drain hop moves a
  uniformly random in-flight packet away from its destination (the paper's
  misroutes, Figure 14's mechanism);
- :func:`router_visit_counts` — how often the path passes through each
  router (bounds how long a full drain holds any packet);
- :func:`drain_overhead_fraction` — fraction of cycles the network spends
  frozen in pre-drain/drain windows for a given epoch setting, including
  the amortised full-drain cost.

These feed the ablation benchmarks and let users pick epochs analytically
instead of by sweep.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from ..core.config import DrainConfig
from ..structcache import distances
from .path import DrainPath

__all__ = [
    "misroute_expectation",
    "router_visit_counts",
    "drain_overhead_fraction",
    "path_report",
]


def misroute_expectation(
    path: DrainPath, dist: Optional[List[List[int]]] = None
) -> float:
    """Expected misroute probability of one drain hop.

    Averaged over every (occupied link, destination) pair with uniform
    destinations: the fraction of forced turns that strictly increase the
    hop distance to the destination.

    Callers that already hold the hop-distance matrix (a built
    :attr:`FabricIndex.dist`) pass it as *dist*; by default it comes from
    the structure store's memo layer, so the BFS is never repeated for a
    topology whose matrix this process already computed.
    """
    topology = path.topology
    if dist is None:
        dist = distances(topology)
    worse = 0
    total = 0
    for link in path.links:
        nxt = path.next_link(link)
        here = link.dst
        there = nxt.dst
        for dst in topology.nodes:
            if dst == here:
                continue  # an ejectable packet is not drained away
            total += 1
            if dist[there][dst] > dist[here][dst]:
                worse += 1
    return worse / total if total else 0.0


def router_visit_counts(path: DrainPath) -> Dict[int, int]:
    """Number of times the drain path enters each router."""
    counts: Counter = Counter(link.dst for link in path.links)
    return dict(counts)


def drain_overhead_fraction(config: DrainConfig, path_length: int) -> float:
    """Fraction of wall-clock cycles spent frozen by draining.

    A regular window costs ``pre_drain_window + drain_window`` frozen
    cycles every ``epoch`` normal cycles; once every ``full_drain_period``
    windows the drain window is replaced by a full drain of
    ``path_length`` cycles.
    """
    if path_length < 1:
        raise ValueError("path_length must be positive")
    period = config.full_drain_period
    regular_windows = period - 1
    frozen = (
        regular_windows * (config.pre_drain_window + config.drain_window)
        + (config.pre_drain_window + path_length)
    )
    total = period * config.epoch + frozen
    return frozen / total


def path_report(path: DrainPath, config: DrainConfig) -> Dict[str, float]:
    """Headline numbers for one drain path under one configuration."""
    visits = router_visit_counts(path)
    return {
        "path_length": float(len(path)),
        "misroute_expectation": misroute_expectation(path),
        "max_router_visits": float(max(visits.values())),
        "min_router_visits": float(min(visits.values())),
        "overhead_fraction": drain_overhead_fraction(config, len(path)),
    }
