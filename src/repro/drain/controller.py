"""The DRAIN runtime controller (Section III-C).

Three microarchitectural pieces from Figure 7 of the paper are modelled:

- the **epoch register**: a countdown shared by all routers that decides
  when to pre-drain and drain (values loaded at boot);
- the **credit freeze**: during the pre-drain and drain windows no new VC
  or switch allocations happen, so nothing is mid-link when packets are
  forced to move;
- the **turn-table**: per-router input-port -> output-port drain turns,
  i.e. the drain path restricted to the router.

During each drain window every packet occupying an escape VC (VC 0 of each
virtual network) moves one hop along the drain path, in unison — the path
is a single cycle over all links, so the rotation is a permutation and
never needs a free buffer. Packets arriving at their destination router
during the drain eject immediately if their ejection queue has space.

Once every ``full_drain_period`` windows a **full drain** rotates the whole
path length, guaranteeing every escape packet visits every router and can
eject — the livelock/starvation backstop of Section III-D3.

Runtime faults (``repro.faults``) generalise the single boot-time path to a
*set* of covering cycles: when a permanent link death splits the surviving
dependency graph, the online recovery engine re-covers each connected
component with its own cycle and installs them all via
:meth:`DrainController.install_paths` — each drain window then rotates
every cycle, preserving the permutation property per cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import DrainConfig
from ..network.fabric import Fabric
from ..topology.graph import Topology
from .path import DrainPath, find_drain_path
from .turntable import TurnTable, build_turn_tables

__all__ = ["DrainController"]


class DrainController:
    """Epoch-driven drain state machine attached to a fabric."""

    def __init__(
        self,
        fabric: Fabric,
        config: DrainConfig,
        path: Optional[DrainPath] = None,
        tables_from: Optional["DrainController"] = None,
    ) -> None:
        self.fabric = fabric
        self.config = config
        topology: Topology = fabric.index.topology
        if path is None:
            path = find_drain_path(topology)
        elif path.topology is not topology:
            # Paths may be precomputed; they must describe the same topology.
            path.validate()
        self._countdown = config.epoch
        self._state = "normal"  # normal | pre_drain | drain | full_drain
        self._window_left = 0
        self._windows_done = 0
        self._full_steps_left = 0
        #: Cycles the pre-drain freeze had to stretch beyond its window to
        #: let serialised (multi-flit) transfers land.
        self.pre_drain_extensions = 0
        #: Online drain-path reinstallations (fault recovery events).
        self.reinstalls = 0
        if (tables_from is not None and len(tables_from.paths) == 1
                and tables_from.paths[0] is path):
            # Cross-trial shared construction (batch groups): the donor
            # compiled turn tables for this exact path object, and the
            # compiled form is read-only until a recovery reinstall (which
            # replaces it wholesale). Adopting it skips the per-member
            # build without any shared mutable state.
            self.paths = tables_from.paths
            self.turn_tables = tables_from.turn_tables
            self.path_port_cycles = tables_from.path_port_cycles
        else:
            self.install_paths([path])

    # ------------------------------------------------------------------
    def install_paths(self, paths: Sequence[DrainPath]) -> None:
        """Install a covering cycle set (boot configuration or recovery).

        Each path must be a valid elementary covering cycle over its own
        (sub-)topology; together they must not share links. The first call
        happens at construction; later calls model the reconfiguration
        broadcast after the online recovery engine reruns the offline
        algorithm on the survivor graph. An empty set is legal only there:
        it means faults left no drainable links, and drain windows become
        no-ops.
        """
        index = self.fabric.index
        self.paths: List[DrainPath] = list(paths)
        self.turn_tables: Dict[int, TurnTable] = {}
        for path in self.paths:
            for router, table in build_turn_tables(path).items():
                # Component sub-topologies carry the full router numbering;
                # routers outside the component get empty tables which must
                # not clobber another component's real table.
                if len(table) or router not in self.turn_tables:
                    self.turn_tables[router] = table
        #: Per-cycle drain-path port lists, each in cycle order.
        self.path_port_cycles: List[List[int]] = [
            [index.link_id[link] for link in path.links]
            for path in self.paths
        ]
        seen = set()
        for ports in self.path_port_cycles:
            for port in ports:
                if port in seen:
                    raise ValueError("drain cycles share a link")
                seen.add(port)
        # Path (re)installation accompanies routing-table changes during
        # online recovery; drop any memoized candidate groups.
        self.fabric.invalidate_routing_cache()
        if self._state != "normal":
            # Reinstalling mid-window (a fault landed inside a drain): the
            # remaining rotations use the new cycles; clamp the full-drain
            # budget to the new longest cycle.
            self._full_steps_left = min(
                self._full_steps_left, self.max_cycle_length()
            )

    @property
    def path(self) -> DrainPath:
        """The primary drain path (the only one outside fault recovery)."""
        return self.paths[0]

    @property
    def path_ports(self) -> List[int]:
        """All drain-path ports, cycle by cycle (flat view for callers)."""
        return [p for ports in self.path_port_cycles for p in ports]

    def total_path_length(self) -> int:
        """Links covered across all installed cycles."""
        return sum(len(ports) for ports in self.path_port_cycles)

    def max_cycle_length(self) -> int:
        return max((len(ports) for ports in self.path_port_cycles), default=0)

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    def turn_table(self, router: int) -> TurnTable:
        return self.turn_tables[router]

    def step(self) -> None:
        """Advance the drain state machine by one cycle.

        Must be called once per fabric cycle *before* the fabric's own
        stages; it sets ``fabric.frozen`` for the cycles it owns.
        """
        fabric = self.fabric
        if self._state == "normal":
            self._countdown -= 1
            if self._countdown > 0:
                return
            fabric.frozen = True
            if self.config.pre_drain_window > 0 or fabric.transfers_in_flight():
                self._state = "pre_drain"
                self._window_left = self.config.pre_drain_window
            else:
                self._enter_drain()
            return

        if self._state == "pre_drain":
            self._window_left -= 1
            if self._window_left <= 0:
                if fabric.transfers_in_flight():
                    # The pre-drain window was sized below the maximum
                    # packet's serialisation latency; hold the freeze until
                    # every in-flight transfer has landed (Section III-C2).
                    self.pre_drain_extensions += 1
                    return
                self._enter_drain()
            return

        if self._state == "drain":
            if self._window_left == self.config.drain_window:
                # First cycle of the window: perform the forced movement.
                for _ in range(self.config.hops_per_drain):
                    self._rotate_once()
            self._window_left -= 1
            if self._window_left <= 0:
                self._finish_window()
            return

        # full_drain: one rotation per cycle until the whole path has cycled.
        self._rotate_once()
        self._full_steps_left -= 1
        if self._full_steps_left <= 0:
            self._finish_window()

    # ------------------------------------------------------------------
    # Event-horizon interface (Simulation's fast-forward engine)
    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> int:
        """First cycle at which :meth:`step` does more than count down.

        In the normal state the controller's only per-cycle effect is the
        epoch decrement, which :meth:`skip_cycles` replays in O(1); the
        freeze fires on the step that takes the countdown to zero, i.e.
        ``countdown - 1`` cycles from now. Any in-window state needs dense
        stepping immediately (the fabric is frozen then anyway, so a
        quiescence-gated caller never actually sees it).
        """
        if self._state != "normal":
            return now
        return now + self._countdown - 1

    def skip_cycles(self, count: int) -> None:
        """Replay *count* normal-state countdown decrements at once.

        The caller must stay strictly before :meth:`next_event_cycle`'s
        answer, so the countdown never reaches zero inside a skip — the
        freeze decision always happens in a dense :meth:`step`.
        """
        if count <= 0:
            return
        if self._state != "normal" or count >= self._countdown:
            raise RuntimeError(
                f"skip_cycles({count}) past the drain horizon "
                f"(state={self._state}, countdown={self._countdown})"
            )
        self._countdown -= count

    def force_drain(self) -> bool:
        """Collapse the epoch countdown so the next step opens a drain.

        The degradation ladder calls this when the watchdog confirms a
        CBD deadlock: instead of waiting out the remaining epoch, the
        freeze fires on the very next (dense) :meth:`step`.  Returns
        False — without touching anything — when a window is already in
        progress.  The :meth:`skip_cycles` contract is preserved: the
        countdown only shrinks, so a skip planned against the previous
        horizon still raises before it could cross the new one, and the
        ladder runs before the controller in the simulation step order,
        making the forced window fire in the same dense cycle.
        """
        if self._state != "normal":
            return False
        self._countdown = min(self._countdown, 1)
        return True

    # ------------------------------------------------------------------
    def _enter_drain(self) -> None:
        self._windows_done += 1
        self.fabric.stats.drain_windows += 1
        if self._windows_done % self.config.full_drain_period == 0:
            self._state = "full_drain"
            self._full_steps_left = self.max_cycle_length()
            self.fabric.stats.full_drains += 1
        else:
            self._state = "drain"
            self._window_left = self.config.drain_window

    def _finish_window(self) -> None:
        self._state = "normal"
        self._countdown = self.config.epoch
        self.fabric.frozen = False

    def _rotate_once(self) -> None:
        """Move every escape-VC packet one hop along its drain cycle.

        Delegates to the fabric, which knows its own buffer organisation
        (whole packets under virtual cut-through, flit FIFOs with packet
        truncation under wormhole — Section III-C3). After a fault split
        the survivor graph, each component's cycle rotates independently.
        """
        for ports in self.path_port_cycles:
            self.fabric.drain_rotate_escape(ports)
