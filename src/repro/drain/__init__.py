"""DRAIN: the paper's primary contribution — path algorithm and controller."""

from .analysis import (
    drain_overhead_fraction,
    misroute_expectation,
    path_report,
    router_visit_counts,
)
from .controller import DrainController
from .hawick_james import count_circuits, elementary_circuits, find_circuit
from .ladder import DegradationLadder
from .path import (
    DrainPath,
    DrainPathError,
    euler_drain_path,
    find_drain_path,
    hawick_james_drain_path,
)
from .turntable import TurnTable, build_turn_tables

__all__ = [
    "DrainPath",
    "DrainPathError",
    "find_drain_path",
    "euler_drain_path",
    "hawick_james_drain_path",
    "TurnTable",
    "build_turn_tables",
    "DrainController",
    "DegradationLadder",
    "misroute_expectation",
    "router_visit_counts",
    "drain_overhead_fraction",
    "path_report",
    "elementary_circuits",
    "find_circuit",
    "count_circuits",
]
