"""Hawick-James enumeration of elementary circuits in a directed graph.

The paper's offline drain-path search (Section III-B) builds on the
circuit-enumeration method of Hawick and James [23], an extension of
Johnson's algorithm, augmented to terminate early as soon as a single
circuit is found that covers all links.

This module implements the enumerator over plain integer adjacency lists
so it can serve two masters:

- the drain-path search, where graph nodes are unidirectional links and a
  covering circuit is an Euler circuit of the topology, and
- cyclic-dependency analysis of routing functions (counting cycles in a
  channel-dependency graph).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

__all__ = ["elementary_circuits", "find_circuit", "count_circuits"]


def elementary_circuits(
    adjacency: Sequence[Sequence[int]],
    max_circuits: Optional[int] = None,
) -> Iterator[List[int]]:
    """Yield the elementary circuits of a directed graph.

    *adjacency* maps each vertex index to its successor indices. Circuits
    are yielded as vertex lists without repeating the starting vertex, in
    the canonical Johnson/Hawick-James order (each circuit's smallest vertex
    first). Enumeration stops after *max_circuits* circuits if given.

    The implementation is iterative-friendly recursion with the standard
    blocked-set and block-map bookkeeping; complexity is
    ``O((V + E) * (C + 1))`` for ``C`` circuits, as cited by the paper.
    """
    n = len(adjacency)
    found = 0

    for start in range(n):
        # Consider only the subgraph induced by vertices >= start so each
        # circuit is discovered exactly once, rooted at its smallest vertex.
        blocked = [False] * n
        block_map: List[List[int]] = [[] for _ in range(n)]
        stack: List[int] = []

        def unblock(v: int) -> None:
            # Iterative unblock to avoid deep recursion on long chains.
            pending = [v]
            while pending:
                u = pending.pop()
                if not blocked[u]:
                    continue
                blocked[u] = False
                pending.extend(block_map[u])
                block_map[u] = []

        def circuit(v: int) -> Iterator[List[int]]:
            nonlocal found
            stack.append(v)
            blocked[v] = True
            found_cycle_here = False
            for w in adjacency[v]:
                if w < start:
                    continue
                if w == start:
                    found += 1
                    found_cycle_here = True
                    yield list(stack)
                elif not blocked[w]:
                    for cyc in circuit(w):
                        yield cyc
                        found_cycle_here = True
            if found_cycle_here:
                unblock(v)
            else:
                for w in adjacency[v]:
                    if w < start:
                        continue
                    if v not in block_map[w]:
                        block_map[w].append(v)
            stack.pop()

        for cyc in circuit(start):
            yield cyc
            if max_circuits is not None and found >= max_circuits:
                return


def find_circuit(
    adjacency: Sequence[Sequence[int]],
    predicate: Callable[[List[int]], bool],
    max_circuits: Optional[int] = None,
) -> Optional[List[int]]:
    """Return the first elementary circuit satisfying *predicate*.

    This is the paper's early-termination augmentation: the enumeration
    stops as soon as a satisfying circuit (e.g. one covering all links) is
    found. Returns ``None`` when enumeration finishes (or *max_circuits* is
    exhausted) without a match.
    """
    for circ in elementary_circuits(adjacency, max_circuits=max_circuits):
        if predicate(circ):
            return circ
    return None


def count_circuits(
    adjacency: Sequence[Sequence[int]],
    max_circuits: Optional[int] = None,
) -> int:
    """Count elementary circuits (capped at *max_circuits* when given)."""
    count = 0
    for _ in elementary_circuits(adjacency, max_circuits=max_circuits):
        count += 1
    return count
