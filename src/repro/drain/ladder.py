"""Staged degradation ladder: detect CBD -> force a drain -> drop-and-retry.

Lossless (PFC) fabrics can wedge on cyclic buffer dependencies that no
pause-threshold tuning resolves; DRAIN's periodic drain resolves them, but
waiting out a multi-thousand-cycle epoch while the fabric is dead costs
real latency.  The :class:`DegradationLadder` wires the deadlock oracle
and the :class:`~repro.drain.controller.DrainController` into a staged
response, escalating only as cheaper stages fail:

1. **Detect** — on a fixed cadence, once progress has stalled past a
   grace period, run the pause-aware wait-for-graph oracle
   (:func:`repro.network.find_deadlocked_slots` with
   ``assume_ejection_drains=False``) and capture the concrete minimal
   cycle (:func:`repro.network.deadlock_cycle_payload`).
2. **Escalate** — collapse the drain epoch via
   :meth:`DrainController.force_drain`, so the next cycle opens a drain
   window instead of waiting out the epoch.  Re-check after a backoff;
   retry with doubled backoff up to a bounded budget (drains are cheap
   but not free — each one freezes the fabric for the window).
3. **Degrade** — if the forced drains did not clear the wedge (e.g. a
   storm-pinned XOFF row that no rotation can open), drop the packets of
   the minimal deadlock cycle and retransmit them from their sources
   with exponential backoff — trading a bounded packet loss for
   guaranteed progress, like end-to-end recovery in real RoCE fabrics.

Per-stage counters and recovery latencies live on the ladder and surface
through :meth:`summary` — never through the golden
``NetworkStats.as_dict()``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..network.deadlock import (
    deadlock_cycle_payload,
    extract_cycle,
    find_deadlocked_slots,
)
from ..network.fabric import Fabric
from ..router.packet import Packet
from .controller import DrainController

__all__ = ["DegradationLadder"]


class DegradationLadder:
    """Detect -> forced-drain -> drop-and-retransmit escalation engine."""

    def __init__(
        self,
        fabric: Fabric,
        drain_controller: DrainController,
        check_interval: int = 128,
        grace: int = 64,
        drain_retries: int = 3,
        retransmit_backoff_base: int = 8,
        retransmit_backoff_max: int = 1024,
        max_retransmit_attempts: int = 8,
    ) -> None:
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        if drain_retries < 1:
            raise ValueError("need at least one forced-drain retry")
        self.fabric = fabric
        self.drain_controller = drain_controller
        self.check_interval = check_interval
        self.grace = grace
        self.drain_retries = drain_retries
        self.retransmit_backoff_base = retransmit_backoff_base
        self.retransmit_backoff_max = retransmit_backoff_max
        self.max_retransmit_attempts = max_retransmit_attempts

        #: "idle" (watching) or "waiting" (mid-episode, between stages).
        self._state = "idle"
        self._episode_start = 0
        self._retries_used = 0
        self._deadline = 0
        #: Cycle of the episode's most recent stage action (forced drain
        #: or drop); progress past it proves the stage is working.
        self._stage_cycle = 0
        #: Retransmission queue as (ready_cycle, seq, attempt, packet).
        self._retransmit: List[Tuple[int, int, int, Packet]] = []
        self._seq = 0

        # Stage counters (ladder-local; see module docstring).
        self.detections = 0
        self.forced_drains = 0
        self.cycle_drops = 0
        self.packets_dropped = 0
        self.packets_retransmitted = 0
        self.packets_lost_forever = 0
        self.recoveries = 0
        self.recovery_cycles: List[int] = []
        #: Minimal-cycle payload of the most recent detection.
        self.last_cycle_payload: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def _stuck_slots(self):
        return find_deadlocked_slots(self.fabric, assume_ejection_drains=False)

    def _detection_ready(self, cycle: int) -> bool:
        fabric = self.fabric
        return (
            not fabric.frozen
            and self.drain_controller.state == "normal"
            and fabric.packets_in_network > 0
            and cycle - fabric.last_progress_cycle >= self.grace
        )

    def _backoff_window(self) -> int:
        return self.check_interval * (1 << (self._retries_used - 1))

    def _escalate(self, cycle: int) -> None:
        """Stage 2: force a drain window and schedule the re-check."""
        if self.drain_controller.force_drain():
            self.forced_drains += 1
        self._retries_used += 1
        self._state = "waiting"
        self._stage_cycle = cycle
        self._deadline = cycle + self._backoff_window()

    def _degrade(self, cycle: int, stuck) -> None:
        """Stage 3: drop the minimal deadlock cycle and retransmit it."""
        fabric = self.fabric
        slots = extract_cycle(fabric, stuck)
        if slots is None:
            # No rotatable cycle (pure ejection wedge): drop the whole
            # stuck set — the bounded worst case, still live.
            slots = sorted(stuck)
        self.cycle_drops += 1
        for port, vn, vc in slots:
            if fabric._slot_get(port, vn, vc) is None:
                continue
            packet = fabric.fault_drop_slot(port, vn, vc)
            self.packets_dropped += 1
            fabric.stats.packets_lost += 1
            self._schedule_retransmit(cycle, 0, packet)
        # Confirm recovery on the normal cadence; the drop budget resets
        # so a re-formed cycle climbs the full ladder again.
        self._retries_used = 1
        self._state = "waiting"
        self._stage_cycle = cycle
        self._deadline = cycle + self._backoff_window()

    def _schedule_retransmit(self, cycle: int, attempt: int,
                             packet: Packet) -> None:
        if attempt >= self.max_retransmit_attempts:
            self.packets_lost_forever += 1
            return
        delay = min(self.retransmit_backoff_max,
                    self.retransmit_backoff_base << attempt)
        self._seq += 1
        self._retransmit.append((cycle + delay, self._seq, attempt, packet))

    def _pump_retransmits(self, cycle: int) -> None:
        if not self._retransmit:
            return
        ready = sorted(r for r in self._retransmit if r[0] <= cycle)
        if not ready:
            return
        self._retransmit = [r for r in self._retransmit if r[0] > cycle]
        fabric = self.fabric
        for _, _, attempt, packet in ready:
            packet.in_escape = False
            packet.net_entry_cycle = None
            packet.blocked_since = None
            if fabric.offer_packet(packet):
                self.packets_retransmitted += 1
                fabric.stats.packets_retransmitted += 1
            else:
                self._schedule_retransmit(cycle, attempt + 1, packet)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Run the ladder for the current fabric cycle.

        Must run *before* :meth:`DrainController.step` in the simulation
        loop, so a forced drain collapses the countdown the same cycle.
        """
        cycle = self.fabric.cycle
        self._pump_retransmits(cycle)
        if self._state == "idle":
            if cycle % self.check_interval:
                return
            if not self._detection_ready(cycle):
                return
            stuck = self._stuck_slots()
            if not stuck:
                return
            self.detections += 1
            self._episode_start = cycle
            self._retries_used = 0
            self.last_cycle_payload = deadlock_cycle_payload(
                self.fabric, stuck
            )
            self._escalate(cycle)
            return

        # waiting: between a forced drain (or a drop) and its re-check.
        if cycle < self._deadline:
            return
        if self.fabric.frozen or self.drain_controller.state != "normal":
            return  # the forced window is still running; re-check after
        if (
            self.fabric.packets_in_network == 0
            or cycle - self.fabric.last_progress_cycle < self.grace
        ):
            # The fabric is empty or visibly moving again: resolved.
            self._recover(cycle)
            return
        stuck = self._stuck_slots()
        if not stuck:
            self._recover(cycle)
            return
        if self.fabric.last_progress_cycle > self._stage_cycle:
            # The last stage action produced real progress (a drain
            # rotation counts) even though some packets are stuck again:
            # the drains are working, so keep greasing the fabric with
            # them rather than escalating to packet drops.
            self._retries_used = 0
            self._escalate(cycle)
        elif self._retries_used < self.drain_retries:
            self._escalate(cycle)
        else:
            # A whole backoff ladder of forced drains moved nothing:
            # the wedge is undrainable (e.g. storm-pinned pauses).
            self._degrade(cycle, stuck)

    def _recover(self, cycle: int) -> None:
        self.recoveries += 1
        self.recovery_cycles.append(cycle - self._episode_start)
        self._state = "idle"
        self._retries_used = 0

    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> int:
        """First cycle >= *now* at which :meth:`step` may act."""
        if self._state == "waiting":
            nxt = max(now, self._deadline)
        else:
            nxt = now if now % self.check_interval == 0 else (
                (now // self.check_interval + 1) * self.check_interval
            )
        for ready, _, _, _ in self._retransmit:
            if ready < nxt:
                nxt = ready
        return max(now, nxt)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Per-stage counters (kept out of the golden ``as_dict``)."""
        return {
            "detections": self.detections,
            "forced_drains": self.forced_drains,
            "cycle_drops": self.cycle_drops,
            "packets_dropped": self.packets_dropped,
            "packets_retransmitted": self.packets_retransmitted,
            "packets_lost_forever": self.packets_lost_forever,
            "recoveries": self.recoveries,
            "recovery_cycles": list(self.recovery_cycles),
            "pending_retransmits": len(self._retransmit),
            "deadlock_cycle": self.last_cycle_payload,
        }
