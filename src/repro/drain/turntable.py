"""Per-router turn-tables derived from a drain path (Section III-C3).

At runtime each router only needs to know, for each of its input ports
(i.e. each incoming unidirectional link), which output port a drained
packet must turn onto. That mapping is exactly the drain path restricted
to the router, and it is what the hardware stores in its turn-table
registers, configured at boot or after the offline algorithm reruns on a
fault.
"""

from __future__ import annotations

from typing import Dict, List

from ..topology.graph import Link, Topology
from .path import DrainPath

__all__ = ["TurnTable", "build_turn_tables"]


class TurnTable:
    """Drain turn-table of a single router: input link -> output link."""

    def __init__(self, router: int, turns: Dict[Link, Link]) -> None:
        self.router = router
        self._turns = dict(turns)
        for in_link, out_link in self._turns.items():
            if in_link.dst != router or out_link.src != router:
                raise ValueError(
                    f"turn {in_link} -> {out_link} does not pass through "
                    f"router {router}"
                )

    def output_for(self, in_link: Link) -> Link:
        """Output link a packet arriving on *in_link* is drained onto."""
        return self._turns[in_link]

    def input_links(self) -> List[Link]:
        return sorted(self._turns)

    def __len__(self) -> int:
        return len(self._turns)

    def __repr__(self) -> str:
        return f"TurnTable(router={self.router}, entries={len(self)})"


def build_turn_tables(path: DrainPath) -> Dict[int, TurnTable]:
    """Split *path* into one :class:`TurnTable` per router.

    Every router appears (its input links are all on the path), and every
    input link of every router has exactly one entry — the drain path covers
    each unidirectional link exactly once.
    """
    topology: Topology = path.topology
    per_router: Dict[int, Dict[Link, Link]] = {n: {} for n in topology.nodes}
    for link in path.links:
        per_router[link.dst][link] = path.next_link(link)
    tables = {n: TurnTable(n, turns) for n, turns in per_router.items()}
    for n, table in tables.items():
        expected = set(topology.links_into(n))
        if set(table.input_links()) != expected:
            raise ValueError(
                f"turn-table of router {n} misses input links: "
                f"{expected - set(table.input_links())}"
            )
    return tables
