"""Offline drain-path construction (Section III-B).

A *drain path* is a single elementary cycle in the channel-dependency graph
that covers **every** unidirectional link of the topology exactly once. The
paper's existence argument (Section III-A) boils down to a classic fact:
because every bidirectional link contributes two opposing unidirectional
links, every router has equal in-degree and out-degree in the directed link
graph, and the graph is strongly connected; hence an Eulerian circuit over
all unidirectional links exists, and that circuit *is* the drain path.

Two construction engines are provided:

- :func:`find_drain_path` (default ``method="euler"``): Hierholzer's
  algorithm, linear time, guaranteed to succeed on any topology satisfying
  the paper's assumptions. This mirrors the paper's spanning-tree/DFS
  existence construction but covers non-tree links too.
- ``method="hawick-james"``: the paper's described search — enumerate
  elementary circuits of the dependency graph and stop at the first one
  covering all links. Exponential in the worst case; used for small
  topologies and for validating the Euler engine.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..topology.dependency import DependencyGraph, build_dependency_graph
from ..topology.graph import Link, Topology
from .hawick_james import find_circuit

__all__ = [
    "DrainPath",
    "DrainPathError",
    "find_drain_path",
    "euler_drain_path",
    "hawick_james_drain_path",
]


class DrainPathError(ValueError):
    """A drain path could not be built or fails its coverage invariants.

    Carries the offending link sets so callers — in particular the online
    recovery engine, which must degrade gracefully when a fault leaves the
    dependency graph partially coverable — can inspect *which* links are
    uncovered instead of parsing an assertion message.

    ``missing``: links of the topology the path fails to cover.
    ``extra``: links on the path that do not exist in the topology.

    Both are **sorted tuples**, never sets: the payload feeds CLI error
    output, fault-injector recompute records and static-certifier
    counterexamples, all of which must serialize byte-identically across
    runs and interpreters (set iteration order is not stable across
    ``PYTHONHASHSEED`` values).
    """

    def __init__(
        self,
        message: str,
        missing: Sequence[Link] = (),
        extra: Sequence[Link] = (),
    ) -> None:
        super().__init__(message)
        self.missing: Tuple[Link, ...] = tuple(sorted(missing))
        self.extra: Tuple[Link, ...] = tuple(sorted(extra))

    def as_dict(self) -> Dict[str, object]:
        """Deterministic JSON-able payload (sorted ``[src, dst]`` pairs)."""
        return {
            "message": str(self),
            "missing": [[link.src, link.dst] for link in self.missing],
            "extra": [[link.src, link.dst] for link in self.extra],
        }


class DrainPath:
    """An ordered cycle of unidirectional links covering the whole topology.

    ``links[i]`` is followed by ``links[(i+1) % n]``; consecutive links meet
    at a router (``links[i].dst == links[i+1].src``), so the cycle encodes,
    for every link, the turn a drained packet must take.
    """

    def __init__(self, topology: Topology, links: Sequence[Link]) -> None:
        self.topology = topology
        self.links: List[Link] = list(links)
        self._next: Dict[Link, Link] = {}
        self._position: Dict[Link, int] = {}
        n = len(self.links)
        for i, link in enumerate(self.links):
            self._next[link] = self.links[(i + 1) % n]
            self._position[link] = i
        self.validate()

    def __len__(self) -> int:
        return len(self.links)

    def __contains__(self, link: Link) -> bool:
        return link in self._next

    def next_link(self, link: Link) -> Link:
        """The link a drained packet arriving on *link* is forced onto."""
        return self._next[link]

    def position(self, link: Link) -> int:
        """Index of *link* within the cycle."""
        return self._position[link]

    def routers_visited(self) -> List[int]:
        """Router sequence traversed by the drain path (with repetition)."""
        return [link.src for link in self.links]

    def validate(self) -> None:
        """Check all drain-path invariants; raise ``ValueError`` on violation.

        Invariants (Section III-B): the path is a single elementary cycle in
        the dependency graph — consecutive links connect via a legal turn —
        and it covers every unidirectional link of the topology exactly once.
        """
        expected = set(self.topology.unidirectional_links())
        if not self.links:
            raise DrainPathError("drain path is empty", missing=expected)
        seen = set(self.links)
        if len(seen) != len(self.links):
            raise DrainPathError("drain path visits some link more than once")
        if seen != expected:
            missing = expected - seen
            extra = seen - expected
            raise DrainPathError(
                f"drain path does not cover the topology exactly: "
                f"missing={sorted(map(str, missing))[:4]} extra={sorted(map(str, extra))[:4]}",
                missing=missing,
                extra=extra,
            )
        n = len(self.links)
        for i, link in enumerate(self.links):
            nxt = self.links[(i + 1) % n]
            if link.dst != nxt.src:
                raise DrainPathError(
                    f"drain path breaks at position {i}: {link} does not "
                    f"connect to {nxt}"
                )

    def __repr__(self) -> str:
        return f"DrainPath({self.topology.name}, length={len(self.links)})"


def euler_drain_path(
    topology: Topology,
    rng: Optional[random.Random] = None,
    start: Optional[int] = None,
) -> DrainPath:
    """Construct a drain path via Hierholzer's Eulerian-circuit algorithm.

    Runs in time linear in the number of links. *rng*, when given, shuffles
    edge exploration order so different (equally valid) drain paths can be
    sampled — useful for the path-shape ablation benchmarks.

    *start*, when given, roots the circuit at that router and skips the
    global connectivity precondition: the online recovery engine uses this
    to cover one connected component of a survivor graph whose other
    routers are isolated (their links died). Coverage is still enforced by
    :meth:`DrainPath.validate` — an edge set not fully reachable from
    *start* raises :class:`DrainPathError` listing the uncovered links.
    """
    if start is None:
        if not topology.is_connected():
            raise DrainPathError("drain path requires a connected topology")
        start = 0
    # Outgoing-arc stacks per router; each unidirectional link used once.
    out_arcs: Dict[int, List[int]] = {
        n: list(topology.neighbors(n)) for n in topology.nodes
    }
    if rng is not None:
        for arcs in out_arcs.values():
            rng.shuffle(arcs)
    circuit: List[int] = []  # router sequence, built back-to-front
    stack: List[int] = [start]
    while stack:
        node = stack[-1]
        if out_arcs[node]:
            stack.append(out_arcs[node].pop())
        else:
            circuit.append(stack.pop())
    circuit.reverse()
    links = [Link(circuit[i], circuit[i + 1]) for i in range(len(circuit) - 1)]
    return DrainPath(topology, links)


def hawick_james_drain_path(
    topology: Topology, max_circuits: Optional[int] = None
) -> DrainPath:
    """Construct a drain path by elementary-circuit search (paper's method).

    Enumerates elementary circuits of the channel-dependency graph with the
    Hawick-James method and stops at the first circuit covering all links.
    Worst-case exponential; intended for small topologies and validation.
    """
    graph: DependencyGraph = build_dependency_graph(topology, allow_u_turns=True)
    adjacency = graph.adjacency_indices()
    total = graph.num_links

    circuit = find_circuit(
        adjacency,
        predicate=lambda circ: len(circ) == total,
        max_circuits=max_circuits,
    )
    if circuit is None:
        raise DrainPathError(
            f"no covering circuit found for {topology.name} "
            f"(searched up to {max_circuits} circuits)",
            missing=graph.links,
        )
    links = [graph.links[i] for i in circuit]
    return DrainPath(topology, links)


def find_drain_path(
    topology: Topology,
    method: str = "euler",
    rng: Optional[random.Random] = None,
    max_circuits: Optional[int] = None,
) -> DrainPath:
    """Find a drain path for *topology* using the requested engine."""
    if method == "euler":
        return euler_drain_path(topology, rng=rng)
    if method == "hawick-james":
        return hawick_james_drain_path(topology, max_circuits=max_circuits)
    raise ValueError(f"unknown drain-path method {method!r}")
