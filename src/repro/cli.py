"""Command-line interface for the DRAIN reproduction.

Subcommands:

- ``repro-drain list`` — the available experiments (paper artefacts);
- ``repro-drain experiment fig11`` — regenerate one artefact and print its
  rows (``--scale full`` for paper-like sweep sizes; ``--workers N`` fans
  the sweep out over worker processes, ``--no-cache`` disables the
  on-disk result cache, ``--out-dir DIR`` writes the rows and a JSON run
  manifest alongside them);
- ``repro-drain sweep`` — a generic parallel injection-rate sweep over
  schemes × seeds × rates on any topology (``--batch auto`` groups
  compatible trials into lockstep batches — same results, amortized
  setup; also accepted by ``experiment`` and ``faults``);
- ``repro-drain run`` — a single simulation with explicit knobs;
- ``repro-drain faults`` — inject a seed-derived runtime fault schedule
  into one simulation and write the recovery curve (windowed throughput /
  latency / loss around each fault) as a JSON artefact;
- ``repro-drain drainpath`` — run the offline algorithm on a topology and
  print the resulting drain path / turn-table summary;
- ``repro-drain check`` — statically certify (or refute) a configuration's
  deadlock-freedom claim: drain-cycle coverage for the DRAIN scheme,
  dependency-graph acyclicity for turn-restricted routing, and — with
  ``--flow-control pause_resume`` — the pause-augmented buffer-dependency
  graph of a lossless (PFC) fabric, including escape-VC pause exemptions
  and headroom feasibility. Exit 0 on ``CERTIFIED``, 1 on ``REFUTED``
  (with a concrete counterexample), 2 on bad input; ``--json`` emits the
  full certificate;
- ``repro-drain lint`` — run the determinism lint pass (DET001-DET012)
  over Python sources; exit 1 when findings exist;
- ``repro-drain bench`` — run the deterministic benchmark suite and write
  a ``BENCH_<stamp>.json`` report, ``--compare A.json B.json`` to
  judge a new report against a baseline (exit 1 on regression) — the CI
  non-regression guard — or ``--trend [DIR]`` to fold the committed
  report series into a calibration-normalised per-case trajectory table;
- ``repro-drain cache`` — inspect (``info``, the default action) or
  ``clear`` the on-disk trial result cache and the compiled-structure
  store (``--structs-only`` / ``--results-only`` to restrict).

Harness commands enable the compiled-structure store by default at
``<cache dir>/structs`` (``--no-struct-cache`` or
``REPRO_STRUCT_CACHE=off`` disables it; ``REPRO_STRUCT_CACHE=<dir>``
relocates it), amortizing distance/routing/drain compilation across
trials, workers and runs with bit-identical results.

``repro-drain run``/``sweep`` accept ``--profile`` to wrap the work in
``cProfile`` and write ``.prof`` + top-25 cumulative text next to the run
artefacts.

Topology specifiers: ``mesh:WxH``, ``torus:WxH``, ``ring:N``,
``smallworld:N+S``, ``randomregular:NdD``, ``chiplet:CxWxH``,
``leafspine:LxS[uU][ew]`` (L leaves, S spines, optional U uplinks per
leaf and an east-west leaf ring), ``fattree:K[uU]``; append ``--faults
K`` to remove K random links (connectivity preserved).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import random
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .analysis import (
    ROUTING_NAMES,
    certify_configuration,
    certify_drain_cover,
    certify_pause_configuration,
    lint_paths,
)
from .core.config import DrainConfig, NetworkConfig, PfcConfig, Scheme, SimConfig
from .core.simulator import Simulation
from .drain.path import DrainPathError, find_drain_path
from .drain.turntable import build_turn_tables
from .faults import FAULT_POLICIES, ONSET_DISTRIBUTIONS, FaultSchedule
from .harness import (
    Harness,
    ResultCache,
    build_manifest,
    fault_recovery_trial,
    write_manifest,
)
from .experiments import (
    common,
    fault_recovery,
    fig1_fig2_scenarios,
    fig3_deadlock_likelihood,
    fig4_vnet_power,
    fig5_updown_gap,
    fig9_area_power,
    fig10_throughput,
    fig11_latency,
    fig12_ligra,
    fig13_parsec,
    fig14_epoch,
    fig15_tail,
    heterogeneous,
    lifetime,
    lossless_pfc,
    path_quality,
    sensitivity,
    table1_comparison,
    table2_parameters,
)
from . import structcache
from .topology.chiplet import make_chiplet_system
from .topology.graph import Topology
from .topology.irregular import inject_link_faults
from .topology.datacenter import make_fat_tree, make_leaf_spine
from .topology.mesh import make_mesh, make_ring, make_torus
from .topology.randomized import make_random_regular, make_small_world
from .traffic.synthetic import SyntheticTraffic, pattern_by_name

__all__ = ["main", "parse_topology", "EXPERIMENTS"]

EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1_comparison.run,
    "table2": table2_parameters.run,
    "fig1-fig2": fig1_fig2_scenarios.run,
    "fig3": fig3_deadlock_likelihood.run,
    "fig4": fig4_vnet_power.run,
    "fig5": fig5_updown_gap.run,
    "fig9": fig9_area_power.run,
    "fig9-moesi": fig9_area_power.moesi_comparison,
    "fig10": fig10_throughput.run,
    "fig11": fig11_latency.run,
    "fig12": fig12_ligra.run,
    "fig13": fig13_parsec.run,
    "fig14": fig14_epoch.run,
    "fig15": fig15_tail.run,
    "section6": heterogeneous.run,
    "fault-recovery": fault_recovery.run,
    "lifetime": lifetime.run,
    "lossless-pfc": lossless_pfc.run,
    "path-quality": path_quality.run,
    "sensitivity": sensitivity.run,
}

#: Experiments whose run() takes no Scale argument (analytical tables).
_SCALELESS = {"table1", "table2", "fig9", "fig9-moesi"}


def parse_topology(spec: str, faults: int = 0, seed: int = 1) -> Topology:
    """Build a topology from a CLI specifier string."""
    kind, _, arg = spec.partition(":")
    rng = random.Random(seed)
    if kind == "mesh" or kind == "torus":
        try:
            w, h = (int(v) for v in arg.split("x"))
        except ValueError:
            raise ValueError(f"bad {kind} spec {spec!r}; expected {kind}:WxH")
        topo = make_mesh(w, h) if kind == "mesh" else make_torus(w, h)
    elif kind == "ring":
        topo = make_ring(int(arg))
    elif kind == "smallworld":
        try:
            n, s = (int(v) for v in arg.split("+"))
        except ValueError:
            raise ValueError(f"bad spec {spec!r}; expected smallworld:N+S")
        topo = make_small_world(n, s, rng)
    elif kind == "randomregular":
        try:
            n, d = (int(v) for v in arg.split("d"))
        except ValueError:
            raise ValueError(f"bad spec {spec!r}; expected randomregular:NdD")
        topo = make_random_regular(n, d, rng)
    elif kind == "chiplet":
        try:
            c, w, h = (int(v) for v in arg.split("x"))
        except ValueError:
            raise ValueError(f"bad spec {spec!r}; expected chiplet:CxWxH")
        topo = make_chiplet_system(w, h, num_chiplets=c).topology
    elif kind == "leafspine":
        text = arg
        east_west = text.endswith("ew")
        if east_west:
            text = text[:-2]
        text, _, utxt = text.partition("u")
        try:
            leaves, spines = (int(v) for v in text.split("x"))
            uplinks = int(utxt) if utxt else None
        except ValueError:
            raise ValueError(
                f"bad spec {spec!r}; expected leafspine:LxS[uU][ew]"
            )
        topo = make_leaf_spine(leaves, spines, uplinks=uplinks,
                               east_west=east_west)
    elif kind == "fattree":
        text, _, utxt = arg.partition("u")
        try:
            pods = int(text)
            uplinks = int(utxt) if utxt else None
        except ValueError:
            raise ValueError(f"bad spec {spec!r}; expected fattree:K[uU]")
        topo = make_fat_tree(pods, uplinks=uplinks)
    else:
        raise ValueError(
            f"unknown topology kind {kind!r}; see repro-drain --help"
        )
    if faults:
        topo = inject_link_faults(topo, faults, rng)
    return topo


def _cmd_list(args: argparse.Namespace) -> int:
    print("available experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    return 0


def _activate_struct_store(args: argparse.Namespace) -> None:
    """CLI structure-store policy: on by default, next to the result cache.

    ``--no-struct-cache`` disables it outright; otherwise a set
    ``$REPRO_STRUCT_CACHE`` wins (a path, or ``0``/``off`` to disable),
    and the default location is ``<cache dir>/structs``.
    """
    if getattr(args, "no_struct_cache", False):
        structcache.deactivate()
        return
    env = os.environ.get(structcache.ENV_VAR)
    if env is not None:
        if structcache.env_disabled(env):
            structcache.deactivate()
        else:
            structcache.activate(env)
        return
    cache_dir = getattr(args, "cache_dir", None)
    root = Path(cache_dir) / "structs" if cache_dir else None
    structcache.activate(root)  # None -> default (<cache root>/structs)


def _build_harness(args: argparse.Namespace) -> Harness:
    """Harness from the shared ``--workers/--no-cache/--cache-dir`` flags."""
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)  # None -> default location
    _activate_struct_store(args)
    return Harness(workers=args.workers, cache=cache,
                   timeout=getattr(args, "timeout", None),
                   preflight=not getattr(args, "no_preflight", False),
                   batch=getattr(args, "batch", None))


def _write_artefact(
    name: str,
    rows: List[Dict],
    harness: Harness,
    scale,
    out_dir: str,
) -> None:
    """Persist rows as ``<name>.json`` plus ``<name>.manifest.json``."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.json").write_text(
        json.dumps(rows, indent=2, sort_keys=True, default=str) + "\n"
    )
    manifest = build_manifest(name, harness, scale=scale)
    path = write_manifest(manifest, directory)
    print(f"wrote {directory / (name + '.json')} and {path}", file=sys.stderr)


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try: repro-drain list",
              file=sys.stderr)
        return 2
    fn = EXPERIMENTS[name]
    harness = _build_harness(args)
    scale = None
    if name in _SCALELESS:
        rows = fn()
    else:
        scale = common.Scale.full() if args.scale == "full" else common.Scale.ci()
        kwargs = {"scale": scale}
        if "harness" in inspect.signature(fn).parameters:
            kwargs["harness"] = harness
        rows = fn(**kwargs)
    printable = [
        {k: v for k, v in row.items() if isinstance(v, (int, float, str, bool))}
        for row in rows
    ]
    columns = list(printable[0].keys()) if printable else []
    print(common.format_table(printable, columns=columns, title=name))
    if harness.records:
        executed = harness.trials_executed
        print(
            f"[harness] {len(harness.records)} trials "
            f"({harness.cache_hits} cached, {executed} executed, "
            f"{harness.simulated_seconds:.1f}s simulated, "
            f"workers={harness.workers})",
            file=sys.stderr,
        )
    if args.out_dir:
        _write_artefact(name, printable, harness, scale, args.out_dir)
    return 0


def _write_profile(profiler, name: str, directory: Optional[str]) -> None:
    """Dump ``<name>.prof`` plus a top-25 cumulative text summary."""
    import io
    import pstats

    target = Path(directory) if directory else Path.cwd()
    target.mkdir(parents=True, exist_ok=True)
    prof_path = target / f"{name}.prof"
    profiler.dump_stats(str(prof_path))
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(25)
    txt_path = target / f"{name}.profile.txt"
    txt_path.write_text(buf.getvalue())
    print(f"wrote {prof_path} and {txt_path}", file=sys.stderr)


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Generic parallel sweep: schemes × seeds × rates on one topology."""
    topo = parse_topology(args.topology, faults=args.faults, seed=args.seed)
    scale = common.Scale.full() if args.scale == "full" else common.Scale.ci()
    try:
        schemes = [Scheme(s) for s in args.schemes.split(",") if s]
    except ValueError:
        known = ", ".join(s.value for s in Scheme)
        print(f"unknown scheme in --schemes {args.schemes!r}; known: {known}",
              file=sys.stderr)
        return 2
    try:
        rates = ([float(r) for r in args.rates.split(",")] if args.rates
                 else list(scale.sweep_rates))
    except ValueError:
        print(f"--rates must be comma-separated numbers, got {args.rates!r}",
              file=sys.stderr)
        return 2
    mesh_width = None
    if args.topology.startswith("mesh:"):
        mesh_width = int(args.topology.split(":")[1].split("x")[0])
    if args.profile:
        # Profiling across worker processes is meaningless; keep the
        # trials in-process so cProfile sees the simulator frames.
        args.workers = 1
    harness = _build_harness(args)

    specs = []
    keys = []
    for scheme in schemes:
        for seed in range(1, args.seeds + 1):
            for rate in rates:
                specs.append(
                    common.synthetic_trial_for(
                        topo, scheme, rate, scale,
                        pattern=args.pattern, mesh_width=mesh_width, seed=seed,
                    )
                )
                keys.append((scheme, seed, rate))
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        results = harness.run(specs, label="sweep")
        profiler.disable()
        profile_name = f"sweep_{topo.name}_{args.pattern}".replace(":", "_")
        _write_profile(profiler, profile_name, args.out_dir)
    else:
        results = harness.run(specs, label="sweep")

    rows = [
        {
            "scheme": scheme.value,
            "seed": seed,
            "rate": rate,
            "throughput": res["throughput"],
            "latency": res["avg_latency"],
            "p99_latency": res["p99_latency"],
            "ejected": res["ejected"],
        }
        for (scheme, seed, rate), res in zip(keys, results)
    ]
    title = f"sweep {topo.name} {args.pattern}"
    columns = ["scheme", "seed", "rate", "throughput", "latency",
               "p99_latency", "ejected"]
    print(common.format_table(rows, columns=columns, title=title))
    print(
        f"[harness] {len(harness.records)} trials "
        f"({harness.cache_hits} cached, {harness.trials_executed} executed, "
        f"{harness.simulated_seconds:.1f}s simulated, "
        f"workers={harness.workers})",
        file=sys.stderr,
    )
    if args.out_dir:
        name = f"sweep_{topo.name}_{args.pattern}".replace(":", "_")
        _write_artefact(name, rows, harness, scale, args.out_dir)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    topo = parse_topology(args.topology, faults=args.faults, seed=args.seed)
    scheme = Scheme(args.scheme)
    num_vns = args.vns if args.vns else (1 if scheme is Scheme.DRAIN else 3)
    config = SimConfig(
        scheme=scheme,
        network=NetworkConfig(num_vns=num_vns, vcs_per_vn=args.vcs,
                              packet_size_flits=args.packet_flits),
        drain=DrainConfig(epoch=args.epoch),
        seed=args.seed,
        flow_control="pause_resume" if args.pfc else "credit",
        pfc=PfcConfig(pause_threshold=args.pause_threshold,
                      resume_threshold=args.resume_threshold,
                      headroom=args.headroom),
    )
    mesh_width = None
    if args.topology.startswith("mesh:"):
        mesh_width = int(args.topology.split(":")[1].split("x")[0])
    traffic = SyntheticTraffic(
        pattern_by_name(args.pattern, topo.num_nodes, mesh_width),
        args.rate,
        random.Random(args.seed),
    )
    sim = Simulation(topo, config, traffic, flow_control=args.flow_control,
                     halt_on_deadlock=args.halt_on_deadlock)
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        stats = sim.run(args.cycles, warmup=args.warmup)
        profiler.disable()
        profile_name = f"run_{topo.name}_{scheme.value}".replace(":", "_")
        _write_profile(profiler, profile_name, None)
    else:
        stats = sim.run(args.cycles, warmup=args.warmup)
    if args.report:
        from .core.report import run_report

        print(run_report(sim))
        return 0
    print(f"topology:        {topo.name} ({topo.num_nodes} nodes)")
    print(f"scheme:          {scheme.value}  (VN={num_vns}, VC={args.vcs})")
    print(f"cycles:          {stats.cycles} (warmup {args.warmup})")
    print(f"packets:         {stats.packets_injected} injected, "
          f"{stats.packets_ejected} delivered")
    if stats.latency.count:
        print(f"avg latency:     {stats.avg_latency:.2f} cycles")
        print(f"p99 latency:     {stats.p99_latency:.2f} cycles")
    print(f"throughput:      {sim.throughput():.4f} packets/node/cycle")
    print(f"avg hops:        {stats.hops.mean:.2f}")
    print(f"misroutes:       {stats.misroutes}")
    print(f"drain windows:   {stats.drain_windows} "
          f"(full drains: {stats.full_drains})")
    print(f"deadlock events: {stats.deadlock_events}")
    if hasattr(sim.fabric, "pfc_summary"):
        pfc = sim.fabric.pfc_summary()
        print(f"pfc:             {pfc['pauses_asserted']} pauses, "
              f"{pfc['resumes']} resumes, {pfc['pause_stalls']} stalls")
    if sim.deadlocked:
        payload = sim.watchdog.cycle_payload
        if payload is not None:
            hop = " -> ".join(
                f"r{h['router']}" for h in payload["cycle"]
            )
            detail = (f"buffer-cycle of {payload['length']} slot(s) over "
                      f"routers {payload['routers']} ({hop})")
        else:
            detail = "no rotatable buffer cycle (ejection wedge)"
        print(f"error: deadlock detected at cycle {sim.fabric.cycle}: "
              f"{detail}", file=sys.stderr)
        return 2
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """One fault-injected run; prints and optionally writes the curve."""
    topo = parse_topology(args.topology, seed=args.seed)
    scale = common.Scale.full() if args.scale == "full" else common.Scale.ci()
    harness = _build_harness(args)
    cycles = args.cycles if args.cycles else scale.total_cycles * 2
    window = (cycles * 2 // 5, cycles * 3 // 5)
    schedule = FaultSchedule.generate(
        topo, args.num_faults, seed=args.seed, window=window,
        onset=args.onset, transient_fraction=args.transient_fraction,
        router_fraction=args.router_fraction,
    )
    mesh_width = None
    if args.topology.startswith("mesh:"):
        mesh_width = int(args.topology.split(":")[1].split("x")[0])
    config = common.scheme_config(Scheme.DRAIN, scale, seed=args.seed)
    rate = args.rate if args.rate is not None else scale.low_load_rate
    curve_window = max(50, scale.measure // 8)
    spec = fault_recovery_trial(
        topo, config, rate, cycles=cycles, warmup=scale.warmup,
        schedule=schedule, policy=args.policy, curve_window=curve_window,
        mesh_width=mesh_width,
    )
    (res,) = harness.run([spec], label="faults")
    faults = res["faults"]

    print(f"topology:        {topo.name} ({topo.num_nodes} nodes, "
          f"{topo.num_edges} bidirectional links)")
    print(f"schedule:        {len(schedule.events)} events "
          f"(seed {args.seed}, onset {args.onset}), policy {args.policy}")
    for event in schedule.events:
        life = (f"transient until {event.repair_cycle}" if event.transient
                else "permanent")
        print(f"  cycle {event.cycle:>6}: {event.kind} {event.target} "
              f"({life})")
    print(f"faults applied:  {faults['faults_applied']} "
          f"({faults['faults_revived']} revived)")
    print(f"packets lost:    {faults['packets_lost']} "
          f"({faults['packets_retransmitted']} retransmitted, "
          f"{faults['packets_unroutable']} unroutable)")
    print(f"drain recovery:  {faults['drain_recomputes']} recomputes; "
          f"{res.get('drain_covered_links', 0)} of {res['links_alive']} "
          f"surviving links covered by "
          f"{res.get('drain_cycles_installed', 0)} cycle(s)")
    print(f"unreachable:     {faults['unreachable_pairs']} node pairs")
    curve = faults["recovery_curve"]
    if curve:
        columns = ["cycle", "throughput", "avg_latency", "ejected", "lost",
                   "retransmitted", "in_network", "faults_active"]
        print(common.format_table(curve, columns=columns,
                                  title="recovery curve"))
    if args.out_dir:
        directory = Path(args.out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        name = f"faults_{topo.name}_{args.policy}".replace(":", "_")
        payload = {
            "topology": topo.name,
            "policy": args.policy,
            "rate": rate,
            "schedule": schedule.as_dict(),
            "summary": {k: v for k, v in faults.items()
                        if k != "recovery_curve"},
            "curve": curve,
        }
        (directory / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        manifest = build_manifest(name, harness, scale=scale)
        path = write_manifest(manifest, directory)
        print(f"wrote {directory / (name + '.json')} and {path}",
              file=sys.stderr)
    return 0


def _cmd_drainpath(args: argparse.Namespace) -> int:
    topo = parse_topology(args.topology, faults=args.faults, seed=args.seed)
    path = find_drain_path(topo, method=args.method)
    tables = build_turn_tables(path)
    print(f"topology:   {topo.name}")
    print(f"nodes:      {topo.num_nodes}")
    print(f"links:      {topo.num_edges} bidirectional "
          f"({2 * topo.num_edges} unidirectional)")
    print(f"drain path: {len(path)} links (method: {args.method})")
    print(f"turn-table entries: "
          f"{sum(len(t) for t in tables.values())} across "
          f"{len(tables)} routers")
    if args.show_path:
        print("path:", " -> ".join(str(link) for link in path.links))
    return 0


def _parse_flows(pairs: List[str]) -> Optional[List]:
    """``--flow SRC-DST`` strings to (src, dst) tuples, or None if empty."""
    if not pairs:
        return None
    flows = []
    for text in pairs:
        try:
            src, dst = (int(v) for v in text.split("-"))
        except ValueError:
            raise ValueError(f"bad --flow {text!r}; expected SRC-DST")
        flows.append((src, dst))
    return flows


def _cmd_check(args: argparse.Namespace) -> int:
    """Statically certify or refute one configuration's deadlock claim."""
    topo = parse_topology(args.topology, faults=args.faults, seed=args.seed)
    scheme = Scheme(args.scheme)
    routing = None if args.routing == "auto" else args.routing
    schedule = None
    if args.schedule:
        data = json.loads(Path(args.schedule).read_text())
        schedule = FaultSchedule.from_dict(data)
    elif args.num_faults:
        schedule = FaultSchedule.generate(
            topo, args.num_faults, seed=args.seed,
            window=(0, 1000), onset="uniform",
        )

    if args.flow_control == "pause_resume":
        # Pause-aware path: certify the pause-augmented buffer-dependency
        # graph. Infeasible PFC thresholds and malformed flows raise
        # ValueError, which main() turns into a one-line exit-2 error.
        if args.omit_link:
            raise ValueError(
                "--omit-link is a drain-cover breakage knob; it has no "
                "meaning under --flow-control pause_resume"
            )
        pfc = PfcConfig(pause_threshold=args.pfc_threshold,
                        resume_threshold=args.pfc_resume,
                        headroom=args.pfc_headroom)
        cert = certify_pause_configuration(
            topo, scheme=scheme, pfc=pfc,
            vcs_per_vn=args.vcs, num_vns=args.vns,
            flows=_parse_flows(args.flow),
            routing=routing, schedule=schedule,
            method=args.method, max_circuits=args.max_circuits,
        )
    elif args.omit_link and scheme is Scheme.DRAIN and routing is None:
        # Deliberate-breakage knob: build the drain cover over a weakened
        # topology, then certify it against the *real* one — the omitted
        # links surface as the uncovered-link counterexample.
        weakened = topo.copy()
        for pair in args.omit_link:
            a, b = (int(v) for v in pair.split("-"))
            weakened.remove_edge(a, b)
        cover = [find_drain_path(weakened, method=args.method)]
        cert = certify_drain_cover(
            topo, cover, subject_extra={"scheme": scheme.value,
                                        "omitted_links": sorted(args.omit_link)},
        )
    else:
        cert = certify_configuration(
            topo, scheme=scheme, routing=routing, schedule=schedule,
            method=args.method, max_circuits=args.max_circuits,
        )
    if args.json:
        print(cert.to_json())
    else:
        print(cert.summary())
    return 0 if cert.certified else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark suite, or compare two reports (CI guard)."""
    from . import bench

    if args.trend is not None:
        print(bench.render_trend(Path(args.trend)))
        return 0
    if args.compare:
        base = bench.load_report(Path(args.compare[0]))
        new = bench.load_report(Path(args.compare[1]))
        result = bench.compare_reports(base, new, tolerance=args.tolerance)
        for line in result.lines:
            print(line)
        if result.regressions:
            print(
                f"{len(result.regressions)} case(s) regressed beyond "
                f"{args.tolerance:.0%}: {', '.join(result.regressions)}",
                file=sys.stderr,
            )
            return 1
        print("no regressions")
        return 0
    names = [n for n in args.cases.split(",") if n] if args.cases else None
    print(f"running bench suite (repeat={args.repeat}) ...")
    report = bench.run_suite(names, repeat=args.repeat, log=print)
    out = Path(args.out) if args.out else Path.cwd() / bench.default_report_name()
    bench.write_report(report, out)
    print(f"wrote {out}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Determinism lint pass over Python sources (DET001-DET012)."""
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} determinism finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the result cache + compiled-structure store."""
    want_results = not args.structs_only
    want_structs = not args.results_only
    if not (want_results or want_structs):
        print("error: --structs-only and --results-only are mutually "
              "exclusive", file=sys.stderr)
        return 2

    cache = ResultCache(args.cache_dir)
    env = os.environ.get(structcache.ENV_VAR)
    if env is not None and not structcache.env_disabled(env):
        store = structcache.StructStore(env)
    elif args.cache_dir:
        store = structcache.StructStore(Path(args.cache_dir) / "structs")
    else:
        store = structcache.StructStore()  # default (<cache root>/structs)

    if args.action == "clear":
        if want_results:
            print(f"results: removed {cache.clear()} entries from "
                  f"{cache.root}")
        if want_structs:
            print(f"structs: removed {store.clear()} artefacts from "
                  f"{store.root}")
        return 0

    if want_results:
        print(f"results: {len(cache)} entries at {cache.root}")
    if want_structs:
        counts = store.entry_counts()
        total = sum(counts.values())
        breakdown = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        size_mib = store.size_bytes() / (1024 * 1024)
        print(f"structs: {total} artefacts ({breakdown}) at {store.root} "
              f"[{size_mib:.1f} MiB]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-drain",
        description="DRAIN (HPCA 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def add_harness_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: $REPRO_WORKERS or 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk trial result cache")
        p.add_argument("--cache-dir", default=None,
                       help="cache location (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro-drain)")
        p.add_argument("--out-dir", default=None,
                       help="write rows JSON + run manifest to this directory "
                            "(e.g. benchmarks/results)")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-trial wall-clock timeout in seconds; timed "
                            "out trials are retried on a fresh worker")
        p.add_argument("--no-struct-cache", action="store_true",
                       help="disable the compiled-structure store (default "
                            "location: <cache dir>/structs, or "
                            "$REPRO_STRUCT_CACHE)")
        p.add_argument("--no-preflight", action="store_true",
                       help="skip static pre-flight validation of trial "
                            "specs (repro-drain check run per config)")
        p.add_argument("--batch", default=None, metavar="MODE",
                       help="cross-trial lockstep batching: 'off' (default), "
                            "'auto' (group compatible specs into batches of "
                            "16 when a group has >= 4 members) or an integer "
                            "batch size; results are bit-identical to solo "
                            "runs and share the same cache entries "
                            "(default: $REPRO_BATCH or off)")

    p_exp = sub.add_parser("experiment", help="regenerate a paper artefact")
    p_exp.add_argument("name")
    p_exp.add_argument("--scale", choices=("ci", "full"), default="ci")
    add_harness_flags(p_exp)

    p_sweep = sub.add_parser(
        "sweep", help="parallel injection sweep: schemes x seeds x rates"
    )
    p_sweep.add_argument("--topology", default="mesh:8x8")
    p_sweep.add_argument("--faults", type=int, default=0)
    p_sweep.add_argument("--seed", type=int, default=1,
                         help="seed for topology construction/faults")
    p_sweep.add_argument("--schemes", default="escape_vc,spin,drain",
                         help="comma-separated scheme names")
    p_sweep.add_argument("--pattern", default="uniform_random")
    p_sweep.add_argument("--rates", default="",
                         help="comma-separated injection rates "
                              "(default: the scale's sweep rates)")
    p_sweep.add_argument("--seeds", type=int, default=1,
                         help="number of seeds per (scheme, rate)")
    p_sweep.add_argument("--scale", choices=("ci", "full"), default="ci")
    p_sweep.add_argument("--profile", action="store_true",
                         help="wrap the sweep in cProfile (forces "
                              "--workers 1) and write .prof + top-25 "
                              "cumulative text next to the run artefacts")
    add_harness_flags(p_sweep)

    p_run = sub.add_parser("run", help="run a single simulation")
    p_run.add_argument("--topology", default="mesh:8x8")
    p_run.add_argument("--faults", type=int, default=0)
    p_run.add_argument("--scheme", default="drain",
                       choices=[s.value for s in Scheme])
    p_run.add_argument("--pattern", default="uniform_random")
    p_run.add_argument("--rate", type=float, default=0.05)
    p_run.add_argument("--cycles", type=int, default=5000)
    p_run.add_argument("--warmup", type=int, default=1000)
    p_run.add_argument("--vns", type=int, default=0,
                       help="virtual networks (0 = scheme default)")
    p_run.add_argument("--vcs", type=int, default=2)
    p_run.add_argument("--epoch", type=int, default=2048)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--flow-control", choices=("vct", "wormhole"),
                       default="vct")
    p_run.add_argument("--pfc", action="store_true",
                       help="lossless pause/resume (PFC) flow control "
                            "instead of credits")
    p_run.add_argument("--pause-threshold", type=int, default=1,
                       help="row occupancy asserting XOFF (with --pfc)")
    p_run.add_argument("--resume-threshold", type=int, default=0,
                       help="row occupancy releasing XON (with --pfc)")
    p_run.add_argument("--headroom", type=int, default=1,
                       help="reserved slots absorbing in-flight packets "
                            "after XOFF (with --pfc)")
    p_run.add_argument("--halt-on-deadlock", action="store_true",
                       help="stop at the first watchdog-confirmed deadlock "
                            "and exit 2 with the concrete buffer cycle")
    p_run.add_argument("--packet-flits", type=int, default=1,
                       help="VCT link-serialisation length in flits")
    p_run.add_argument("--report", action="store_true",
                       help="print a full run report (gem5 stats.txt style)")
    p_run.add_argument("--profile", action="store_true",
                       help="wrap the run in cProfile and write .prof + "
                            "top-25 cumulative text in the cwd")

    p_faults = sub.add_parser(
        "faults", help="fault-injected run with online drain recovery"
    )
    p_faults.add_argument("--topology", default="mesh:4x4")
    p_faults.add_argument("--num-faults", type=int, default=1,
                          help="number of fault events to schedule")
    p_faults.add_argument("--policy", choices=FAULT_POLICIES,
                          default="drop_retransmit",
                          help="what happens to flits in flight on a dead "
                               "link")
    p_faults.add_argument("--onset", choices=ONSET_DISTRIBUTIONS,
                          default="uniform",
                          help="distribution of fault onset cycles")
    p_faults.add_argument("--transient-fraction", type=float, default=0.0,
                          help="fraction of faults that heal after a while")
    p_faults.add_argument("--router-fraction", type=float, default=0.0,
                          help="fraction of faults that kill a whole router")
    p_faults.add_argument("--rate", type=float, default=None,
                          help="injection rate (default: the scale's low "
                               "load rate)")
    p_faults.add_argument("--cycles", type=int, default=0,
                          help="total cycles (default: 2x the scale's run)")
    p_faults.add_argument("--seed", type=int, default=1)
    p_faults.add_argument("--scale", choices=("ci", "full"), default="ci")
    add_harness_flags(p_faults)

    p_path = sub.add_parser("drainpath", help="compute a drain path")
    p_path.add_argument("--topology", default="mesh:8x8")
    p_path.add_argument("--faults", type=int, default=0)
    p_path.add_argument("--seed", type=int, default=1)
    p_path.add_argument("--method", choices=("euler", "hawick-james"),
                        default="euler")
    p_path.add_argument("--show-path", action="store_true")

    p_check = sub.add_parser(
        "check", help="statically certify or refute a configuration"
    )
    p_check.add_argument("--topology", default="mesh:8x8")
    p_check.add_argument("--faults", type=int, default=0,
                         help="remove K random links before certification")
    p_check.add_argument("--seed", type=int, default=1)
    p_check.add_argument("--scheme", default="drain",
                         choices=[s.value for s in Scheme])
    p_check.add_argument("--routing", default="auto",
                         choices=("auto",) + ROUTING_NAMES,
                         help="routing function to certify (auto = the "
                              "scheme's own static claim)")
    p_check.add_argument("--method", choices=("euler", "hawick-james"),
                         default="euler",
                         help="drain-cover construction engine")
    p_check.add_argument("--max-circuits", type=int, default=None,
                         help="hawick-james circuit budget")
    p_check.add_argument("--schedule", default=None,
                         help="JSON fault-schedule file; certification runs "
                              "over the post-fault survivor")
    p_check.add_argument("--num-faults", type=int, default=0,
                         help="generate a seed-derived schedule of K faults")
    p_check.add_argument("--omit-link", action="append", default=[],
                         metavar="A-B",
                         help="(drain) build the cover without this "
                              "bidirectional link, then certify against the "
                              "full topology — a deliberate-breakage demo; "
                              "repeatable")
    p_check.add_argument("--flow-control", choices=("credit", "pause_resume"),
                         default="credit",
                         help="certify under credit (default) or lossless "
                              "pause/resume (PFC) flow control; pause mode "
                              "builds the pause-augmented buffer-dependency "
                              "graph")
    p_check.add_argument("--pfc-threshold", type=int, default=1,
                         help="PFC pause threshold (with pause_resume)")
    p_check.add_argument("--pfc-resume", type=int, default=0,
                         help="PFC resume threshold (with pause_resume)")
    p_check.add_argument("--pfc-headroom", type=int, default=1,
                         help="PFC headroom slots (with pause_resume)")
    p_check.add_argument("--vcs", type=int, default=2,
                         help="VCs per VN — the PFC row depth "
                              "(with pause_resume)")
    p_check.add_argument("--vns", type=int, default=1,
                         help="virtual networks (with pause_resume)")
    p_check.add_argument("--flow", action="append", default=[],
                         metavar="SRC-DST",
                         help="restrict the pause BDG to this pinned flow; "
                              "repeatable (default: all-pairs)")
    p_check.add_argument("--json", action="store_true",
                         help="emit the full certificate as JSON")

    p_bench = sub.add_parser(
        "bench",
        help="deterministic performance benchmarks + regression compare",
    )
    p_bench.add_argument("--cases", default="",
                         help="comma-separated case names (default: the "
                              "full suite; calibration always included)")
    p_bench.add_argument("--repeat", type=int, default=3,
                         help="timing repeats per case; best wall time wins")
    p_bench.add_argument("--out", default=None,
                         help="report path (default: BENCH_<stamp>.json "
                              "in the current directory)")
    p_bench.add_argument("--compare", nargs=2, metavar=("BASE", "NEW"),
                         default=None,
                         help="compare two reports instead of running; "
                              "exit 1 when any case regresses")
    p_bench.add_argument("--tolerance", type=float, default=0.25,
                         help="allowed slowdown vs baseline after "
                              "calibration normalisation (default 0.25)")
    p_bench.add_argument("--trend", nargs="?", const="benchmarks",
                         default=None, metavar="DIR",
                         help="aggregate every BENCH_*.json report in DIR "
                              "(default: benchmarks/) into a calibration-"
                              "normalised per-case trajectory table "
                              "instead of running")

    p_lint = sub.add_parser(
        "lint", help="determinism lint pass (DET001-DET012)"
    )
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")

    p_cache = sub.add_parser(
        "cache",
        help="inspect or clear the result cache and the compiled-"
             "structure store",
    )
    p_cache.add_argument("action", nargs="?", choices=("info", "clear"),
                         default="info",
                         help="info (default): entry counts and sizes; "
                              "clear: delete entries")
    p_cache.add_argument("--cache-dir", default=None,
                         help="cache location (default: $REPRO_CACHE_DIR or "
                              "~/.cache/repro-drain)")
    p_cache.add_argument("--structs-only", action="store_true",
                         help="operate on the compiled-structure store only")
    p_cache.add_argument("--results-only", action="store_true",
                         help="operate on the trial result cache only")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "sweep": _cmd_sweep,
        "run": _cmd_run,
        "faults": _cmd_faults,
        "drainpath": _cmd_drainpath,
        "check": _cmd_check,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
        "cache": _cmd_cache,
    }
    try:
        return handlers[args.command](args)
    except DrainPathError as exc:
        # Structured payload: the offending link sets, deterministically
        # sorted, as machine-readable JSON on stderr.
        print(f"error: {exc}", file=sys.stderr)
        print(json.dumps(exc.as_dict(), sort_keys=True), file=sys.stderr)
        return 2
    except ValueError as exc:
        # Bad user input (malformed topology spec, unsatisfiable fault
        # schedule, invalid config value): one line, non-zero exit — not a
        # traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
