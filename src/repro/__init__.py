"""DRAIN: Deadlock Removal for Arbitrary Irregular Networks (HPCA 2020).

A full Python reproduction: a cycle-level NoC simulator, the DRAIN
subactive deadlock-removal scheme, the escape-VC and SPIN baselines, a
coherence-protocol traffic model, an analytical area/power model, and one
experiment module per table/figure of the paper's evaluation.
"""

from .core.config import (
    DrainConfig,
    NetworkConfig,
    ProtocolConfig,
    Scheme,
    SimConfig,
    SpinConfig,
    drain_default,
)
from .core.metrics import NetworkStats
from .core.simulator import Simulation
from .drain.controller import DrainController
from .drain.path import DrainPath, find_drain_path
from .router.packet import MessageClass, Packet
from .topology.graph import Link, Topology
from .topology.irregular import inject_link_faults, random_fault_patterns
from .topology.mesh import make_mesh, make_ring, make_torus

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Scheme",
    "SimConfig",
    "NetworkConfig",
    "DrainConfig",
    "SpinConfig",
    "ProtocolConfig",
    "drain_default",
    "NetworkStats",
    "Simulation",
    "DrainPath",
    "find_drain_path",
    "DrainController",
    "MessageClass",
    "Packet",
    "Link",
    "Topology",
    "make_mesh",
    "make_torus",
    "make_ring",
    "inject_link_faults",
    "random_fault_patterns",
]
