"""Router-level building blocks: packets and message classes."""

from .packet import MessageClass, Packet

__all__ = ["MessageClass", "Packet"]
