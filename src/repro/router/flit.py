"""Flits for wormhole (flit-based) flow control.

Section III-C3 of the paper: DRAIN is straightforward under virtual
cut-through (the configuration evaluated), but it also supports wormhole
networks by *truncating* packets: when a drain forces the flits of a
packet to turn while its tail is still upstream, the router encodes the
last downstream flit as a tail and gives the upstream remainder a new
header; the destination's MSHRs buffer flits until the whole original
packet has arrived and reassembles it.

A flit carries identity of its parent packet plus its index within it, so
reassembly and exactly-once accounting are checkable.
"""

from __future__ import annotations

from enum import IntEnum
from .packet import Packet

__all__ = ["FlitType", "Flit"]


class FlitType(IntEnum):
    HEAD = 0
    BODY = 1
    TAIL = 2
    HEAD_TAIL = 3  # single-flit packet


class Flit:
    """One flit of a (possibly truncated) wormhole packet."""

    __slots__ = ("packet", "index", "kind", "segment", "moved_at")

    def __init__(self, packet: Packet, index: int, kind: FlitType,
                 segment: int = 0) -> None:
        self.packet = packet  # parent packet (identity + route state)
        self.index = index  # position within the ORIGINAL packet
        self.kind = kind
        #: Truncation generation: bumped every time draining splits the
        #: packet; flits of different segments travel independently.
        self.segment = segment
        #: Cycle of the last traversal — a flit that arrived this cycle may
        #: not depart again until the next (1-cycle router latency).
        self.moved_at = -1

    @property
    def is_head(self) -> bool:
        return self.kind in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self.kind in (FlitType.TAIL, FlitType.HEAD_TAIL)

    def __repr__(self) -> str:
        return (
            f"Flit(pkt={self.packet.pid}, idx={self.index}, "
            f"{self.kind.name}, seg={self.segment})"
        )


def make_flits(packet: Packet, num_flits: int) -> list:
    """Split *packet* into its wire flits."""
    if num_flits < 1:
        raise ValueError("a packet needs at least one flit")
    if num_flits == 1:
        return [Flit(packet, 0, FlitType.HEAD_TAIL)]
    flits = [Flit(packet, 0, FlitType.HEAD)]
    for i in range(1, num_flits - 1):
        flits.append(Flit(packet, i, FlitType.BODY))
    flits.append(Flit(packet, num_flits - 1, FlitType.TAIL))
    return flits
