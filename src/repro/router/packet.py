"""Packets and message classes.

The simulator uses virtual cut-through with a single packet per VC
(Table II: "Buffer Organization: Virtual Cut Through. Single packet per
VC"), so the packet — not the flit — is the unit of buffering and of link
traversal. Flit-based (wormhole) flow control with packet truncation is
discussed in Section III-C3 of the paper; the VCT configuration evaluated
in the paper is what we model.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional

__all__ = ["MessageClass", "Packet"]


class MessageClass(IntEnum):
    """Coherence message classes (one virtual network each in the baselines).

    A MESI-style protocol needs the first three (Table II: VNet=3):
    requests, forwarded requests/invalidations, and responses. A
    MOESI-style protocol (Section V-A: "MOESI requires six virtual
    networks") additionally uses writebacks, writeback acks and unblocks.
    Classes whose consumption never requires injecting another message
    (sinks) guarantee their ejection queues always drain (Section III-D2):
    WB_ACK and UNBLOCK are sinks in the MOESI model; RESP is a sink in the
    MESI model.
    """

    REQ = 0
    FWD = 1
    RESP = 2
    WB = 3
    WB_ACK = 4
    UNBLOCK = 5


class Packet:
    """A single-flit packet in flight.

    Mutable bookkeeping (hops, misroutes, escape state) is updated by the
    fabric as the packet moves; identity fields are fixed at creation.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "msg_class",
        "vn",
        "gen_cycle",
        "net_entry_cycle",
        "eject_cycle",
        "hops",
        "misroutes",
        "drain_moves",
        "spin_moves",
        "in_escape",
        "updown_up_phase",
        "blocked_since",
        "needs_fwd",
        "fwd_target",
        "txn_id",
    )

    def __init__(
        self,
        pid: int,
        src: int,
        dst: int,
        msg_class: MessageClass = MessageClass.REQ,
        gen_cycle: int = 0,
    ) -> None:
        if src == dst:
            raise ValueError("packet source and destination must differ")
        self.pid = pid
        self.src = src
        self.dst = dst
        self.msg_class = msg_class
        self.vn = 0  # assigned at injection: msg_class % num_vns
        self.gen_cycle = gen_cycle
        self.net_entry_cycle: Optional[int] = None
        self.eject_cycle: Optional[int] = None
        self.hops = 0
        self.misroutes = 0
        self.drain_moves = 0
        self.spin_moves = 0
        self.in_escape = False  # sticky once the packet enters an escape VC
        self.updown_up_phase = True  # up*/down*: may still traverse up links
        self.blocked_since: Optional[int] = None  # SPIN timeout bookkeeping
        # Protocol-model payload (meaningful for REQ packets only).
        self.needs_fwd = False
        self.fwd_target: Optional[int] = None
        self.txn_id: Optional[int] = None

    @property
    def latency(self) -> int:
        """End-to-end latency in cycles (generation to ejection)."""
        if self.eject_cycle is None:
            raise ValueError(f"packet {self.pid} has not been ejected")
        return self.eject_cycle - self.gen_cycle

    @property
    def network_latency(self) -> int:
        """In-network latency (injection-VC entry to ejection)."""
        if self.eject_cycle is None or self.net_entry_cycle is None:
            raise ValueError(f"packet {self.pid} has not traversed the network")
        return self.eject_cycle - self.net_entry_cycle

    def __repr__(self) -> str:
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, "
            f"{self.msg_class.name}, hops={self.hops})"
        )
