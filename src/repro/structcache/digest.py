"""Structural digests: the content identity of compiled artefacts.

The compiled-structure store (:mod:`repro.structcache.store`) keys every
artefact by content, never by object identity or file path:

- a **topology digest** covers the exact node count, edge set and
  coordinates — everything :func:`topology_payload` captures. Distance
  matrices and drain paths are pure functions of the topology, so they
  are keyed by this digest alone.
- a **structure digest** additionally covers the full ``SimConfig``
  *minus the seed* (scheme, flow control, VC/VN geometry, drain/spin/PFC
  sections). Routing tables depend on the config-selected routing
  function, so they key on the pair. This generalises
  ``batch_group_key`` in :mod:`repro.harness.trials`: seeds vary freely
  inside a structure, everything shaping the network does not.
- a **certificate digest** covers the preflight memo key (topology,
  scheme, flow control, pinned-flow set), mirroring the per-process
  ``_CERT_CACHE`` in :mod:`repro.analysis.preflight`.

``topology_payload`` deliberately duplicates
:func:`repro.harness.trials.topology_to_spec` instead of importing it —
the simulator consumes this package, and ``trials`` imports the
simulator, so an import here would close a cycle. A drift-guard test
(``tests/test_structcache.py``) pins the two encodings equal.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Sequence

from ..topology.graph import Topology

__all__ = [
    "STRUCT_FORMAT_VERSION",
    "canonical_json",
    "digest_payload",
    "topology_payload",
    "topology_digest",
    "structure_digest",
    "certificate_digest",
]

#: Bump to abandon every stored artefact when formats or semantics change.
STRUCT_FORMAT_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Order-stable minimal JSON — the hashable encoding of a payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest_payload(payload: Any) -> str:
    """Hex BLAKE2b-128 digest of a payload's canonical JSON."""
    return hashlib.blake2b(
        canonical_json(payload).encode("utf-8"), digest_size=16
    ).hexdigest()


def topology_payload(topology: Topology) -> Dict[str, Any]:
    """Canonical JSON-able description of a topology (exact, order-stable).

    Field-for-field identical to ``repro.harness.trials.topology_to_spec``
    (see the module docstring for why it is duplicated, and the drift test
    that keeps them in lockstep).
    """
    spec: Dict[str, Any] = {
        "name": topology.name,
        "num_nodes": topology.num_nodes,
        "edges": [list(e) for e in topology.bidirectional_links()],
    }
    if topology.coordinates is not None:
        spec["coordinates"] = {
            str(node): list(xy) for node, xy in sorted(topology.coordinates.items())
        }
    return spec


def topology_digest(topology: Topology) -> str:
    """Content digest of a topology's exact structure."""
    return digest_payload(
        {"format": STRUCT_FORMAT_VERSION, "topology": topology_payload(topology)}
    )


def structure_digest(
    topo_payload: Dict[str, Any], config_dict: Dict[str, Any]
) -> str:
    """Digest of (topology, config-sans-seed) — the routing-table key.

    *config_dict* is a ``config_to_dict`` mapping; the seed is excluded
    because it shapes traffic streams, never the compiled structure, so N
    seeds over one configuration share one set of artefacts.
    """
    config = dict(config_dict)
    config.pop("seed", None)
    return digest_payload(
        {
            "format": STRUCT_FORMAT_VERSION,
            "topology": topo_payload,
            "config": config,
        }
    )


def certificate_digest(key: Sequence[str]) -> str:
    """Digest of a preflight certificate memo key (a tuple of strings)."""
    return digest_payload(
        {"format": STRUCT_FORMAT_VERSION, "certificate": list(key)}
    )
