"""Content-addressed compiled-structure store.

Amortizes topology/routing/drain compilation across trials, workers and
runs: distance matrices, adaptive-routing CSR tables, drain paths and
preflight certificates are keyed by structural content digests, memoized
in process and (when activated) persisted as memory-mappable artefacts
next to the trial result cache. See :mod:`repro.structcache.store`.
"""

from .digest import (
    STRUCT_FORMAT_VERSION,
    canonical_json,
    certificate_digest,
    digest_payload,
    structure_digest,
    topology_digest,
    topology_payload,
)
from .store import (
    ENV_VAR,
    StructParts,
    StructStore,
    activate,
    active_store,
    clear_memos,
    deactivate,
    default_store_dir,
    distances,
    env_disabled,
    load_certificate,
    parts_for,
    save_certificate,
    stats,
)

__all__ = [
    "STRUCT_FORMAT_VERSION",
    "canonical_json",
    "certificate_digest",
    "digest_payload",
    "structure_digest",
    "topology_digest",
    "topology_payload",
    "ENV_VAR",
    "StructParts",
    "StructStore",
    "activate",
    "active_store",
    "clear_memos",
    "deactivate",
    "default_store_dir",
    "distances",
    "env_disabled",
    "load_certificate",
    "parts_for",
    "save_certificate",
    "stats",
]
