"""Persistent, content-addressed store of compiled network structures.

Every trial over a given (topology, config-sans-seed) pair boots the same
expensive artefacts: the all-pairs hop-distance matrix, the adaptive
routing tables in CSR form, the Eulerian drain path, and the preflight
certificate. This module memoizes them at three layers:

1. an **in-process memo** (bounded, content-digest keyed) so repeated
   :class:`~repro.network.index.FabricIndex` constructions inside one
   process compute each matrix once;
2. an **on-disk store** (``<root>/<kind>/<digest[:2]>/<digest>/``) of
   ``.npy`` arrays loaded with ``mmap_mode="r"`` so concurrent worker
   processes share page-cache pages instead of private copies, plus
   certificate JSON files;
3. a **warm-start protocol** (:mod:`repro.harness.pool`) that compiles
   each distinct structure once in the parent before dispatching N
   workers x M trials.

Numpy's ``npz`` container cannot be memory-mapped (``np.load`` on an npz
member always materialises a private copy), so each array lives in its
own ``.npy`` file; the artefact directory's ``meta.json`` — written
inside a temp directory that is atomically renamed into place — is the
commit marker. A directory without a readable, matching ``meta.json`` is
corrupt by definition: it is deleted and the artefact recomputed.

Only boot-time (fault-epoch 0) structures are ever stored. Consumers tag
loaded tables with the live :attr:`FabricIndex.fault_epoch` and rebuild
from scratch on any mismatch, so mid-run faults can never read stale
tables (see :class:`~repro.routing.adaptive.AdaptiveMinimalRouting`).

The store is **opt-in**: inactive unless :func:`activate` is called (the
CLI does, by default) or ``$REPRO_STRUCT_CACHE`` names a directory
(``0``/``off`` disables). Results are bit-identical either way — the
arrays round-trip exactly and no RNG is consumed on the store path.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

try:  # pragma: no cover - the container ships numpy
    import numpy as _np
except ImportError:  # pragma: no cover - scalar fallback keeps working
    _np = None  # type: ignore[assignment]

from .digest import (
    STRUCT_FORMAT_VERSION,
    canonical_json,
    certificate_digest,
    structure_digest,
    topology_digest,
    topology_payload,
)

__all__ = [
    "StructStore",
    "StructParts",
    "default_store_dir",
    "activate",
    "deactivate",
    "active_store",
    "env_disabled",
    "stats",
    "clear_memos",
    "distances",
    "parts_for",
    "load_certificate",
    "save_certificate",
    "ENV_VAR",
]

#: Environment opt-in: a store directory, or ``0``/``off`` to disable.
ENV_VAR = "REPRO_STRUCT_CACHE"

_DISABLED_VALUES = ("", "0", "off", "no", "none", "false", "disabled")

#: Array names per artefact kind — load/save must agree exactly.
_ARTIFACT_ARRAYS = {
    "dist": ("dist",),
    "drain": ("src", "dst"),
    "routing": ("offsets", "counts", "links"),
}


def env_disabled(value: str) -> bool:
    """True when an ``$REPRO_STRUCT_CACHE`` value means "disabled"."""
    return value.strip().lower() in _DISABLED_VALUES


def default_store_dir() -> Path:
    """Store root: next to the result cache (``<cache root>/structs``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env) if env else Path.home() / ".cache" / "repro-drain"
    return base / "structs"


class StructStore:
    """Digest-keyed artefact store with hit/miss/compile/corrupt counters.

    ``hits``/``misses`` count disk lookups, ``compiles`` counts artefacts
    built from scratch (the expensive event the warm-start protocol
    exists to bound), ``corrupt`` counts entries that failed validation
    and were deleted for recompute. Counters are per-process: the run
    manifest snapshots the parent's, which the warm-start protocol makes
    authoritative (workers only ever load).
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_store_dir()
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    # Array artefacts (.npy + meta.json commit marker)
    # ------------------------------------------------------------------
    def _dir_for(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / key

    def load_arrays(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """Memory-mapped arrays of one artefact, or None on miss/corrupt.

        Corruption — missing or unparsable ``meta.json``, wrong format
        version, missing arrays, dtype/shape mismatches against the
        metadata — deletes the whole artefact directory and reports a
        miss, so the caller recomputes instead of crashing.
        """
        names = _ARTIFACT_ARRAYS[kind]
        directory = self._dir_for(kind, key)
        try:
            meta = json.loads((directory / "meta.json").read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            meta = None
        arrays: Optional[Dict[str, Any]] = None
        if (
            isinstance(meta, dict)
            and meta.get("format") == STRUCT_FORMAT_VERSION
            and isinstance(meta.get("arrays"), dict)
            and set(meta["arrays"]) == set(names)
        ):
            arrays = {}
            try:
                for name in names:
                    arr = _np.load(directory / f"{name}.npy", mmap_mode="r")
                    info = meta["arrays"][name]
                    if (
                        str(arr.dtype) != info.get("dtype")
                        or list(arr.shape) != info.get("shape")
                    ):
                        raise ValueError(
                            f"array {name!r} does not match its metadata"
                        )
                    arrays[name] = arr
            except (OSError, ValueError):
                arrays = None
        if arrays is None:
            self.corrupt += 1
            self.misses += 1
            shutil.rmtree(directory, ignore_errors=True)
            return None
        self.hits += 1
        return arrays

    def save_arrays(self, kind: str, key: str, arrays: Dict[str, Any]) -> None:
        """Store an artefact atomically (temp directory + rename).

        A concurrent writer racing on the same key wins or loses the
        final rename cleanly; the loser discards its temp directory. An
        artefact directory therefore only ever appears complete.
        """
        if set(arrays) != set(_ARTIFACT_ARRAYS[kind]):
            raise ValueError(
                f"artefact kind {kind!r} stores {_ARTIFACT_ARRAYS[kind]}, "
                f"got {sorted(arrays)}"
            )
        directory = self._dir_for(kind, key)
        if (directory / "meta.json").exists():
            return
        directory.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(dir=directory.parent, prefix=".tmp-"))
        try:
            meta: Dict[str, Any] = {
                "format": STRUCT_FORMAT_VERSION,
                "kind": kind,
                "arrays": {},
            }
            for name, arr in arrays.items():
                arr = _np.ascontiguousarray(arr)
                _np.save(tmp / f"{name}.npy", arr)
                meta["arrays"][name] = {
                    "dtype": str(arr.dtype),
                    "shape": list(arr.shape),
                }
            (tmp / "meta.json").write_text(canonical_json(meta))
            os.rename(tmp, directory)
        except OSError:
            # Lost a creation race (target exists) or disk trouble; the
            # artefact is either already present or will be recomputed.
            shutil.rmtree(tmp, ignore_errors=True)

    # ------------------------------------------------------------------
    # Certificate artefacts (JSON)
    # ------------------------------------------------------------------
    def _cert_path(self, key: str) -> Path:
        return self.root / "certs" / key[:2] / f"{key}.json"

    def load_cert(self, key: str) -> Optional[Dict[str, Any]]:
        """Stored certificate payload for *key*, or None on miss/corrupt."""
        path = self._cert_path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            payload = None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != STRUCT_FORMAT_VERSION
            or not isinstance(payload.get("certificate"), dict)
        ):
            try:
                path.unlink()
            except OSError:
                pass
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload["certificate"]

    def save_cert(self, key: str, certificate: Dict[str, Any]) -> None:
        """Store a certificate payload atomically (tempfile + rename)."""
        path = self._cert_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(
                    canonical_json(
                        {
                            "format": STRUCT_FORMAT_VERSION,
                            "certificate": certificate,
                        }
                    )
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Inspection / maintenance (the ``repro-drain cache`` subcommand)
    # ------------------------------------------------------------------
    def entry_counts(self) -> Dict[str, int]:
        """Number of committed artefacts per kind (plus certificates)."""
        out: Dict[str, int] = {}
        for kind in _ARTIFACT_ARRAYS:
            out[kind] = sum(
                1 for _ in self.root.glob(f"{kind}/*/*/meta.json")
            )
        out["certs"] = sum(1 for _ in self.root.glob("certs/*/*.json"))
        return out

    def size_bytes(self) -> int:
        """Total bytes on disk under the store root."""
        total = 0
        if self.root.exists():
            for path in self.root.rglob("*"):
                if path.is_file():
                    try:
                        total += path.stat().st_size
                    except OSError:
                        pass
        return total

    def clear(self) -> int:
        """Delete every stored artefact; returns the number removed."""
        removed = 0
        for kind in _ARTIFACT_ARRAYS:
            for meta in list(self.root.glob(f"{kind}/*/*/meta.json")):
                shutil.rmtree(meta.parent, ignore_errors=True)
                removed += 1
        for cert in list(self.root.glob("certs/*/*.json")):
            try:
                cert.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, Any]:
        return {
            "root": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "corrupt": self.corrupt,
        }


# ----------------------------------------------------------------------
# Activation (module-level singleton; env opt-in resolved once)
# ----------------------------------------------------------------------
_ACTIVE: Optional[StructStore] = None
_ENV_RESOLVED = False


def activate(root: Optional[Union[str, Path]] = None) -> StructStore:
    """Enable the persistent store at *root* (default: next to the cache)."""
    global _ACTIVE, _ENV_RESOLVED
    _ACTIVE = StructStore(root)
    _ENV_RESOLVED = True
    return _ACTIVE


def deactivate() -> None:
    """Disable the persistent store (in-process memos keep working)."""
    global _ACTIVE, _ENV_RESOLVED
    _ACTIVE = None
    _ENV_RESOLVED = True


def active_store() -> Optional[StructStore]:
    """The active store, resolving ``$REPRO_STRUCT_CACHE`` on first call."""
    global _ACTIVE, _ENV_RESOLVED
    if not _ENV_RESOLVED:
        _ENV_RESOLVED = True
        value = os.environ.get(ENV_VAR)
        if value is not None and not env_disabled(value):
            _ACTIVE = StructStore(Path(value))
    return _ACTIVE


def stats() -> Optional[Dict[str, Any]]:
    """Counter snapshot of the active store, or None when inactive."""
    store = active_store()
    return store.stats() if store is not None else None


# ----------------------------------------------------------------------
# In-process memos (layer 1)
# ----------------------------------------------------------------------
#: Distinct structures held in process at once. Each entry is a few MB at
#: thousand-switch scale; sweeps iterate seeds within one structure, so a
#: small bound loses nothing.
_MEMO_LIMIT = 4

_DIST_MEMO: Dict[str, Any] = {}
_PARTS_MEMO: Dict[str, "StructParts"] = {}


def _memo_put(memo: Dict[str, Any], key: str, value: Any) -> None:
    memo[key] = value
    while len(memo) > _MEMO_LIMIT:
        memo.pop(next(iter(memo)))


def clear_memos() -> None:
    """Drop the in-process memos (bench cold-path + test isolation hook)."""
    _DIST_MEMO.clear()
    _PARTS_MEMO.clear()


# ----------------------------------------------------------------------
# Distances (layer 1 + 2): the one sanctioned all-pairs entry point
# ----------------------------------------------------------------------
def distances(topology: Any) -> List[List[int]]:
    """All-pairs hop distances of *topology* as fresh row lists.

    This is the DET012-sanctioned entry point: it memoizes the matrix by
    content digest (so topology mutation or a different object with the
    same structure both behave correctly) and persists it in the active
    store. Every call returns freshly-allocated rows because
    :meth:`FabricIndex.apply_faults` overwrites rows in place.
    """
    key = topology_digest(topology)
    cached = _DIST_MEMO.get(key)
    if cached is None:
        store = active_store() if _np is not None else None
        if store is not None:
            arrays = store.load_arrays("dist", key)
            if arrays is not None:
                cached = arrays["dist"]
        if cached is None:
            if _np is not None:
                cached = topology._all_pairs_numpy()
            else:
                cached = topology.all_pairs_distances(scalar=True)
            if store is not None:
                store.compiles += 1
                store.save_arrays("dist", key, {"dist": cached})
        _memo_put(_DIST_MEMO, key, cached)
    if _np is not None and isinstance(cached, _np.ndarray):
        return cached.tolist()
    return [list(row) for row in cached]


# ----------------------------------------------------------------------
# Compiled structure parts (layer 1 + 2)
# ----------------------------------------------------------------------
class StructParts:
    """Loaded artefacts of one structure, ready for simulator adoption.

    ``routing`` is the adaptive-minimal candidate-table CSR triple
    ``(offsets, counts, links)`` (None for stateful routing schemes,
    which cannot be table-compiled); ``drain_links`` is the Eulerian
    drain cycle as ``(src, dst)`` pairs in path order (None for
    non-DRAIN schemes). Arrays may be read-only memory maps — consumers
    must never write them (the DET008 contract).
    """

    __slots__ = ("digest", "routing", "drain_links")

    def __init__(
        self,
        digest: str,
        routing: Optional[Tuple[Any, Any, Any]],
        drain_links: Optional[List[Tuple[int, int]]],
    ) -> None:
        self.digest = digest
        self.routing = routing
        self.drain_links = drain_links


def _compile_routing(topology: Any) -> Tuple[Any, Any, Any]:
    """Build the adaptive-minimal CSR triple from scratch (boot state)."""
    from ..network.index import DenseCandidateTables, FabricIndex
    from ..routing.adaptive import AdaptiveMinimalRouting

    index = FabricIndex(topology)
    routing = AdaptiveMinimalRouting(index)
    tables = DenseCandidateTables(
        index, routing.export_tables(index.num_nodes)
    )
    return tables.offsets, tables.counts, tables.links


def _routing_for(
    store: Optional[StructStore], topology: Any, key: str
) -> Tuple[Any, Any, Any]:
    if store is not None:
        arrays = store.load_arrays("routing", key)
        if arrays is not None:
            n = topology.num_nodes
            offsets = arrays["offsets"]
            counts = arrays["counts"]
            links = arrays["links"]
            if (
                offsets.shape == (n * n + 1,)
                and counts.shape == (n * n,)
                and links.shape == (int(offsets[-1]),)
            ):
                return offsets, counts, links
            # Shape mismatch against the live topology: treat as corrupt.
            store.corrupt += 1
            shutil.rmtree(store._dir_for("routing", key), ignore_errors=True)
    triple = _compile_routing(topology)
    if store is not None:
        store.compiles += 1
        store.save_arrays(
            "routing",
            key,
            {"offsets": triple[0], "counts": triple[1], "links": triple[2]},
        )
    return triple


def _drain_links_for(
    store: Optional[StructStore], topology: Any
) -> List[Tuple[int, int]]:
    key = topology_digest(topology)
    if store is not None:
        arrays = store.load_arrays("drain", key)
        if arrays is not None:
            expected = 2 * topology.num_edges
            src = arrays["src"]
            dst = arrays["dst"]
            if src.shape == (expected,) and dst.shape == (expected,):
                return [
                    (int(s), int(d)) for s, d in zip(src.tolist(), dst.tolist())
                ]
            store.corrupt += 1
            shutil.rmtree(store._dir_for("drain", key), ignore_errors=True)
    from ..drain.path import find_drain_path

    path = find_drain_path(topology)
    links = [(link.src, link.dst) for link in path.links]
    if store is not None:
        store.compiles += 1
        count = len(links)
        store.save_arrays(
            "drain",
            key,
            {
                "src": _np.fromiter(
                    (s for s, _ in links), dtype=_np.int32, count=count
                ),
                "dst": _np.fromiter(
                    (d for _, d in links), dtype=_np.int32, count=count
                ),
            },
        )
    return links


def parts_for(topology: Any, config: Any) -> Optional[StructParts]:
    """Compiled parts for (topology, config), or None when unavailable.

    Returns None when the persistent store is inactive or numpy is
    missing — callers fall back to from-scratch construction, which is
    the bit-identical reference path. Parts are memoized in process by
    structure digest, so a sweep of M seeds over one structure compiles
    (or loads) once.
    """
    store = active_store()
    if store is None or _np is None:
        return None
    from ..core.configio import config_to_dict

    config_dict = config_to_dict(config)
    key = structure_digest(topology_payload(topology), config_dict)
    parts = _PARTS_MEMO.get(key)
    if parts is not None:
        return parts
    scheme = config_dict.get("scheme")
    routing = None
    if scheme != "updown":
        # Up*/down* routing is stateful (per-packet turn history) and is
        # rebuilt from the topology either way; only the adaptive-minimal
        # candidate tables are worth compiling.
        routing = _routing_for(store, topology, key)
    drain_links = None
    if scheme == "drain":
        drain_links = _drain_links_for(store, topology)
    parts = StructParts(key, routing, drain_links)
    _memo_put(_PARTS_MEMO, key, parts)
    return parts


# ----------------------------------------------------------------------
# Certificates (layer 2 only; preflight keeps its in-process memo)
# ----------------------------------------------------------------------
def load_certificate(key: Sequence[str]) -> Optional[Dict[str, Any]]:
    """Stored preflight certificate for a memo *key*, or None."""
    store = active_store()
    if store is None:
        return None
    return store.load_cert(certificate_digest(key))


def save_certificate(key: Sequence[str], certificate: Dict[str, Any]) -> None:
    """Persist a freshly-computed preflight certificate for *key*."""
    store = active_store()
    if store is not None:
        store.save_cert(certificate_digest(key), certificate)
