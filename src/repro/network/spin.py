"""SPIN baseline: reactive deadlock detection and recovery [5].

SPIN sends probes when a head packet has been blocked past a timeout; a
probe walks the chain of blocked packets and, if it returns to its origin,
a deadlock cycle has been found. The routers in the cycle then make a
globally coordinated *spin*: every packet in the cycle moves one hop
forward simultaneously.

This model reproduces that behaviour on top of the fabric's wait-for
state: timeout counters per buffered packet, a probe phase whose latency
(and message count, for the power model) is charged per hop of the
discovered cycle, and the coordinated rotation itself. The complexity the
paper attributes to SPIN — online detection plus global coordination — is
exactly the machinery in this file; DRAIN needs none of it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.config import SpinConfig
from .deadlock import Slot, extract_cycle, find_deadlocked_slots, rotate_cycle
from .fabric import Fabric

__all__ = ["SpinController"]


class SpinController:
    """Timeout-probe-spin state machine attached to a fabric."""

    def __init__(self, fabric: Fabric, config: SpinConfig, check_interval: int = 32):
        self.fabric = fabric
        self.config = config
        self.check_interval = max(1, check_interval)
        #: (fire_cycle, anchor_slot) pairs for probes in flight.
        self._pending: List[Tuple[int, Slot]] = []
        self._last_spin_cycle = -(10**9)

    def next_event_cycle(self, now: int) -> Optional[int]:
        """First cycle >= *now* at which :meth:`step` may act.

        Pending probes fire on their recorded cycle (and firing mutates
        the pending list even when the deadlock has dissolved), so the
        earliest pending fire clamps the horizon alongside the next
        detection tick.
        """
        interval = self.check_interval
        rem = now % interval
        nxt = now if rem == 0 else now + interval - rem
        for fire, _ in self._pending:
            if fire < nxt:
                nxt = fire
        return max(nxt, now)

    def step(self) -> None:
        """Run SPIN's per-cycle work: fire due spins, launch due probes."""
        fabric = self.fabric
        cycle = fabric.cycle

        if self._pending:
            due = [p for p in self._pending if p[0] <= cycle]
            if due:
                self._pending = [p for p in self._pending if p[0] > cycle]
                for _fire, anchor in due:
                    self._resolve(anchor)

        if cycle % self.check_interval:
            return
        timeout = self.config.timeout
        anchors = [
            (port, vn, vc)
            for port, vn, vc, packet in fabric.occupied_slots()
            if not fabric.index.is_injection_port(port)
            and packet.blocked_since is not None
            and cycle - packet.blocked_since >= timeout
        ]
        if not anchors:
            return
        deadlocked = find_deadlocked_slots(fabric)
        if not deadlocked:
            return
        # Launch one probe per detection pass (SPIN serialises recovery).
        anchor = next((a for a in anchors if a in deadlocked), None)
        if anchor is None:
            return
        cycle_slots = extract_cycle(fabric, deadlocked)
        if cycle_slots is None:
            return
        probe_hops = len(cycle_slots)
        fabric.stats.probes_sent += probe_hops
        fabric.stats.deadlock_events += 1
        fabric.stats.deadlocks_detected += len(deadlocked)
        fire = cycle + self.config.probe_hop_latency * probe_hops
        self._pending.append((fire, anchor))

    def _resolve(self, anchor: Slot) -> None:
        """Probe returned: re-validate and spin the deadlock cycle."""
        fabric = self.fabric
        if fabric.cycle - self._last_spin_cycle < self.config.spin_interval:
            return
        deadlocked = find_deadlocked_slots(fabric)
        if anchor not in deadlocked:
            return  # deadlock dissolved while the probe was in flight
        cycle_slots = extract_cycle(fabric, deadlocked)
        if cycle_slots is None:
            return
        # The spin itself is one more coordinated message round.
        fabric.stats.probes_sent += len(cycle_slots)
        rotate_cycle(fabric, cycle_slots, forced_kind="spin")
        fabric.stats.spins_performed += 1
        self._last_spin_cycle = fabric.cycle
