"""Bubble Flow Control (BFC) baseline (Section VII related work [35]-[38]).

BFC proactively avoids deadlock on rings and tori without turn
restrictions inside a ring: a packet may *enter* a dimension ring only if
the ring retains at least one free buffer (a "bubble") after the entry, so
the ring can always rotate. Moves that continue within a ring are
unrestricted.

This model implements localised BFC on a 2D torus over the standard
fabric:

- routing is dimension-order (travel the X ring, then the Y ring), with
  the shorter wrap direction chosen per pair;
- entering moves (from the injection port, or the X->Y dimension turn)
  are granted only while the target ring's VC column keeps >= 2 free
  slots (the entering packet takes one; one bubble survives);
- in-ring moves need only the usual free downstream VC.

The paper cites BFC as the ring/torus-specific proactive alternative;
having it executable lets the test suite demonstrate its guarantee on
tori — and that, like every proactive scheme, it constrains admission
where DRAIN constrains nothing.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.config import SimConfig
from ..core.metrics import NetworkStats
from ..router.packet import Packet
from ..routing.base import RoutingFunction
from ..topology.graph import Link
from .fabric import Fabric
from .index import FabricIndex

__all__ = ["TorusDorRouting", "BubbleFlowFabric"]


class TorusDorRouting(RoutingFunction):
    """Dimension-order routing on a 2D torus, shortest wrap per dimension."""

    # DOR on torus rings is NOT deadlock-free by itself (the wrap closes a
    # cycle); the bubble condition supplies the safety.
    deadlock_free = False

    def __init__(self, index: FabricIndex, width: int, height: int) -> None:
        if width * height != index.num_nodes:
            raise ValueError("torus dimensions do not match the topology")
        self.index = index
        self.width = width
        self.height = height
        n = index.num_nodes
        self._next: List[List[int]] = [[-1] * n for _ in range(n)]
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    self._next[src][dst] = self._compute_next(src, dst)

    def _compute_next(self, src: int, dst: int) -> int:
        width, height = self.width, self.height
        sx, sy = src % width, src // width
        dx, dy = dst % width, dst // width
        if sx != dx:
            forward = (dx - sx) % width
            backward = (sx - dx) % width
            step = 1 if forward <= backward else -1
            nxt = ((sx + step) % width) + sy * width
        else:
            forward = (dy - sy) % height
            backward = (sy - dy) % height
            step = 1 if forward <= backward else -1
            nxt = sx + ((sy + step) % height) * width
        return self.index.link_id[Link(src, nxt)]

    def candidates(self, router: int, packet: Packet) -> List[int]:
        return [self._next[router][packet.dst]]

    def next_link(self, router: int, dst: int) -> int:
        return self._next[router][dst]


class BubbleFlowFabric(Fabric):
    """Fabric whose ring-entry claims obey the localised bubble condition.

    Ring membership is positional on the torus: a link whose endpoints
    share a row belongs to that row's X ring; sharing a column, the
    column's Y ring. The base allocation loop exposes the input port being
    served (``_serving_port``); ``_pick_vc`` vetoes claims that would
    enter a ring without leaving a bubble.

    Event-horizon note: the inherited ``quiescent``/``skip_cycles`` pair
    stays sound here — the only extra per-cycle state, the
    ``_pending_entries`` admission ledger, is cleared at the *start* of
    every movement stage, so a skipped idle cycle (which would only have
    cleared an already-empty dict) leaves nothing stale behind.
    """

    def __init__(self, index: FabricIndex, config: SimConfig,
                 routing: RoutingFunction, width: int, height: int,
                 stats: Optional[NetworkStats] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(index, config, routing, escape_mode=None,
                         stats=stats, rng=rng)
        self.width = width
        self.height = height
        # Rings are *unidirectional*: the clockwise and counterclockwise
        # traversals of a physical ring are independent buffer cycles, and
        # the bubble must survive in the direction actually entered.
        self.link_ring: List[Optional[Tuple[str, int, int]]] = []
        for i in range(index.num_links):
            src, dst = index.link_src[i], index.link_dst[i]
            if src // width == dst // width:
                sx, dx = src % width, dst % width
                direction = +1 if (dx - sx) % width == 1 else -1
                self.link_ring.append(("x", src // width, direction))
            elif src % width == dst % width:
                sy, dy = src // width, dst // width
                direction = +1 if (dy - sy) % height == 1 else -1
                self.link_ring.append(("y", src % width, direction))
            else:
                self.link_ring.append(None)
        self.ring_links: Dict[Tuple[str, int, int], List[int]] = {}
        for link, ring in enumerate(self.link_ring):
            if ring is not None:
                self.ring_links.setdefault(ring, []).append(link)
        self.bubble_stalls = 0  # admission vetoes (proactive restriction cost)
        #: Ring entries already granted this cycle: without this, two
        #: simultaneous entries could each see two free slots and together
        #: consume the last bubble (the classic BFC admission race).
        self._pending_entries: Dict[Tuple[Tuple[str, int, int], int], int] = {}

    def _ring_free_slots(self, ring: Tuple[str, int, int], vn: int) -> int:
        free = 0
        flat = self._buf
        stride = self._port_stride
        vcs = self.vcs_per_vn
        offset = vn * vcs
        for link in self.ring_links[ring]:
            base = link * stride + offset
            for i in range(vcs):
                if flat[base + i] is None:
                    free += 1
        return free

    def _is_entering(self, src_port: int, link: int) -> bool:
        if self.index.is_injection_port(src_port):
            return True
        return self.link_ring[src_port] != self.link_ring[link]

    def _pick_vc(self, port: int, vn: int, vc_mode: int, claimed) -> int:
        vc = super()._pick_vc(port, vn, vc_mode, claimed)
        if vc < 0 or port >= self.index.num_links:
            return vc
        ring = self.link_ring[port]
        if ring is None:
            return vc
        if self._is_entering(self._serving_port, port):
            pending = self._pending_entries.get((ring, vn), 0)
            if self._ring_free_slots(ring, vn) - pending < 2:
                self.bubble_stalls += 1
                return -1
            self._pending_entries[(ring, vn)] = pending + 1
        return vc

    def movement_stage(self) -> None:
        self._pending_entries.clear()
        super().movement_stage()
