"""PFC-style pause/resume (XOFF/XON) flow control.

:class:`PauseResumeFabric` models lossless-Ethernet Priority Flow Control
on top of the credit-mode fabric.  The unit of pausing is a buffer *row*:
the ``vcs_per_vn`` VC slots of one (link port, VN) pair — the analogue of
one PFC priority class on one switch input port.  A row asserts XOFF once
its occupancy reaches ``pause_threshold`` and releases it (XON) only when
occupancy falls back to ``resume_threshold`` (strict hysteresis).  While a
row is XOFF, upstream allocation may not claim any of its slots — even
free ones — which is exactly how pause propagation builds the cyclic
buffer dependencies (CBD) that wedge real lossless fabrics: the deadlock
is caused by the flow control itself, not by routing.

Semantics notes:

- Injection ports are never paused (hosts are admission-controlled by the
  NI queues) and ejection is never paused (the sink always drains) — CBD
  lives entirely in the link-buffer graph, as in the reference scenario
  (SNIPPETS Snippet 2).
- Pause state only changes in :meth:`_slot_set`, :meth:`_apply_moves` and
  the expiry scan at the top of :meth:`movement_stage`, so one cycle's
  allocation loop observes a consistent start-of-cycle XOFF snapshot.
- ``force_pause`` (used by :class:`repro.faults.PauseStormSchedule`)
  pins a row XOFF until a given cycle even if its occupancy would allow
  XON — the "stuck pause frame" failure mode; ``resume_jitter`` delays
  every XON by a fixed number of cycles (slow pause-frame processing).
- The vectorized movement engine does not model pause state; like every
  flow-control subclass it records a structural fallback reason and runs
  the scalar kernel (see DESIGN.md "Lossless flow control & pause
  storms").  Dense reference semantics are unchanged: ``dense=True``
  drives the same scalar loop with active-set skips disabled.
- Event-horizon soundness: a quiescent fabric holds no packets, so every
  row occupancy is zero and the only latent pause state is a forced pause
  whose expiry mutates nothing observable while the network is empty; the
  expiry scan processes overdue entries lazily on the next dense cycle.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..router.packet import Packet
from .fabric import Fabric

__all__ = ["PauseResumeFabric"]


class PauseResumeFabric(Fabric):
    """Credit fabric with per-(link port, VN) XOFF/XON pause semantics."""

    def __init__(self, *args, **kwargs) -> None:
        #: Row bookkeeping must exist before ``super().__init__`` returns
        #: only if the base constructor wrote buffer slots — it does not,
        #: but ``_slot_set`` is overridden below, so guard with a flag.
        self._pfc_ready = False
        super().__init__(*args, **kwargs)
        pfc = self.config.pfc
        self.pause_threshold = pfc.pause_threshold
        self.resume_threshold = pfc.resume_threshold
        self.headroom = pfc.headroom
        err = pfc.feasibility_error(self.vcs_per_vn)
        if err is not None:
            raise ValueError(err)
        num_rows = self.index.num_links * self.num_vns
        #: Per-row occupancy and XOFF state; row = port * num_vns + vn.
        self._row_occ = bytearray(num_rows)
        self._xoff = bytearray(num_rows)
        #: Rows whose XON is deferred: forced pauses (pause storms) and
        #: jittered resumes; row -> earliest cycle XON may fire.
        self._pause_until: Dict[int, int] = {}
        #: Cycles every XON is delayed by (pause-frame processing time).
        self.resume_jitter = 0
        # PFC counters — surfaced via pfc_summary(), never via the golden
        # NetworkStats.as_dict().
        self.pfc_pauses = 0
        self.pfc_resumes = 0
        self.pfc_stalls = 0
        self.pfc_forced = 0
        #: PFC pause governs the *adaptive* VCs only: when an escape
        #: discipline is configured, its VC 0 has dedicated reserved
        #: buffering (that is what ``headroom`` provisions), so escape
        #: entry ignores XOFF. This is the DRAIN/PFC integration point:
        #: pause-induced CBD can never close over the escape channel,
        #: and the drain rotation empties it regardless of pause state.
        self.pause_exempt_escape = self.escape_mode is not None
        self._pfc_ready = True

    # ------------------------------------------------------------------
    # Row state maintenance
    # ------------------------------------------------------------------
    def _recount_row(self, row: int) -> None:
        """Recompute one row's occupancy and apply pause hysteresis."""
        port, vn = divmod(row, self.num_vns)
        base = port * self._port_stride + vn * self.vcs_per_vn
        flat = self._buf
        occ = 0
        for i in range(self.vcs_per_vn):
            if flat[base + i] is not None:
                occ += 1
        self._row_occ[row] = occ
        if self._xoff[row]:
            if occ <= self.resume_threshold:
                if row in self._pause_until:
                    return  # forced pause / jitter already armed
                if self.resume_jitter > 0:
                    self._pause_until[row] = self.cycle + self.resume_jitter
                    return
                self._xoff[row] = 0
                self.pfc_resumes += 1
        elif occ >= self.pause_threshold:
            self._xoff[row] = 1
            self.pfc_pauses += 1

    def _slot_set(self, port: int, vn: int, vc: int,
                  packet: Optional[Packet]) -> None:
        super()._slot_set(port, vn, vc, packet)
        if self._pfc_ready and port < self.index.num_links:
            self._recount_row(port * self.num_vns + vn)

    def _apply_moves(self, moves, ejects) -> None:
        super()._apply_moves(moves, ejects)
        if not (moves or ejects):
            return
        num_links = self.index.num_links
        num_vns = self.num_vns
        dirty = set()
        for port, vn, _vc, link, tvn, _tvc, _pkt in moves:
            if port < num_links:
                dirty.add(port * num_vns + vn)
            dirty.add(link * num_vns + tvn)
        for port, vn, _vc, _pkt in ejects:
            if port < num_links:
                dirty.add(port * num_vns + vn)
        for row in sorted(dirty):
            self._recount_row(row)

    # ------------------------------------------------------------------
    # Pipeline hooks
    # ------------------------------------------------------------------
    def movement_stage(self) -> None:
        if self._pause_until:
            cycle = self.cycle
            expired = sorted(
                row for row, until in self._pause_until.items()
                if until <= cycle
            )
            for row in expired:
                del self._pause_until[row]
                if self._xoff[row] and self._row_occ[row] <= self.resume_threshold:
                    self._xoff[row] = 0
                    self.pfc_resumes += 1
        super().movement_stage()

    def _pick_vc(self, port: int, vn: int, vc_mode: int, claimed) -> int:
        if port < self.index.num_links and self._xoff[port * self.num_vns + vn]:
            if not self.pause_exempt_escape or vc_mode in (3, 4):
                self.pfc_stalls += 1
                return -1
            # Escape channel exempt: restrict the claim to VC 0.
            vc = super()._pick_vc(port, vn, 2, claimed)
            if vc < 0:
                self.pfc_stalls += 1
            return vc
        return super()._pick_vc(port, vn, vc_mode, claimed)

    # ------------------------------------------------------------------
    # Storm / oracle API
    # ------------------------------------------------------------------
    def force_pause(self, port: int, vn: int, until_cycle: int) -> None:
        """Pin row (*port*, *vn*) XOFF until *until_cycle* (stuck pause)."""
        if not 0 <= port < self.index.num_links:
            raise ValueError(f"force_pause needs a link port, got {port}")
        row = port * self.num_vns + vn
        if not self._xoff[row]:
            self._xoff[row] = 1
            self.pfc_pauses += 1
        self.pfc_forced += 1
        prev = self._pause_until.get(row, until_cycle)
        self._pause_until[row] = max(prev, until_cycle)

    def paused_rows(self) -> Dict[Tuple[int, int], Tuple]:
        """XOFF rows as ``(port, vn) -> occupied slots`` for the oracle.

        The deadlock wait-for graph uses this to treat a *free* slot in a
        paused row as unavailable: the waiter instead depends on the row's
        occupants, since only their departure can drop occupancy to the
        resume threshold and re-open the row.
        """
        out: Dict[Tuple[int, int], Tuple] = {}
        num_vns = self.num_vns
        flat = self._buf
        vcs = self.vcs_per_vn
        for row, flag in enumerate(self._xoff):
            if not flag:
                continue
            port, vn = divmod(row, num_vns)
            base = port * self._port_stride + vn * vcs
            out[(port, vn)] = tuple(
                (port, vn, vc) for vc in range(vcs)
                if flat[base + vc] is not None
            )
        return out

    def paused_row_count(self) -> int:
        return sum(self._xoff)

    def pfc_summary(self) -> Dict[str, int]:
        """PFC counters (kept out of the golden ``NetworkStats.as_dict``)."""
        return {
            "pauses_asserted": self.pfc_pauses,
            "resumes": self.pfc_resumes,
            "pause_stalls": self.pfc_stalls,
            "forced_pauses": self.pfc_forced,
            "rows_paused": self.paused_row_count(),
        }
