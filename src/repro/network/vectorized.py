"""Vectorized movement engine: batched tables, incremental credit masks.

This is the third entry in the fabric's engine matrix (see DESIGN.md,
"Vectorized kernel"):

- ``dense``      — reference sweep, no memoization (parity baseline);
- ``scalar``     — the active-set kernel (PR 4), the universal fast path;
- ``vectorized`` — this module: the saturation kernel, default wherever
  its support conditions hold, bit-identical to the other two.

Architecture
============

Candidate computation is batched across all routers ahead of time: each
routing function exports its complete (router, dst) relation once
(:meth:`RoutingFunction.export_tables`), and the engine flattens it into
:class:`~repro.network.index.DenseCandidateTables` (numpy CSR arrays,
rebuilt when the index's fault epoch moves or the fabric's routing cache
is invalidated). From those arrays the engine precompiles one immutable
row per (router, dst, escape-flag): the candidate links doubled back to
back (so a rotation never takes a modulo) plus the scheme's VC-mode
discipline, replacing the scalar path's per-packet memo lookups and
``_pick_vc`` calls.

Credit and escape availability live in one flat byte array — bit ``v`` of
``avail[port * num_vns + vn]`` is set iff VC ``v`` of that (port, vn) row
is free and unclaimed. The masks are maintained incrementally by every
buffer write (``Fabric._slot_set``, the injection stage, and this engine's
own apply pass), so a cycle's allocation reads them with zero rebuild
cost.

Conflict resolution deliberately replays the exact scalar iteration order
and per-occupied-slot LCG draws: grant decisions are sequential by
contract (each draw's candidate rotation depends on every earlier grant in
the cycle through the link/VC claims), which is what keeps all three
engines bit-identical. The parity fuzzer (tests/test_parity_fuzz.py) pins
that contract across schemes, topologies, loads and fault schedules.

Support conditions (anything else silently selects the scalar path, with
the reason recorded on ``Fabric.engine_fallback_reason``): numpy present,
a plain ``Fabric`` (no flow-control subclass), single-flit packets, two
VCs per VN, and stateless routing functions with no per-hop state hooks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..routing.base import RoutingFunction
from .index import DenseCandidateTables

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = ["VectorizedEngine"]

_PAIR = (0, 1)

#: Group layout: (links doubled, modes doubled, count, homogeneous mode).
_Group = Tuple[Tuple[int, ...], Tuple[int, ...], int, int]


def _make_group(links: List[int], mode: int) -> _Group:
    doubled = tuple(links) + tuple(links)
    return (doubled, (mode,) * len(doubled), len(links), mode)


def _make_mixed_group(pairs: List[Tuple[int, int]]) -> _Group:
    links = tuple(link for link, _ in pairs)
    modes = tuple(mode for _, mode in pairs)
    return (links + links, modes + modes, len(pairs), -1)


class VectorizedEngine:
    """Movement/allocation/ejection kernel over precompiled tables."""

    __slots__ = (
        "fabric", "_rows", "_esc_rows", "_epoch", "avail",
        "_slot_port", "_slot_ai", "_slot_bit", "rebuilds",
        "tables", "escape_tables",
    )

    def __init__(self, fabric) -> None:
        self.fabric = fabric
        index = fabric.index
        num_vns = fabric.num_vns
        stride = fabric._port_stride
        num_slots = index.num_ports * stride
        # Slot geometry, precomputed vectorized: slot -> owning port, slot
        # -> avail byte index, slot -> avail bit.
        slots = _np.arange(num_slots)
        ports = slots // stride
        vns = (slots % stride) // fabric.vcs_per_vn
        vcs = slots % fabric.vcs_per_vn
        self._slot_port: List[int] = ports.tolist()
        self._slot_ai: List[int] = (ports * num_vns + vns).tolist()
        self._slot_bit: List[int] = (1 << vcs).tolist()
        # Availability masks, seeded from the live buffer (usually empty at
        # construction; scenario builders may pre-place packets).
        self.avail = bytearray(index.num_ports * num_vns)
        for ai in range(len(self.avail)):
            self.avail[ai] = (1 << fabric.vcs_per_vn) - 1
        flat = fabric._buf
        for s in range(num_slots):
            if flat[s] is not None:
                self.avail[self._slot_ai[s]] &= ~self._slot_bit[s] & 0xFF
        self._rows: Optional[List[Tuple[_Group, ...]]] = None
        self._esc_rows: Optional[List[Tuple[_Group, ...]]] = None
        self._epoch = -1
        self.tables: Optional[DenseCandidateTables] = None
        self.escape_tables: Optional[DenseCandidateTables] = None
        #: Table (re)builds performed, including the initial one (test hook
        #: for the fault-epoch invalidation contract).
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # Support gate
    # ------------------------------------------------------------------
    @staticmethod
    def unsupported_reason(fabric) -> Optional[str]:
        """Why this fabric cannot run the vectorized engine (None = it can).

        Structural conditions (plain Fabric, single-flit, two VCs per VN)
        are checked by the caller; this covers numpy and the routing
        functions.
        """
        if _np is None:
            return "numpy is not installed"
        for fn in (fabric.routing, fabric.escape_routing):
            if fn is None:
                continue
            if fn.stateful:
                return f"stateful routing ({type(fn).__name__})"
            if (type(fn).on_hop is not RoutingFunction.on_hop
                    or type(fn).on_inject is not RoutingFunction.on_inject):
                return f"routing with per-hop hooks ({type(fn).__name__})"
        return None

    # ------------------------------------------------------------------
    # Table compilation
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop the compiled rows (mirror of ``invalidate_routing_cache``)."""
        self._rows = None
        self._esc_rows = None

    def _build_tables(self) -> None:
        fabric = self.fabric
        index = fabric.index
        n = index.num_nodes
        compiled = getattr(fabric.routing, "compiled_tables", None)
        if compiled is not None and compiled.epoch == index.fault_epoch:
            # Structure-store warm path: adopt the compiled CSR directly
            # instead of re-flattening the routing function's list tables
            # (identical by the store's round-trip contract; any fault
            # rebuild clears compiled_tables, so staleness is impossible).
            self.tables = compiled
        else:
            exported = fabric.routing.export_tables(n)
            if exported is None:  # pragma: no cover - gated at construction
                raise RuntimeError("routing function stopped exporting tables")
            self.tables = DenseCandidateTables(index, exported)
        main_rows = self.tables.row_lists()
        esc_main_rows = None
        if fabric.escape_mode == "escape_vc":
            esc_exported = fabric.escape_routing.export_tables(n)
            if esc_exported is None:  # pragma: no cover - gated likewise
                raise RuntimeError("escape routing stopped exporting tables")
            self.escape_tables = DenseCandidateTables(index, esc_exported)
            esc_main_rows = self.escape_tables.row_lists()
        mode = fabric.escape_mode
        empty: Tuple[_Group, ...] = ()
        rows: List[Tuple[_Group, ...]] = [empty] * (n * n)
        esc_rows: List[Tuple[_Group, ...]] = [empty] * (n * n)
        for idx in range(n * n):
            links = main_rows[idx]
            if mode is None:
                if links:
                    row = (_make_group(links, 0),)
                    rows[idx] = row
                    # escape flag is never consulted under mode None, but
                    # the scalar memo ignores it too: same row either way.
                    esc_rows[idx] = row
            elif mode == "drain":
                if links:
                    g2 = _make_group(links, 2)
                    rows[idx] = (_make_group(links, 3), g2)
                    esc_rows[idx] = (g2,)
            else:  # escape_vc
                esc_links = esc_main_rows[idx]
                pairs = [(link, 4) for link in links]
                pairs.extend((link, 2) for link in esc_links)
                if pairs:
                    rows[idx] = (_make_mixed_group(pairs),)
                if esc_links:
                    esc_rows[idx] = (_make_group(esc_links, 2),)
        self._rows = rows
        self._esc_rows = esc_rows
        self._epoch = index.fault_epoch
        self.rebuilds += 1

    # ------------------------------------------------------------------
    # The kernel
    # ------------------------------------------------------------------
    def movement(self) -> None:
        """One movement/allocation/ejection pass, scalar-bit-identical."""
        fabric = self.fabric
        if fabric.frozen:
            return
        index = fabric.index
        if self._rows is None or self._epoch != index.fault_epoch:
            self._build_tables()
        flat = fabric._buf
        num_vns = fabric.num_vns
        stride = fabric._port_stride
        cycle = fabric.cycle
        n = index.num_nodes
        avail = self.avail
        used = bytearray(index.num_links)
        # Routing tables may still list links that died this epoch (a
        # routing function without a rebuild story keeps them; the scalar
        # path skips them per-candidate while leaving them in the rotation
        # count). Pre-marking them "used" reproduces that skip for free.
        if index.dead_links:
            for link in sorted(index.dead_links):
                used[link] = 1
        rows = self._rows
        esc_rows = self._esc_rows
        in_ports = index.in_ports
        port_occ = fabric._port_occ
        router_occ = fabric._router_occ
        ej_queues = fabric.ej_queues
        ej_depth = fabric._ej_depth
        epc = fabric.net.ejections_per_cycle
        dead_routers = index.dead_routers or None
        lcg = fabric._lcg
        mode = fabric.escape_mode
        latch0 = mode is not None and (mode == "escape_vc"
                                       or fabric.escape_sticky)
        vn_start = cycle % num_vns

        moves: List[Tuple[int, int, int, int, "object"]] = []
        ejects: List[Tuple[int, int, int, "object"]] = []
        moves_append = moves.append
        ejects_append = ejects.append

        for router in range(n):
            if not router_occ[router]:
                continue
            if dead_routers is not None and router in dead_routers:
                continue
            ports = in_ports[router]
            nports = len(ports)
            pstart = (cycle + router) % nports
            budget = epc
            pend = None
            router_row = router * n
            for pi in range(nports):
                k = pstart + pi
                if k >= nports:
                    k -= nports
                port = ports[k]
                if not port_occ[port]:
                    continue
                base_port = port * stride
                v0 = (cycle + port) & 1
                granted = False
                for vn_off in range(num_vns):
                    vn = vn_start + vn_off
                    if vn >= num_vns:
                        vn -= num_vns
                    base = base_port + vn + vn  # vn * vcs, vcs == 2
                    vc = v0
                    for _ in _PAIR:
                        s = base + vc
                        vc = 1 - vc
                        pkt = flat[s]
                        if pkt is None:
                            continue
                        dst = pkt.dst
                        if dst == router:
                            if budget > 0:
                                cls = pkt.msg_class
                                queue = ej_queues[router][cls]
                                if pend is None:
                                    ok = len(queue) < ej_depth
                                else:
                                    ok = (len(queue) + pend.get(cls, 0)
                                          < ej_depth)
                                if ok:
                                    budget -= 1
                                    if pend is None:
                                        pend = {cls: 1}
                                    else:
                                        pend[cls] = pend.get(cls, 0) + 1
                                    ejects_append((s, port, router, pkt))
                                    granted = True
                            if granted:
                                break
                            continue
                        row = (esc_rows[router_row + dst] if pkt.in_escape
                               else rows[router_row + dst])
                        for group in row:
                            links2 = group[0]
                            nc = group[2]
                            lcg = (lcg * 1103515245 + 12345) & 0x7FFFFFFF
                            j = lcg % nc
                            stop = j + nc
                            gm = group[3]
                            if gm == 3:  # non-escape VCs only (VC 1)
                                while j < stop:
                                    link = links2[j]
                                    if not used[link]:
                                        ai = link * num_vns + vn
                                        a = avail[ai]
                                        if a & 2:
                                            used[link] = 1
                                            avail[ai] = a & 1
                                            moves_append(
                                                (s, link * stride + vn + vn
                                                 + 1, link, vn, pkt))
                                            granted = True
                                            break
                                    j += 1
                            elif gm == 2:  # escape VC only (VC 0)
                                while j < stop:
                                    link = links2[j]
                                    if not used[link]:
                                        ai = link * num_vns + vn
                                        a = avail[ai]
                                        if a & 1:
                                            used[link] = 1
                                            avail[ai] = a & 2
                                            if latch0 and not pkt.in_escape:
                                                pkt.in_escape = True
                                            moves_append(
                                                (s, link * stride + vn + vn,
                                                 link, vn, pkt))
                                            granted = True
                                            break
                                    j += 1
                            else:  # mode 0 / mode 4 / mixed groups
                                modes2 = group[1]
                                while j < stop:
                                    link = links2[j]
                                    if not used[link]:
                                        ai = link * num_vns + vn
                                        a = avail[ai]
                                        if a:
                                            m = modes2[j]
                                            tvc = -1
                                            if m == 4:
                                                # Duato-conservative: keep
                                                # one VC free for escape.
                                                if a == 3:
                                                    tvc = 1
                                            elif m == 2:
                                                if a & 1:
                                                    tvc = 0
                                            elif m == 3:
                                                if a & 2:
                                                    tvc = 1
                                            elif a & 1:  # mode 0, VC order
                                                tvc = 0
                                            else:
                                                tvc = 1
                                            if tvc >= 0:
                                                used[link] = 1
                                                if tvc:
                                                    avail[ai] = a & 1
                                                else:
                                                    avail[ai] = a & 2
                                                    if (latch0
                                                            and not
                                                            pkt.in_escape):
                                                        pkt.in_escape = True
                                                moves_append(
                                                    (s, link * stride
                                                     + vn + vn + tvc,
                                                     link, vn, pkt))
                                                granted = True
                                                break
                                    j += 1
                            if granted:
                                break
                        if granted:
                            break
                    if granted:
                        break
                # one grant per input port per cycle (crossbar input)
        fabric._lcg = lcg
        self._apply(moves, ejects)

    def _apply(self, moves, ejects) -> None:
        """Land the cycle's grants with batched accounting.

        Move targets were free at the start of the scan and stay claimed
        (their avail bits cleared at grant time), and a granted source slot
        is never claimable this cycle (its packet still occupies it during
        the scan) — so sources and targets are disjoint and a single pass
        per move is exact. Per-queue eject order is grant order, matching
        the scalar apply.
        """
        fabric = self.fabric
        if not (moves or ejects):
            return
        flat = fabric._buf
        index = fabric.index
        stats = fabric.stats
        cycle = fabric.cycle
        avail = self.avail
        slot_port = self._slot_port
        slot_ai = self._slot_ai
        slot_bit = self._slot_bit
        port_occ = fabric._port_occ
        router_occ = fabric._router_occ
        port_router = index.port_router
        link_dst = index.link_dst
        dist = index.dist
        link_util = fabric.link_util
        fabric.last_progress_cycle = cycle
        misroutes = 0
        vn_hops = [0] * fabric.num_vns
        for s, d, link, vn, pkt in moves:
            flat[s] = None
            flat[d] = pkt
            sp = slot_port[s]
            port_occ[sp] -= 1
            port_occ[link] += 1
            src_router = port_router[sp]
            dst_router = link_dst[link]
            router_occ[src_router] -= 1
            router_occ[dst_router] += 1
            avail[slot_ai[s]] |= slot_bit[s]
            pkt.hops += 1
            pkt.blocked_since = cycle
            pdst = pkt.dst
            if dist[dst_router][pdst] > dist[src_router][pdst]:
                pkt.misroutes += 1
                misroutes += 1
            link_util[link] += 1
            vn_hops[vn] += 1
        nm = len(moves)
        ne = len(ejects)
        if nm:
            if misroutes:
                stats.misroutes += misroutes
            stats.flits_traversed += nm  # single-flit packets (gated)
            svh = stats.vn_hops
            for vn, count in enumerate(vn_hops):
                if count:
                    svh[vn] = svh.get(vn, 0) + count
        stats.buffer_reads += nm + ne
        stats.buffer_writes += nm
        stats.xbar_traversals += nm + ne
        eject = fabric._eject
        for s, port, router, pkt in ejects:
            flat[s] = None
            port_occ[port] -= 1
            router_occ[router] -= 1
            avail[slot_ai[s]] |= slot_bit[s]
            eject(router, pkt)

    # ------------------------------------------------------------------
    # Test hooks
    # ------------------------------------------------------------------
    def audit_masks(self) -> List[int]:
        """Avail-byte indices whose mask disagrees with the buffer (tests)."""
        fabric = self.fabric
        flat = fabric._buf
        bad = []
        expect = bytearray(len(self.avail))
        for ai in range(len(expect)):
            expect[ai] = (1 << fabric.vcs_per_vn) - 1
        for s in range(len(flat)):
            if flat[s] is not None:
                expect[self._slot_ai[s]] &= ~self._slot_bit[s] & 0xFF
        for ai in range(len(expect)):
            if expect[ai] != self.avail[ai]:
                bad.append(ai)
        return bad
