"""Deadlock analysis of a live fabric.

Two tools live here:

- :class:`WaitForGraph` / :func:`find_deadlocked_slots` — an exact
  OR-request-model fixpoint: a buffered packet *can eventually move* if it
  can eject, or if any of its candidate downstream VCs is free, or is
  occupied by a packet that can eventually move. Everything else is
  deadlocked. This is the measurement oracle behind the Figure 3 study,
  the detection substrate of the SPIN baseline, and the instant resolver
  of the IDEAL upper bound. The graph object is reusable: callers that
  rotate a cycle and re-check (the IDEAL resolver) refresh only the
  rotated slots instead of re-deriving every packet's candidates.
- :func:`extract_cycle` / :func:`rotate_cycle` — pull one resource cycle
  out of the deadlocked set and force its packets to move one hop in
  unison (the coordinated movement of SPIN's spin and of the ideal
  resolver; DRAIN's drain uses the precomputed drain path instead and does
  not need any of this machinery — that asymmetry *is* the paper's point).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..router.packet import MessageClass, Packet
from .fabric import Fabric

__all__ = [
    "WaitForGraph",
    "find_deadlocked_slots",
    "extract_cycle",
    "rotate_cycle",
    "has_deadlock",
    "deadlock_cycle_payload",
]

Slot = Tuple[int, int, int]  # (port, vn, vc)

#: Message classes whose ejection queues always drain eventually (sinks).
#: RESP is a sink under the MESI model; under the MOESI model the true
#: sinks are WB_ACK and UNBLOCK (RESP consumption spawns an UNBLOCK), but
#: its RESP queues still drain once the UNBLOCK path does, so the oracle
#: treats all three as eventually-draining for measurement purposes.
_SINK_CLASSES = {MessageClass.RESP, MessageClass.WB_ACK, MessageClass.UNBLOCK}


def _target_slots(fabric: Fabric, router: int, vn: int, packet: Packet) -> List[Slot]:
    """All downstream VC slots *packet* could legally claim right now."""
    out: List[Slot] = []
    vcs = fabric.vcs_per_vn
    for group in fabric.candidate_links(router, packet):
        for link, vc_mode in group:
            # Priority between groups is irrelevant for liveness: any
            # claimable slot is a slot the packet could move into.
            if vc_mode == 0:
                vc_range = range(vcs)
            elif vc_mode == 2:
                vc_range = range(1)
            else:
                # Modes 3 and 4: non-escape VCs. Mode 4's conservative
                # criterion only throttles throughput; for liveness any
                # free non-escape slot is eventually claimable.
                vc_range = range(1, vcs)
            for vc in vc_range:
                slot = (link, vn, vc)
                if slot not in out:
                    out.append(slot)
    return out


class WaitForGraph:
    """Wait-for structure over the fabric's occupied slots, reusable.

    Holds, per occupied slot, the occupying packet and either its legal
    target slots (in-transit packets) or its ejectability (at-destination
    packets). Building it costs one candidate derivation per occupied
    slot; afterwards :meth:`deadlocked` is a cheap fixpoint over the
    stored edges, and :meth:`refresh_slots` re-derives only the slots a
    rotation touched — the freeness of a target depends solely on *which*
    slots are occupied, and a rotation permutes occupants without changing
    that set.
    """

    __slots__ = ("fabric", "assume", "occupant", "targets", "at_dest", "paused")

    def __init__(self, fabric: Fabric, assume_ejection_drains: bool = True) -> None:
        self.fabric = fabric
        self.assume = assume_ejection_drains
        self.occupant: Dict[Slot, Packet] = {}
        self.targets: Dict[Slot, List[Slot]] = {}
        #: Present only for at-destination slots; value = ejectable flag.
        self.at_dest: Dict[Slot, bool] = {}
        #: Pause-aware fabrics (PFC) report their XOFF rows as
        #: ``(port, vn) -> occupied slots``; a free slot in a paused row is
        #: *not* claimable — the waiter depends on the row's occupants
        #: instead (only their departure re-opens the row). Absent on the
        #: base credit fabric, so credit-mode analysis is untouched.
        paused_hook = getattr(fabric, "paused_rows", None)
        self.paused = paused_hook() if paused_hook is not None else None
        for port, vn, vc, packet in fabric.occupied_slots():
            slot = (port, vn, vc)
            self.occupant[slot] = packet
            self._extract(slot, packet)

    def _extract(self, slot: Slot, packet: Packet) -> None:
        """(Re)derive one slot's wait-for edges from the live fabric."""
        fabric = self.fabric
        router = fabric.index.port_router[slot[0]]
        if packet.dst == router:
            self.targets[slot] = []
            self.at_dest[slot] = (
                self.assume
                or packet.msg_class in _SINK_CLASSES
                or fabric.ejection_space(router, packet.msg_class) > 0
            )
        else:
            self.at_dest.pop(slot, None)
            self.targets[slot] = _target_slots(fabric, router, slot[1], packet)

    def refresh_slots(self, slots: Iterable[Slot]) -> None:
        """Re-read occupants and re-derive edges for *slots* only.

        Intended for post-rotation updates: a rotation permutes the
        packets within a cycle's slots, so only those slots' occupants
        (and hence their targets / at-destination status) changed.
        """
        for slot in slots:
            packet = self.fabric._slot_get(*slot)
            if packet is None:
                self.occupant.pop(slot, None)
                self.targets.pop(slot, None)
                self.at_dest.pop(slot, None)
            else:
                self.occupant[slot] = packet
                self._extract(slot, packet)

    def deadlocked(self) -> Set[Slot]:
        """The OR-request-model fixpoint over the stored wait-for edges."""
        occupant = self.occupant
        at_dest = self.at_dest
        paused = self.paused
        # Escape-exempt fabrics (DRAIN over PFC) let any packet claim a
        # free escape VC (vc 0) even in an XOFF row — mirror that here or
        # the oracle would report deadlocks the escape channel resolves.
        exempt = paused is not None and getattr(
            self.fabric, "pause_exempt_escape", False
        )
        can_move: Set[Slot] = set()
        waiters: Dict[Slot, List[Slot]] = {}
        frontier: List[Slot] = []
        for slot, tgt in self.targets.items():
            if slot in at_dest:
                if at_dest[slot]:
                    can_move.add(slot)
                    frontier.append(slot)
                continue
            movable = False
            for t in tgt:
                if t not in occupant:
                    row_occ = paused.get((t[0], t[1])) if paused else None
                    if row_occ is None or not row_occ or (
                        exempt and t[2] == 0
                    ):
                        # Free and unpaused, paused-but-empty (a forced
                        # pause with a finite expiry), or a pause-exempt
                        # escape slot: eventually claimable.
                        movable = True
                    else:
                        # Free slot in a paused row: claimable only after
                        # an occupant leaves and the row XONs (OR over the
                        # occupants, like OR over target slots).
                        for held in row_occ:
                            waiters.setdefault(held, []).append(slot)
                else:
                    waiters.setdefault(t, []).append(slot)
            if movable:
                can_move.add(slot)
                frontier.append(slot)

        while frontier:
            slot = frontier.pop()
            for waiter in waiters.get(slot, ()):
                if waiter not in can_move:
                    can_move.add(waiter)
                    frontier.append(waiter)

        return {s for s in occupant if s not in can_move}


def find_deadlocked_slots(
    fabric: Fabric, assume_ejection_drains: bool = True
) -> Set[Slot]:
    """Return the set of buffer slots whose packets can never move again.

    *assume_ejection_drains* treats every packet that has reached its
    destination router as eventually ejectable (true for synthetic traffic
    and for sink classes). When False, only sink-class packets and packets
    with free ejection space count as ejectable, which additionally exposes
    protocol-level deadlocks where non-sink ejection queues are wedged.
    """
    # An empty fabric cannot deadlock; skip the graph construction (the
    # oracle is consulted on watchdog/controller ticks, which at low load
    # mostly land on empty networks).
    if getattr(fabric, "packets_in_network", 1) == 0:
        return set()
    return WaitForGraph(fabric, assume_ejection_drains).deadlocked()


def has_deadlock(fabric: Fabric, assume_ejection_drains: bool = True) -> bool:
    """True when at least one buffered packet is permanently stuck."""
    return bool(find_deadlocked_slots(fabric, assume_ejection_drains))


def extract_cycle(
    fabric: Fabric,
    deadlocked: Set[Slot],
    graph: Optional[WaitForGraph] = None,
) -> Optional[List[Slot]]:
    """Find one resource cycle within the deadlocked slots.

    Returns the cycle as a slot list ``[s0, s1, ..., sk-1]`` where the
    packet in ``si`` waits on (and during a spin moves into) ``s(i+1) % k``.
    Returns ``None`` when the deadlocked set contains no rotatable cycle
    (e.g. pure protocol-level wedges at ejection queues, which no amount of
    spinning can fix — Section I-B: "There are no existing reactive
    solutions for protocol-level deadlocks").

    A *graph* built over the current fabric state (and refreshed after any
    rotation) lets repeated extractions reuse the stored wait-for edges
    instead of re-deriving candidates per pass.
    """
    if not deadlocked:
        return None
    index = fabric.index
    if graph is not None:
        occupant = graph.occupant
        paused = graph.paused
    else:
        occupant = {
            (port, vn, vc): packet
            for port, vn, vc, packet in fabric.occupied_slots()
        }
        paused_hook = getattr(fabric, "paused_rows", None)
        paused = paused_hook() if paused_hook is not None else None

    succ: Dict[Slot, List[Slot]] = {}
    for slot in deadlocked:
        packet = occupant[slot]
        router = index.port_router[slot[0]]
        if packet.dst == router:
            succ[slot] = []
            continue
        if graph is not None:
            tgt = graph.targets[slot]
        else:
            tgt = _target_slots(fabric, router, slot[1], packet)
        edges: List[Slot] = []
        for t in tgt:
            if t in deadlocked:
                if t not in edges:
                    edges.append(t)
            elif paused and t not in occupant:
                if t[2] == 0 and getattr(fabric, "pause_exempt_escape", False):
                    continue  # claimable despite the pause; no edge
                # Free slot in a paused row: the wait-for edge runs to the
                # row's deadlocked occupants (see WaitForGraph.deadlocked),
                # so the extracted cycle traverses pause-induced CBD edges.
                for held in paused.get((t[0], t[1]), ()):
                    if held in deadlocked and held not in edges:
                        edges.append(held)
        succ[slot] = edges

    # Iterative DFS for any cycle in the deadlocked wait-for subgraph.
    color: Dict[Slot, int] = {}  # 0 absent/white, 1 grey (on stack), 2 black
    parent: Dict[Slot, Slot] = {}
    for root in succ:
        if color.get(root):
            continue
        stack: List[Tuple[Slot, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            slot, child_idx = stack[-1]
            children = succ[slot]
            if child_idx >= len(children):
                color[slot] = 2
                stack.pop()
                continue
            stack[-1] = (slot, child_idx + 1)
            child = children[child_idx]
            if color.get(child, 0) == 0:
                color[child] = 1
                parent[child] = slot
                stack.append((child, 0))
            elif color[child] == 1:
                # Found a grey back-edge: unwind slot -> ... -> child.
                cycle = [slot]
                node = slot
                while node != child:
                    node = parent[node]
                    cycle.append(node)
                cycle.reverse()
                return cycle
    return None


def _canonical_slot_rotation(index, cycle: List[Slot]) -> List[Slot]:
    """Rotate *cycle* so its per-hop link sequence is lexicographically
    minimal over all rotations.

    Rotation is the only freedom ``extract_cycle`` has (the slot cycle
    itself is determined by the wedge), so fixing it makes the payload a
    canonical representative — directly comparable, by plain equality on
    the ``links`` field, with the static certifier's buffer-cycle
    counterexamples, which are canonicalised the same way.
    """
    n = len(cycle)
    if n < 2:
        return cycle

    def hop_key(slot: Slot):
        port = slot[0]
        if index.is_injection_port(port):
            return (1, port)
        return (0, index.link_src[port], index.link_dst[port])

    keys = [hop_key(slot) for slot in cycle]
    best = 0
    for offset in range(1, n):
        for j in range(n):
            a = keys[(offset + j) % n]
            b = keys[(best + j) % n]
            if a != b:
                if a < b:
                    best = offset
                break
    return cycle[best:] + cycle[:best]


def deadlock_cycle_payload(
    fabric: Fabric,
    deadlocked: Set[Slot],
    graph: Optional[WaitForGraph] = None,
) -> Optional[Dict]:
    """Describe one minimal deadlock cycle as a JSON-ready payload.

    Mirrors the certifier's counterexample shape (``kind`` + ``cycle``):
    the static certifier reports a ``turn-cycle`` over channel
    dependencies; this is the runtime analogue — a ``buffer-cycle`` over
    concrete occupied VC slots, naming the routers, links and holding
    packets so a watchdog halt is actionable. Returns ``None`` when the
    deadlocked set contains no cycle (pure ejection-queue wedges).
    """
    cycle = extract_cycle(fabric, deadlocked, graph)
    if cycle is None:
        return None
    index = fabric.index
    cycle = _canonical_slot_rotation(index, cycle)
    hops = []
    routers: List[int] = []
    links: List[List[int]] = []
    for port, vn, vc in cycle:
        packet = fabric._slot_get(port, vn, vc)
        router = index.port_router[port]
        if index.is_injection_port(port):
            link = None
        else:
            link = [index.link_src[port], index.link_dst[port]]
            if link not in links:
                links.append(link)
        if router not in routers:
            routers.append(router)
        hops.append({
            "router": router,
            "port": port,
            "vn": vn,
            "vc": vc,
            "link": link,
            "packet": None if packet is None else {
                "pid": packet.pid,
                "src": packet.src,
                "dst": packet.dst,
                "msg_class": packet.msg_class.name,
                "hops": packet.hops,
            },
        })
    return {
        "kind": "buffer-cycle",
        "length": len(hops),
        "routers": routers,
        "links": links,
        "cycle": hops,
    }


def rotate_cycle(fabric: Fabric, cycle: List[Slot], forced_kind: str) -> int:
    """Move every packet in *cycle* one slot forward, in unison.

    ``forced_kind`` is ``"spin"`` or ``"ideal"`` and selects the per-packet
    counter updated. Returns the number of packets moved. Hops and
    misroutes are accounted exactly like normal traversals; ejection is
    *not* performed here — after the rotation packets re-route normally
    (SPIN semantics).
    """
    if len(cycle) < 2:
        raise ValueError("a rotation cycle needs at least two slots")
    index = fabric.index
    stats = fabric.stats
    packets = [fabric._slot_get(p, vn, vc) for p, vn, vc in cycle]
    if any(p is None for p in packets):
        raise ValueError("rotation cycle contains an empty slot")
    n = len(cycle)
    for i in range(n):
        dst_slot = cycle[(i + 1) % n]
        packet = packets[i]
        src_port = cycle[i][0]
        fabric._slot_set(dst_slot[0], dst_slot[1], dst_slot[2], packet)
        link = dst_slot[0]
        if index.is_injection_port(link):
            raise ValueError("rotation cycle passes through an injection port")
        packet.hops += 1
        packet.blocked_since = fabric.cycle
        old_router = index.port_router[src_port]
        new_router = index.link_dst[link]
        if index.dist[new_router][packet.dst] > index.dist[old_router][packet.dst]:
            packet.misroutes += 1
            stats.misroutes += 1
        if forced_kind == "spin":
            packet.spin_moves += 1
        stats.flits_traversed += 1
        stats.buffer_reads += 1
        stats.buffer_writes += 1
        stats.xbar_traversals += 1
    fabric.last_progress_cycle = fabric.cycle
    return n
