"""Static-Bubble-style reactive baseline (Section VII related work [7]).

DISHA [6] and Static Bubble [7] provision extra buffers at design time
that stay *off* until a timeout-based detector finds a deadlock; the extra
buffer then gives one blocked packet somewhere to go, breaking the cycle.
Compared to SPIN there is no coordinated multi-router movement — recovery
is local — but the design still pays for the always-present extra buffer
and the detection machinery.

The model: every router owns one normally-off *bubble* slot. When the
oracle confirms a deadlock involving a packet blocked past the timeout,
that packet is lifted into its router's bubble (freeing its VC, which
unblocks the cycle). Bubble packets drain back into the network — or eject
— with priority as soon as a slot frees up (the controller runs before the
fabric's movement and injection stages, so re-entry wins freed slots).

Model limitation, kept deliberately: under *sustained* over-saturation the
bubbles can all fill while new wedges keep forming, and recovery stalls —
the real designs avoid this with carefully sequenced token/priority
machinery, which is precisely the complexity cost the paper attributes to
reactive schemes. At the loads the paper evaluates, the model recovers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.config import SpinConfig
from ..router.packet import Packet
from .deadlock import find_deadlocked_slots
from .fabric import Fabric

__all__ = ["StaticBubbleController"]


class StaticBubbleController:
    """Timeout-detect + local-bubble-recovery state machine."""

    def __init__(self, fabric: Fabric, config: SpinConfig,
                 check_interval: int = 32) -> None:
        self.fabric = fabric
        self.config = config
        self.check_interval = max(1, check_interval)
        #: The one extra buffer per router; None while switched off.
        self.bubbles: Dict[int, Optional[Packet]] = {
            n: None for n in range(fabric.index.num_nodes)
        }
        self.activations = 0

    # ------------------------------------------------------------------
    def occupied_bubbles(self) -> int:
        return sum(1 for p in self.bubbles.values() if p is not None)

    def next_event_cycle(self, now: int) -> int:
        """First cycle >= *now* at which :meth:`step` may act.

        An occupied bubble re-enters the network opportunistically every
        cycle, so any occupancy pins the horizon to *now*; otherwise only
        the detection tick matters. (A quiescence-gated caller never sees
        an occupied bubble — bubble packets still count in
        ``packets_in_network`` — but the hook stays correct standalone.)
        """
        if self.occupied_bubbles():
            return now
        interval = self.check_interval
        rem = now % interval
        return now if rem == 0 else now + interval - rem

    def step(self) -> None:
        self._drain_bubbles()
        fabric = self.fabric
        if fabric.cycle % self.check_interval:
            return
        timeout = self.config.timeout
        stalled = [
            (port, vn, vc, packet)
            for port, vn, vc, packet in fabric.occupied_slots()
            if not fabric.index.is_injection_port(port)
            and packet.blocked_since is not None
            and fabric.cycle - packet.blocked_since >= timeout
        ]
        if not stalled:
            return
        deadlocked = find_deadlocked_slots(fabric)
        if not deadlocked:
            return
        fabric.stats.deadlock_events += 1
        fabric.stats.deadlocks_detected += len(deadlocked)
        # Lift one deadlocked, timed-out packet into its router's bubble.
        for port, vn, vc, packet in stalled:
            if (port, vn, vc) not in deadlocked:
                continue
            router = fabric.index.port_router[port]
            if self.bubbles[router] is not None:
                continue
            fabric._slot_set(port, vn, vc, None)
            # packets_in_network keeps counting the packet: a bubble is
            # part of the router, just not a normal VC slot.
            self.bubbles[router] = packet
            self.activations += 1
            packet.blocked_since = fabric.cycle
            fabric.stats.buffer_reads += 1
            fabric.stats.buffer_writes += 1
            fabric.last_progress_cycle = fabric.cycle
            return  # one recovery per detection pass

    def _drain_bubbles(self) -> None:
        """Bubble packets re-enter the network (or eject) when possible."""
        fabric = self.fabric
        for router, packet in self.bubbles.items():
            if packet is None:
                continue
            if packet.dst == router:
                if fabric.ejection_space(router, packet.msg_class) > 0:
                    self.bubbles[router] = None
                    fabric._eject(router, packet)
                continue
            moved = False
            for group in fabric.candidate_links(router, packet):
                for link, vc_mode in group:
                    vn = packet.vn
                    tvc = fabric._pick_vc(link, vn, vc_mode, claimed=set())
                    if tvc < 0:
                        continue
                    fabric._slot_set(link, vn, tvc, packet)
                    self.bubbles[router] = None
                    packet.hops += 1
                    packet.blocked_since = fabric.cycle
                    new_router = fabric.index.link_dst[link]
                    if (
                        fabric.index.dist[new_router][packet.dst]
                        > fabric.index.dist[router][packet.dst]
                    ):
                        packet.misroutes += 1
                        fabric.stats.misroutes += 1
                    fabric.stats.flits_traversed += 1
                    fabric.stats.buffer_reads += 1
                    fabric.stats.buffer_writes += 1
                    fabric.stats.xbar_traversals += 1
                    fabric.last_progress_cycle = fabric.cycle
                    moved = True
                    break
                if moved:
                    break
