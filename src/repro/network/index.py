"""Integer indexing of a topology's links and ports for the hot simulation path.

The cycle-level fabric avoids hashing :class:`~repro.topology.graph.Link`
objects inside per-cycle loops by assigning every unidirectional link a
small integer id and precomputing per-router port lists. Injection ports
get ids following the link ids, so every buffer in the network is addressed
by a single integer port id:

- port ``0 .. L-1``: the input buffer at ``link.dst`` fed by link ``i``
- port ``L + r``: the injection port of router ``r``
"""

from __future__ import annotations

from collections import deque
from itertools import chain
from typing import Dict, List, Optional, Set

from ..topology.graph import Link, Topology

try:  # numpy backs the dense candidate tables; the scalar path needs none
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = ["FabricIndex", "DenseCandidateTables"]


class DenseCandidateTables:
    """Flat per-(router, dst) candidate-link tables in numpy CSR form.

    The vectorized movement engine replaces the fabric's per-packet
    candidate memo with one dense lookup structure: row ``router * n + dst``
    of the (offsets, counts, links) triple yields the candidate link ids in
    the exact order the routing function enumerates them. Rows are built in
    one vectorized pass (length scan -> cumulative offsets -> flat gather)
    so a fault-driven rebuild of a thousand-node table stays cheap.

    Instances are tagged with the :attr:`FabricIndex.fault_epoch` they were
    built under; holders compare :attr:`epoch` against the live index and
    rebuild on mismatch (the same invalidation discipline as the fabric's
    candidate-group memo).
    """

    __slots__ = ("num_nodes", "epoch", "offsets", "counts", "links")

    def __init__(self, index: "FabricIndex",
                 tables: List[List[List[int]]]) -> None:
        if _np is None:  # pragma: no cover - numpy is a hard dependency
            raise RuntimeError("dense candidate tables require numpy")
        n = index.num_nodes
        if len(tables) != n:
            raise ValueError(f"expected {n} table rows, got {len(tables)}")
        self.num_nodes = n
        self.epoch = index.fault_epoch
        rows = [cell for row in tables for cell in row]
        counts = _np.fromiter((len(cell) for cell in rows),
                              dtype=_np.int32, count=n * n)
        offsets = _np.zeros(n * n + 1, dtype=_np.int64)
        _np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        self.links = _np.fromiter(chain.from_iterable(rows),
                                  dtype=_np.int32, count=total)
        self.counts = counts
        self.offsets = offsets
        # Exported tables are shared between engines; an in-place write
        # would silently desynchronise them from the routing function, so
        # freeze the arrays (the DET008 lint rule guards the same contract
        # statically).
        self.links.setflags(write=False)
        self.counts.setflags(write=False)
        self.offsets.setflags(write=False)

    @classmethod
    def from_arrays(
        cls,
        index: "FabricIndex",
        offsets: "_np.ndarray",
        counts: "_np.ndarray",
        links: "_np.ndarray",
    ) -> "DenseCandidateTables":
        """Adopt a stored CSR triple (structure-store warm path).

        The arrays are typically read-only memory maps shared between
        worker processes; they are validated for shape/dtype and tagged
        with the live fault epoch (callers only adopt boot-state tables,
        so this is epoch 0 in practice — later epochs rebuild from
        scratch via the routing function).
        """
        if _np is None:  # pragma: no cover - numpy is a hard dependency
            raise RuntimeError("dense candidate tables require numpy")
        n = index.num_nodes
        offsets = _np.asarray(offsets)
        counts = _np.asarray(counts)
        links = _np.asarray(links)
        if offsets.shape != (n * n + 1,) or counts.shape != (n * n,):
            raise ValueError("CSR table shape does not match the index")
        if links.shape != (int(offsets[-1]),):
            raise ValueError("CSR links length does not match its offsets")
        self = object.__new__(cls)
        self.num_nodes = n
        self.epoch = index.fault_epoch
        self.offsets = offsets
        self.counts = counts
        self.links = links
        for arr in (self.offsets, self.counts, self.links):
            if arr.flags.writeable:  # mmap_mode="r" arrays already are not
                arr.setflags(write=False)
        return self

    def row(self, router: int, dst: int) -> List[int]:
        """Candidate link ids for (router, dst), routing-function order."""
        idx = router * self.num_nodes + dst
        lo = int(self.offsets[idx])
        return self.links[lo:lo + int(self.counts[idx])].tolist()

    def row_lists(self) -> List[List[int]]:
        """All rows as plain Python lists (hot-path extraction helper)."""
        flat = self.links.tolist()
        offs = self.offsets.tolist()
        return [flat[offs[i]:offs[i + 1]] for i in range(len(offs) - 1)]


class FabricIndex:
    """Precomputed integer views of a topology for the simulator."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.links: List[Link] = topology.unidirectional_links()
        self.num_links = len(self.links)
        self.num_nodes = topology.num_nodes
        self.link_id: Dict[Link, int] = {
            link: i for i, link in enumerate(self.links)
        }
        self.link_src: List[int] = [link.src for link in self.links]
        self.link_dst: List[int] = [link.dst for link in self.links]
        self.link_reverse: List[int] = [
            self.link_id[link.reverse] for link in self.links
        ]

        # Per-router port lists. Input ports of router r are the links ending
        # at r plus its injection port; output ports are the links leaving r.
        self.in_links: List[List[int]] = [[] for _ in range(self.num_nodes)]
        self.out_links: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for i, link in enumerate(self.links):
            self.in_links[link.dst].append(i)
            self.out_links[link.src].append(i)

        self.num_ports = self.num_links + self.num_nodes
        self.port_router: List[int] = self.link_dst + list(range(self.num_nodes))
        self.in_ports: List[List[int]] = [
            self.in_links[r] + [self.injection_port(r)] for r in range(self.num_nodes)
        ]

        # Hop-distance matrix for minimal routing and misroute accounting.
        # Routed through the structure store's memo layer (DET012): one
        # BFS per distinct topology content per process, persisted when
        # the store is active. Imported lazily — the store compiles
        # indices itself, so a top-level import would be circular.
        from ..structcache import distances

        self.dist: List[List[int]] = distances(topology)

        # Runtime fault state (mid-simulation link/router deaths). The
        # static port/link numbering never changes — dead resources keep
        # their ids so buffer addressing stays valid — but distances and
        # routing tables are recomputed over the survivors.
        self.dead_links: Set[int] = set()
        self.dead_routers: Set[int] = set()
        #: Monotonic fault-reconfiguration counter. Consumers holding
        #: derived caches (e.g. the fabric's candidate-group memo) compare
        #: it against the epoch they cached under and invalidate on change.
        self.fault_epoch: int = 0

    # ------------------------------------------------------------------
    # Runtime faults
    # ------------------------------------------------------------------
    def link_alive(self, link: int) -> bool:
        return link not in self.dead_links

    def router_alive(self, router: int) -> bool:
        return router not in self.dead_routers

    def apply_faults(self, dead_links: Set[int], dead_routers: Set[int]) -> None:
        """Install the current fault state and recompute hop distances.

        *dead_links* is the complete set of dead unidirectional link ids
        (callers kill both directions of a bidirectional link together);
        *dead_routers* the complete set of dead routers. Distances are
        recomputed by BFS over the surviving graph; unreachable pairs get
        distance -1, matching :meth:`Topology.bfs_distances`.
        """
        self.dead_links = set(dead_links)
        self.dead_routers = set(dead_routers)
        self.fault_epoch += 1
        n = self.num_nodes
        alive_out: List[List[int]] = [[] for _ in range(n)]
        for link in range(self.num_links):
            if link in self.dead_links:
                continue
            src, dst = self.link_src[link], self.link_dst[link]
            if src in self.dead_routers or dst in self.dead_routers:
                continue
            alive_out[src].append(dst)
        for src in range(n):
            dist = [-1] * n
            if src not in self.dead_routers:
                dist[src] = 0
                frontier = deque([src])
                while frontier:
                    node = frontier.popleft()
                    for neigh in alive_out[node]:
                        if dist[neigh] < 0:
                            dist[neigh] = dist[node] + 1
                            frontier.append(neigh)
            self.dist[src] = dist

    def surviving_topology(self) -> Topology:
        """The alive sub-topology (full router numbering, dead ones isolated).

        Dead routers stay as isolated nodes so ids keep matching the
        original numbering; their incident links — and explicitly dead
        links — are absent. The online drain-path recovery runs over this
        view.
        """
        edges = []
        seen = set()
        for link in range(self.num_links):
            if link in self.dead_links:
                continue
            a, b = self.link_src[link], self.link_dst[link]
            if a in self.dead_routers or b in self.dead_routers:
                continue
            key = (min(a, b), max(a, b))
            if key not in seen:
                seen.add(key)
                edges.append(key)
        return Topology(
            self.num_nodes, edges, name=f"{self.topology.name}-surviving"
        )

    def unreachable_pairs(self) -> int:
        """Ordered alive (src, dst) pairs with no surviving route."""
        count = 0
        for src in range(self.num_nodes):
            if src in self.dead_routers:
                continue
            row = self.dist[src]
            for dst in range(self.num_nodes):
                if dst == src or dst in self.dead_routers:
                    continue
                if row[dst] < 0:
                    count += 1
        return count

    def injection_port(self, router: int) -> int:
        """Port id of router *router*'s injection buffer."""
        return self.num_links + router

    def is_injection_port(self, port: int) -> bool:
        return port >= self.num_links

    def port_of_link(self, link: Link) -> int:
        """Port id of the input buffer fed by *link*."""
        return self.link_id[link]

    def __repr__(self) -> str:
        return (
            f"FabricIndex({self.topology.name}, links={self.num_links}, "
            f"ports={self.num_ports})"
        )
