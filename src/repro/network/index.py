"""Integer indexing of a topology's links and ports for the hot simulation path.

The cycle-level fabric avoids hashing :class:`~repro.topology.graph.Link`
objects inside per-cycle loops by assigning every unidirectional link a
small integer id and precomputing per-router port lists. Injection ports
get ids following the link ids, so every buffer in the network is addressed
by a single integer port id:

- port ``0 .. L-1``: the input buffer at ``link.dst`` fed by link ``i``
- port ``L + r``: the injection port of router ``r``
"""

from __future__ import annotations

from typing import Dict, List

from ..topology.graph import Link, Topology

__all__ = ["FabricIndex"]


class FabricIndex:
    """Precomputed integer views of a topology for the simulator."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.links: List[Link] = topology.unidirectional_links()
        self.num_links = len(self.links)
        self.num_nodes = topology.num_nodes
        self.link_id: Dict[Link, int] = {l: i for i, l in enumerate(self.links)}
        self.link_src: List[int] = [l.src for l in self.links]
        self.link_dst: List[int] = [l.dst for l in self.links]
        self.link_reverse: List[int] = [self.link_id[l.reverse] for l in self.links]

        # Per-router port lists. Input ports of router r are the links ending
        # at r plus its injection port; output ports are the links leaving r.
        self.in_links: List[List[int]] = [[] for _ in range(self.num_nodes)]
        self.out_links: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for i, link in enumerate(self.links):
            self.in_links[link.dst].append(i)
            self.out_links[link.src].append(i)

        self.num_ports = self.num_links + self.num_nodes
        self.port_router: List[int] = self.link_dst + list(range(self.num_nodes))
        self.in_ports: List[List[int]] = [
            self.in_links[r] + [self.injection_port(r)] for r in range(self.num_nodes)
        ]

        # Hop-distance matrix for minimal routing and misroute accounting.
        self.dist: List[List[int]] = topology.all_pairs_distances()

    def injection_port(self, router: int) -> int:
        """Port id of router *router*'s injection buffer."""
        return self.num_links + router

    def is_injection_port(self, port: int) -> bool:
        return port >= self.num_links

    def port_of_link(self, link: Link) -> int:
        """Port id of the input buffer fed by *link*."""
        return self.link_id[link]

    def __repr__(self) -> str:
        return (
            f"FabricIndex({self.topology.name}, links={self.num_links}, "
            f"ports={self.num_ports})"
        )
