"""Cycle-level network fabric: buffers, allocation, movement, NI queues.

This is the Garnet2.0 stand-in. The architectural contract matches
Table II of the paper:

- input-buffered VC routers, virtual cut-through, **one packet per VC**;
- credit-based flow control (a VC freed in cycle *t* is claimable from
  cycle *t+1*, because freeness is evaluated against start-of-cycle state);
- 1-cycle routers and 1-cycle links (a granted packet sits in the
  downstream VC at the start of the next cycle);
- per-router crossbar constraints: one grant per input port and one per
  output link per cycle; one ejection per router per cycle;
- per-message-class injection and ejection queues at every network
  interface (Section III-A's protocol assumptions);
- U-turns permitted (assumption 3).

Scheme-specific behaviour (escape-VC discipline, DRAIN escape rules) is
expressed through ``escape_mode``:

- ``None`` — all VCs equivalent (SPIN / NONE / IDEAL / UPDOWN);
- ``"drain"`` — VC 0 of each VN is the drained escape VC; fully adaptive
  routing everywhere; packets prefer non-escape VCs and fall back to the
  escape VC; once in an escape VC a packet stays in escape VCs;
- ``"escape_vc"`` — classic escape VC: non-escape VCs are fully adaptive,
  VC 0 follows a restricted deadlock-free routing function; escape entry
  is only possible along that restricted route and is sticky.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Optional, Tuple

from ..core.config import SimConfig
from ..core.metrics import NetworkStats
from ..router.packet import MessageClass, Packet
from ..routing.base import RoutingFunction
from .index import FabricIndex

__all__ = ["Fabric", "EJECT"]

#: Sentinel candidate meaning "eject at the local NI".
EJECT = -1

_NUM_CLASSES = len(MessageClass)


class Fabric:
    """The network state plus the per-cycle allocation/movement pipeline."""

    def __init__(
        self,
        index: FabricIndex,
        config: SimConfig,
        routing: RoutingFunction,
        escape_mode: Optional[str] = None,
        escape_routing: Optional[RoutingFunction] = None,
        stats: Optional[NetworkStats] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if escape_mode not in (None, "drain", "escape_vc"):
            raise ValueError(f"unknown escape mode {escape_mode!r}")
        if escape_mode == "escape_vc" and escape_routing is None:
            raise ValueError("escape_vc mode requires an escape routing function")
        self.index = index
        self.config = config
        self.net = config.network
        self.routing = routing
        self.escape_mode = escape_mode
        self.escape_routing = escape_routing
        self.stats = stats if stats is not None else NetworkStats()
        self.rng = rng if rng is not None else random.Random(config.seed)

        self.num_vns = self.net.num_vns
        self.vcs_per_vn = self.net.vcs_per_vn
        self.escape_sticky = config.drain.escape_sticky

        # buf[port][vn][vc] -> Optional[Packet]
        self.buf: List[List[List[Optional[Packet]]]] = [
            [[None] * self.vcs_per_vn for _ in range(self.num_vns)]
            for _ in range(index.num_ports)
        ]
        self.packets_in_network = 0

        # Network-interface queues, one per message class per node.
        depth_in = self.net.injection_queue_depth
        self.inj_queues: List[List[Deque[Packet]]] = [
            [deque() for _ in range(_NUM_CLASSES)] for _ in range(index.num_nodes)
        ]
        self.ej_queues: List[List[Deque[Packet]]] = [
            [deque() for _ in range(_NUM_CLASSES)] for _ in range(index.num_nodes)
        ]
        self._inj_depth = depth_in
        self._ej_depth = self.net.ejection_queue_depth

        #: Per-unidirectional-link traversal counters (utilisation probes).
        self.link_util: List[int] = [0] * index.num_links
        #: Multi-flit serialisation state (packet_size_flits > 1): a
        #: granted packet keeps its source slot, reserves its target slot
        #: and holds the link busy until the transfer completes.
        self.packet_size_flits = self.net.packet_size_flits
        self._link_busy_until: List[int] = [-1] * index.num_links
        self._in_flight: List[Tuple[int, int, int, int, int, int, int, Packet]] = []
        self._in_flight_sources = set()  # slots whose packet is mid-transfer
        self._reserved = set()  # target slots awaiting an arrival
        #: Input port currently being served by the allocation loop; lets
        #: flow-control subclasses (e.g. bubble flow control) apply
        #: source-dependent admission rules inside ``_pick_vc``.
        self._serving_port: int = -1
        self.frozen = False  # pre-drain / drain-window credit freeze
        self.cycle = 0
        self.measure_from = 0  # packets generated earlier are not recorded
        self.last_progress_cycle = 0
        self._lcg = (config.seed * 2654435761) & 0x7FFFFFFF
        self._inj_rr: List[int] = [0] * index.num_nodes

    # ------------------------------------------------------------------
    # NI-side API (used by traffic generators and protocol models)
    # ------------------------------------------------------------------
    def offer_packet(self, packet: Packet) -> bool:
        """Enqueue *packet* at its source NI; False when the queue is full.

        Under runtime faults, packets from a dead source or towards an
        unreachable/dead destination are swallowed (accepted then counted
        lost) instead of rejected: a False return would make open-loop
        traffic retry the same doomed packet forever and wedge the NI
        queue for routable traffic behind it.
        """
        index = self.index
        if index.dead_routers or index.dead_links:
            if (
                packet.src in index.dead_routers
                or packet.dst in index.dead_routers
                or index.dist[packet.src][packet.dst] < 0
            ):
                self.stats.packets_unroutable += 1
                return True
        queue = self.inj_queues[packet.src][packet.msg_class]
        if len(queue) >= self._inj_depth:
            return False
        queue.append(packet)
        return True

    def injection_space(self, node: int, msg_class: MessageClass) -> int:
        """Free slots in *node*'s injection queue for *msg_class*."""
        return self._inj_depth - len(self.inj_queues[node][msg_class])

    def peek_ejection(self, node: int, msg_class: MessageClass) -> Optional[Packet]:
        queue = self.ej_queues[node][msg_class]
        return queue[0] if queue else None

    def pop_ejection(self, node: int, msg_class: MessageClass) -> Packet:
        self.last_progress_cycle = self.cycle
        return self.ej_queues[node][msg_class].popleft()

    def ejection_space(self, node: int, msg_class: MessageClass) -> int:
        return self._ej_depth - len(self.ej_queues[node][msg_class])

    # ------------------------------------------------------------------
    # Candidate computation (shared by the allocator and the deadlock oracle)
    # ------------------------------------------------------------------
    def vn_of_class(self, msg_class: int) -> int:
        """Virtual network carrying *msg_class* (classes fold onto VNs)."""
        return msg_class % self.num_vns

    def candidate_links(
        self, router: int, packet: Packet
    ) -> List[List[Tuple[int, int]]]:
        """Output candidates for *packet* at *router*, in priority groups.

        Each group is a list of ``(link, vc_mode)`` pairs; the allocator
        exhausts a group (in randomised order) before trying the next, so
        groups encode strict preferences. ``vc_mode`` selects which
        downstream VCs may be claimed: 0 = any VC, 2 = escape VC only,
        3 = non-escape VCs only.

        - DRAIN: strictly prefer non-escape VCs on any productive output;
          fall back to the escape VC only when no non-escape VC is
          claimable (entering escape is free of routing restrictions but —
          with ``escape_sticky`` — commits the packet to escape VCs).
        - Escape-VC baseline: adaptive (non-escape) and restricted-route
          escape candidates compete in a single group, modelling the usual
          round-robin VC selection; escape entry is always sticky.
        """
        mode = self.escape_mode
        if mode is None:
            return [[(link, 0)
                     for link in self.routing.candidates(router, packet)]]
        if mode == "drain":
            links = self.routing.candidates(router, packet)
            if packet.in_escape:
                return [[(link, 2) for link in links]]
            if self.vcs_per_vn == 1:
                # Degenerate config: the only VC is the escape VC.
                return [[(link, 2) for link in links]]
            return [[(link, 3) for link in links],
                    [(link, 2) for link in links]]
        # escape_vc
        if packet.in_escape:
            return [
                [(link, 2)
                 for link in self.escape_routing.candidates(router, packet)]
            ]
        cands = [(link, 4)
                 for link in self.routing.candidates(router, packet)]
        if self.vcs_per_vn == 1:
            # Degenerate config: the only VC is the escape VC.
            cands = []
        for link in self.escape_routing.candidates(router, packet):
            cands.append((link, 2))
        return [cands]

    def _pick_vc(self, port: int, vn: int, vc_mode: int, claimed) -> int:
        """Free claimable VC index at *port*/*vn* honouring *vc_mode*; -1 if none."""
        row = self.buf[port][vn]
        vcs = self.vcs_per_vn
        if vc_mode == 0:
            order = range(vcs)
        elif vc_mode == 2:  # escape only
            order = (0,)
        elif vc_mode == 4:  # non-escape, conservative allocation
            # Duato-style conservative criterion for adaptive VCs [11]: only
            # claim an adaptive VC while the port retains another free VC,
            # so the escape path can never be starved of buffer space.
            free = sum(
                1
                for vc in range(vcs)
                if row[vc] is None and (port, vn, vc) not in claimed
            )
            if free < 2:
                return -1
            order = range(1, vcs)
        else:  # non-escape only
            order = range(1, vcs)
        reserved = self._reserved
        for vc in order:
            if (
                row[vc] is None
                and (port, vn, vc) not in claimed
                and (port, vn, vc) not in reserved
            ):
                return vc
        return -1

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def inject_stage(self) -> None:
        """Move packets from NI injection queues into injection-port VCs.

        One VC allocation per virtual network per node per cycle. Frozen
        during pre-drain/drain windows (no new VC allocations).
        """
        if self.frozen:
            return
        buf = self.buf
        index = self.index
        stats = self.stats
        dead_routers = index.dead_routers
        for node in range(index.num_nodes):
            if dead_routers and node in dead_routers:
                continue
            queues = self.inj_queues[node]
            port = index.num_links + node
            # Rotate class service order for fairness between classes that
            # share a VN.
            rr = self._inj_rr[node]
            self._inj_rr[node] = (rr + 1) % _NUM_CLASSES
            granted_vns = 0
            for off in range(_NUM_CLASSES):
                cls = (rr + off) % _NUM_CLASSES
                queue = queues[cls]
                if not queue:
                    continue
                vn = cls % self.num_vns
                row = buf[port][vn]
                vc = next((i for i, slot in enumerate(row) if slot is None), -1)
                if vc < 0:
                    continue
                packet = queue.popleft()
                packet.vn = vn
                packet.net_entry_cycle = self.cycle
                packet.blocked_since = self.cycle
                self.routing.on_inject(packet)
                row[vc] = packet
                self.packets_in_network += 1
                stats.packets_injected += 1
                stats.buffer_writes += 1
                self.last_progress_cycle = self.cycle
                granted_vns += 1
                if granted_vns >= self.num_vns:
                    break

    def _complete_transfers(self) -> None:
        """Land multi-flit transfers whose serialisation has finished."""
        if not self._in_flight:
            return
        cycle = self.cycle
        remaining = []
        for entry in self._in_flight:
            done, sp, svn, svc, link, tvn, tvc, packet = entry
            if done > cycle:
                remaining.append(entry)
                continue
            self.buf[sp][svn][svc] = None
            self._in_flight_sources.discard((sp, svn, svc))
            self._reserved.discard((link, tvn, tvc))
            self.buf[link][tvn][tvc] = packet
            self._account_move(sp, svn, link, tvn, tvc, packet)
        self._in_flight = remaining

    def movement_stage(self) -> None:
        """Switch allocation + traversal: the per-cycle router pipeline."""
        self._complete_transfers()
        if self.frozen:
            return
        index = self.index
        buf = self.buf
        num_vns = self.num_vns
        vcs = self.vcs_per_vn
        cycle = self.cycle

        moves: List[Tuple[int, int, int, int, int, int, Packet]] = []
        ejects: List[Tuple[int, int, int, Packet]] = []
        link_used = bytearray(index.num_links)
        claimed = set()
        eject_budget = [self.net.ejections_per_cycle] * index.num_nodes
        eject_pending = [[0] * _NUM_CLASSES for _ in range(index.num_nodes)]

        lcg = self._lcg
        dead_links = index.dead_links
        dead_routers = index.dead_routers
        for router in range(index.num_nodes):
            if dead_routers and router in dead_routers:
                continue  # dead router: buffers were emptied at fault time
            ports = index.in_ports[router]
            nports = len(ports)
            port_start = (cycle + router) % nports
            for pi in range(nports):
                port = ports[(port_start + pi) % nports]
                self._serving_port = port  # hook for flow-control subclasses
                rows = buf[port]
                granted = False
                for vn_off in range(num_vns):
                    vn = (cycle + vn_off) % num_vns
                    row = rows[vn]
                    for vc_off in range(vcs):
                        vc = (cycle + port + vc_off) % vcs
                        packet = row[vc]
                        if packet is None:
                            continue
                        if (
                            self._in_flight_sources
                            and (port, vn, vc) in self._in_flight_sources
                        ):
                            continue  # mid-transfer on its link
                        if packet.dst == router:
                            cls = packet.msg_class
                            if (
                                eject_budget[router] > 0
                                and len(self.ej_queues[router][cls])
                                + eject_pending[router][cls]
                                < self._ej_depth
                            ):
                                ejects.append((port, vn, vc, packet))
                                eject_budget[router] -= 1
                                eject_pending[router][cls] += 1
                                granted = True
                        else:
                            for group in self.candidate_links(router, packet):
                                ncands = len(group)
                                if not ncands:
                                    continue
                                lcg = (lcg * 1103515245 + 12345) & 0x7FFFFFFF
                                start = lcg % ncands
                                for ci in range(ncands):
                                    link, vc_mode = group[(start + ci) % ncands]
                                    if (
                                        link_used[link]
                                        or self._link_busy_until[link] >= cycle
                                        or (dead_links and link in dead_links)
                                    ):
                                        continue
                                    tvc = self._pick_vc(link, vn, vc_mode, claimed)
                                    if tvc < 0:
                                        continue
                                    if self.packet_size_flits > 1:
                                        # Serialised transfer: hold the link,
                                        # keep the source, reserve the target.
                                        done = cycle + self.packet_size_flits - 1
                                        self._link_busy_until[link] = done
                                        self._in_flight.append(
                                            (done, port, vn, vc, link, vn,
                                             tvc, packet)
                                        )
                                        self._in_flight_sources.add(
                                            (port, vn, vc)
                                        )
                                        self._reserved.add((link, vn, tvc))
                                    else:
                                        moves.append(
                                            (port, vn, vc, link, vn, tvc, packet)
                                        )
                                        claimed.add((link, vn, tvc))
                                    link_used[link] = 1
                                    granted = True
                                    break
                                if granted:
                                    break
                        if granted:
                            break
                    if granted:
                        break
                # one grant per input port per cycle (crossbar input constraint)
        self._lcg = lcg
        self._apply_moves(moves, ejects)

    def _apply_moves(
        self,
        moves: List[Tuple[int, int, int, int, int, int, Packet]],
        ejects: List[Tuple[int, int, int, Packet]],
    ) -> None:
        buf = self.buf
        index = self.index
        stats = self.stats
        cycle = self.cycle
        if moves or ejects:
            self.last_progress_cycle = cycle
        for port, vn, vc, _t1, _t2, _t3, _pkt in moves:
            buf[port][vn][vc] = None
        for port, vn, vc, _pkt in ejects:
            buf[port][vn][vc] = None
        for src_port, vn, _vc, link, tvn, tvc, packet in moves:
            buf[link][tvn][tvc] = packet
            self._account_move(src_port, vn, link, tvn, tvc, packet)
        for port, _vn, _vc, packet in ejects:
            router = index.port_router[port]
            self._eject(router, packet)
            stats.buffer_reads += 1
            stats.xbar_traversals += 1

    def _account_move(self, src_port: int, vn: int, link: int, tvn: int,
                      tvc: int, packet: Packet) -> None:
        """Per-traversal bookkeeping shared by 1-cycle and serialised moves."""
        stats = self.stats
        index = self.index
        packet.hops += 1
        packet.blocked_since = self.cycle
        old_router = index.port_router[src_port]
        new_router = index.link_dst[link]
        if index.dist[new_router][packet.dst] > index.dist[old_router][packet.dst]:
            packet.misroutes += 1
            stats.misroutes += 1
        self._route_state_update(packet, link, tvc)
        stats.flits_traversed += self.packet_size_flits
        stats.vn_hops[tvn] = stats.vn_hops.get(tvn, 0) + 1
        self.link_util[link] += 1
        stats.buffer_reads += 1
        stats.buffer_writes += 1
        stats.xbar_traversals += 1
        self.last_progress_cycle = self.cycle

    def _route_state_update(self, packet: Packet, link: int, tvc: int) -> None:
        """Latch escape/phase state after *packet* traverses *link* into VC *tvc*."""
        sticky = self.escape_mode == "escape_vc" or self.escape_sticky
        if self.escape_mode is not None and tvc == 0 and not packet.in_escape and sticky:
            packet.in_escape = True
            if self.escape_mode == "escape_vc":
                self.escape_routing.on_inject(packet)
        if packet.in_escape and self.escape_mode == "escape_vc":
            self.escape_routing.on_hop(packet, link)
        else:
            self.routing.on_hop(packet, link)

    def _eject(self, router: int, packet: Packet) -> None:
        """Deliver *packet* into the per-class ejection queue at *router*."""
        packet.eject_cycle = self.cycle
        self.ej_queues[router][packet.msg_class].append(packet)
        self.packets_in_network -= 1
        stats = self.stats
        stats.packets_ejected += 1
        if self.cycle >= self.measure_from:
            stats.packets_ejected_measured += 1
        if packet.gen_cycle >= self.measure_from:
            stats.latency.add(packet.latency)
            if packet.net_entry_cycle is not None:
                stats.network_latency.add(packet.network_latency)
            stats.hops.add(packet.hops)

    def step(self) -> None:
        """Advance the fabric by one cycle.

        Movement runs before injection so that a packet written into a VC
        (by injection or by a move) earliest departs in the *next* cycle —
        the 1-cycle router latency of Table II.
        """
        self.movement_stage()
        self.inject_stage()
        self.cycle += 1
        self.stats.cycles += 1

    # ------------------------------------------------------------------
    # Draining (called by DrainController during drain windows)
    # ------------------------------------------------------------------
    def drain_rotate_escape(self, path_ports: List[int]) -> None:
        """Rotate all escape-VC packets one hop along the drain path.

        ``path_ports`` is the drain path as input-port (link) ids in cycle
        order; position ``i`` feeds position ``i+1``. The rotation is a
        permutation of buffer contents — every slot's new content comes
        from its predecessor — so it never requires a free buffer. After
        the rotation, packets that arrived at their destination router
        eject immediately if their per-class ejection queue has space.
        """
        buf = self.buf
        index = self.index
        stats = self.stats
        dist = index.dist
        n = len(path_ports)
        cycle = self.cycle
        for vn in range(self.num_vns):
            packets = [buf[p][vn][0] for p in path_ports]
            moved = 0
            for i in range(n):
                packet = packets[i]
                tgt = path_ports[(i + 1) % n]
                buf[tgt][vn][0] = packet
                if packet is None:
                    continue
                moved += 1
                packet.hops += 1
                packet.drain_moves += 1
                packet.blocked_since = cycle
                old_router = index.link_dst[path_ports[i]]
                new_router = index.link_dst[tgt]
                if dist[new_router][packet.dst] > dist[old_router][packet.dst]:
                    packet.misroutes += 1
                    stats.misroutes += 1
                stats.flits_traversed += 1
                stats.buffer_reads += 1
                stats.buffer_writes += 1
                stats.xbar_traversals += 1
            if moved:
                stats.drained_packets += moved
                self.last_progress_cycle = cycle
            for p in path_ports:
                packet = buf[p][vn][0]
                if packet is None:
                    continue
                router = index.link_dst[p]
                if packet.dst != router:
                    continue
                if self.ejection_space(router, packet.msg_class) > 0:
                    buf[p][vn][0] = None
                    self._eject(router, packet)
                    stats.buffer_reads += 1

    # ------------------------------------------------------------------
    # Introspection helpers (oracle, controllers, tests)
    # ------------------------------------------------------------------
    def occupied_slots(self) -> List[Tuple[int, int, int, Packet]]:
        """All occupied buffer slots as (port, vn, vc, packet) tuples."""
        out = []
        buf = self.buf
        for port in range(self.index.num_ports):
            rows = buf[port]
            for vn in range(self.num_vns):
                row = rows[vn]
                for vc in range(self.vcs_per_vn):
                    packet = row[vc]
                    if packet is not None:
                        out.append((port, vn, vc, packet))
        return out

    def count_packets(self) -> int:
        """Packets currently buffered in the network (invariant check)."""
        return sum(1 for _ in self.occupied_slots())

    def transfers_in_flight(self) -> int:
        """Serialised link transfers still completing (multi-flit packets).

        The drain controller refuses to open a drain window while this is
        non-zero — the runtime embodiment of the paper's rule that the
        pre-drain window is sized by the maximum packet size.
        """
        return len(self._in_flight)

    def link_utilization(self) -> List[float]:
        """Per-link traversal rate (flits per cycle) over the run so far."""
        if self.cycle == 0:
            return [0.0] * self.index.num_links
        return [count / self.cycle for count in self.link_util]

    def router_load(self) -> dict:
        """Per-router incoming traffic (flits/cycle), for heat rendering."""
        load = {n: 0.0 for n in range(self.index.num_nodes)}
        for link, rate in enumerate(self.link_utilization()):
            load[self.index.link_dst[link]] += rate
        return load

    # ------------------------------------------------------------------
    # Runtime fault primitives (called by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def fault_cancel_transfers(
        self, dead_link_ids: set, drop: bool
    ) -> List[Packet]:
        """Resolve serialised transfers caught mid-wire on dying links.

        With ``drop`` the packet is lost (its flits were on the dead wire);
        without it the transfer is cancelled and the packet stays in its
        source slot — it never released that buffer — ready to reroute.
        Returns the dropped packets so the caller can account/retransmit.
        """
        dropped: List[Packet] = []
        if not self._in_flight:
            for link in dead_link_ids:
                self._link_busy_until[link] = -1
            return dropped
        remaining = []
        for entry in self._in_flight:
            done, sp, svn, svc, link, tvn, tvc, packet = entry
            if link not in dead_link_ids:
                remaining.append(entry)
                continue
            self._in_flight_sources.discard((sp, svn, svc))
            self._reserved.discard((link, tvn, tvc))
            if drop:
                self.buf[sp][svn][svc] = None
                self.packets_in_network -= 1
                dropped.append(packet)
        self._in_flight = remaining
        for link in dead_link_ids:
            self._link_busy_until[link] = -1
        return dropped

    def fault_drop_slot(self, port: int, vn: int, vc: int) -> Packet:
        """Vaporise the packet in one buffer slot (fault semantics)."""
        packet = self.buf[port][vn][vc]
        if packet is None:
            raise ValueError(f"no packet at slot {(port, vn, vc)}")
        self.buf[port][vn][vc] = None
        self.packets_in_network -= 1
        self._in_flight_sources.discard((port, vn, vc))
        return packet

    def fault_kill_router(self, router: int) -> List[Packet]:
        """Drop everything resident at a dying router; return the packets.

        Covers the router's input-port VCs (including its injection port)
        and both NI queue sets. Serialised transfers on the router's
        incident links must already have been resolved via
        :meth:`fault_cancel_transfers` (their links die with the router).
        """
        dropped: List[Packet] = []
        for port in self.index.in_ports[router]:
            rows = self.buf[port]
            for vn in range(self.num_vns):
                row = rows[vn]
                for vc in range(self.vcs_per_vn):
                    if row[vc] is not None:
                        dropped.append(self.fault_drop_slot(port, vn, vc))
        for queue_set in (self.inj_queues[router], self.ej_queues[router]):
            for queue in queue_set:
                while queue:
                    dropped.append(queue.popleft())
        return dropped

    def fault_drop_unroutable(self) -> List[Packet]:
        """Drop buffered/queued packets with no surviving route; return them.

        A packet is unroutable when its destination died or the fault
        disconnected it from the packet's current router. Run after
        :meth:`FabricIndex.apply_faults` so the distance matrix is current.
        """
        index = self.index
        dead_routers = index.dead_routers
        dist = index.dist
        dropped: List[Packet] = []
        for port, vn, vc, packet in self.occupied_slots():
            here = index.port_router[port]
            if here in dead_routers:
                continue  # handled by fault_kill_router
            if packet.dst in dead_routers or dist[here][packet.dst] < 0:
                dropped.append(self.fault_drop_slot(port, vn, vc))
        for node in range(index.num_nodes):
            if node in dead_routers:
                continue
            for queue in self.inj_queues[node]:
                keep = []
                for p in queue:
                    if p.dst not in dead_routers and dist[node][p.dst] >= 0:
                        keep.append(p)
                    else:
                        dropped.append(p)
                if len(keep) != len(queue):
                    queue.clear()
                    queue.extend(keep)
        return dropped

    def force_move(self, src: Tuple[int, int, int], dst: Tuple[int, int, int]) -> None:
        """Teleport a packet between slots (drain/spin rotation primitive).

        The destination slot must be free. Hop/misroute accounting is the
        caller's responsibility since forced moves have scheme-specific
        semantics.
        """
        sp, svn, svc = src
        dp, dvn, dvc = dst
        packet = self.buf[sp][svn][svc]
        if packet is None:
            raise ValueError(f"no packet at slot {src}")
        if self.buf[dp][dvn][dvc] is not None:
            raise ValueError(f"slot {dst} is occupied")
        self.buf[sp][svn][svc] = None
        self.buf[dp][dvn][dvc] = packet
