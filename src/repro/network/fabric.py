"""Cycle-level network fabric: buffers, allocation, movement, NI queues.

This is the Garnet2.0 stand-in. The architectural contract matches
Table II of the paper:

- input-buffered VC routers, virtual cut-through, **one packet per VC**;
- credit-based flow control (a VC freed in cycle *t* is claimable from
  cycle *t+1*, because freeness is evaluated against start-of-cycle state);
- 1-cycle routers and 1-cycle links (a granted packet sits in the
  downstream VC at the start of the next cycle);
- per-router crossbar constraints: one grant per input port and one per
  output link per cycle; one ejection per router per cycle;
- per-message-class injection and ejection queues at every network
  interface (Section III-A's protocol assumptions);
- U-turns permitted (assumption 3).

Scheme-specific behaviour (escape-VC discipline, DRAIN escape rules) is
expressed through ``escape_mode``:

- ``None`` — all VCs equivalent (SPIN / NONE / IDEAL / UPDOWN);
- ``"drain"`` — VC 0 of each VN is the drained escape VC; fully adaptive
  routing everywhere; packets prefer non-escape VCs and fall back to the
  escape VC; once in an escape VC a packet stays in escape VCs;
- ``"escape_vc"`` — classic escape VC: non-escape VCs are fully adaptive,
  VC 0 follows a restricted deadlock-free routing function; escape entry
  is only possible along that restricted route and is sticky.

Performance architecture (see DESIGN.md, "Performance architecture"):

- VC buffers live in one preallocated flat list indexed by precomputed
  strides (``port * port_stride + vn * vcs_per_vn + vc``); the legacy
  nested ``fabric.buf[port][vn][vc]`` interface is preserved as a view
  whose writes route through :meth:`_slot_set` so occupancy stays exact;
- per-port and per-router occupancy counters plus per-node NI pending
  counters form the *active set*: the movement, injection and deadlock
  scans skip routers/ports/nodes with no live state, in the exact same
  deterministic iteration order as a dense sweep (the skipped work had no
  side effects, so outputs are bit-identical);
- candidate-link priority groups are memoized per (router, destination,
  escape flag, routing state) into immutable tuples and invalidated on
  fault reconfiguration (``FabricIndex.fault_epoch``) or explicit
  :meth:`invalidate_routing_cache` calls;
- ``dense=True`` retains the pre-optimization reference sweep (no skip
  checks, no memoization) for the parity test suite;
- the :attr:`quiescent` predicate folds the occupancy counters into a
  single "nothing in the network, nothing pending at any NI" test, and
  :meth:`skip_cycles` fast-forwards a quiescent fabric across *n* cycles
  by advancing only the state a dense idle cycle would mutate (cycle
  counter, stats cycle counter, the injection-fairness rotation). The
  event-horizon engine in ``Simulation.run`` is the only caller.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterator, List, Optional, Tuple

from ..core.config import SimConfig
from ..core.metrics import NetworkStats
from ..router.packet import MessageClass, Packet
from ..routing.base import RoutingFunction
from .index import FabricIndex
from .vectorized import VectorizedEngine

__all__ = ["Fabric", "EJECT"]

#: Sentinel candidate meaning "eject at the local NI".
EJECT = -1

_NUM_CLASSES = len(MessageClass)


class _VcRow:
    """Nested-compat view of one (port, vn) VC row over the flat buffer."""

    __slots__ = ("_fabric", "_port", "_vn")

    def __init__(self, fabric: "Fabric", port: int, vn: int) -> None:
        self._fabric = fabric
        self._port = port
        self._vn = vn

    def _norm(self, vc: int) -> int:
        vcs = self._fabric.vcs_per_vn
        if vc < 0:
            vc += vcs
        if not 0 <= vc < vcs:
            raise IndexError("VC index out of range")
        return vc

    def __getitem__(self, vc: int) -> Optional[Packet]:
        return self._fabric._slot_get(self._port, self._vn, self._norm(vc))

    def __setitem__(self, vc: int, packet: Optional[Packet]) -> None:
        self._fabric._slot_set(self._port, self._vn, self._norm(vc), packet)

    def __len__(self) -> int:
        return self._fabric.vcs_per_vn

    def __iter__(self) -> Iterator[Optional[Packet]]:
        for vc in range(self._fabric.vcs_per_vn):
            yield self._fabric._slot_get(self._port, self._vn, vc)


class _PortRow:
    """Nested-compat view of one port's VN rows."""

    __slots__ = ("_fabric", "_port")

    def __init__(self, fabric: "Fabric", port: int) -> None:
        self._fabric = fabric
        self._port = port

    def __getitem__(self, vn: int) -> _VcRow:
        num_vns = self._fabric.num_vns
        if vn < 0:
            vn += num_vns
        if not 0 <= vn < num_vns:
            raise IndexError("VN index out of range")
        return _VcRow(self._fabric, self._port, vn)

    def __len__(self) -> int:
        return self._fabric.num_vns

    def __iter__(self) -> Iterator[_VcRow]:
        for vn in range(self._fabric.num_vns):
            yield _VcRow(self._fabric, self._port, vn)


class _BufView:
    """Read/write view emulating the legacy ``buf[port][vn][vc]`` nesting."""

    __slots__ = ("_fabric",)

    def __init__(self, fabric: "Fabric") -> None:
        self._fabric = fabric

    def __getitem__(self, port: int) -> _PortRow:
        num_ports = self._fabric.index.num_ports
        if port < 0:
            port += num_ports
        if not 0 <= port < num_ports:
            raise IndexError("port index out of range")
        return _PortRow(self._fabric, port)

    def __len__(self) -> int:
        return self._fabric.index.num_ports

    def __iter__(self) -> Iterator[_PortRow]:
        for port in range(self._fabric.index.num_ports):
            yield _PortRow(self._fabric, port)


class Fabric:
    """The network state plus the per-cycle allocation/movement pipeline."""

    def __init__(
        self,
        index: FabricIndex,
        config: SimConfig,
        routing: RoutingFunction,
        escape_mode: Optional[str] = None,
        escape_routing: Optional[RoutingFunction] = None,
        stats: Optional[NetworkStats] = None,
        rng: Optional[random.Random] = None,
        dense: bool = False,
        engine: Optional[str] = None,
    ) -> None:
        if escape_mode not in (None, "drain", "escape_vc"):
            raise ValueError(f"unknown escape mode {escape_mode!r}")
        if engine is None:
            engine = config.engine
        if engine not in ("auto", "scalar", "vectorized"):
            raise ValueError(f"unknown engine {engine!r}")
        if escape_mode == "escape_vc" and escape_routing is None:
            raise ValueError("escape_vc mode requires an escape routing function")
        self.index = index
        self.config = config
        self.net = config.network
        self.routing = routing
        self.escape_mode = escape_mode
        self.escape_routing = escape_routing
        self.stats = stats if stats is not None else NetworkStats()
        self.rng = rng if rng is not None else random.Random(config.seed)
        #: Reference mode: dense sweeps, no memoization (parity baseline).
        self.dense = bool(dense)

        self.num_vns = self.net.num_vns
        self.vcs_per_vn = self.net.vcs_per_vn
        self.escape_sticky = config.drain.escape_sticky

        #: Vectorized-engine hook state. ``_engine_avail`` must exist before
        #: the first buffer write: ``_slot_set`` mirrors every write into
        #: the engine's availability masks once an engine is installed.
        self._engine = None
        self._engine_avail: Optional[bytearray] = None

        #: Flat VC storage: slot (port, vn, vc) lives at
        #: ``port * _port_stride + vn * vcs_per_vn + vc``.
        self._port_stride = self.num_vns * self.vcs_per_vn
        self._buf: List[Optional[Packet]] = (
            [None] * (index.num_ports * self._port_stride)
        )
        #: Active-set occupancy counters, maintained by every buffer write.
        self._port_occ: List[int] = [0] * index.num_ports
        self._router_occ: List[int] = [0] * index.num_nodes
        self.packets_in_network = 0

        # Network-interface queues, one per message class per node.
        depth_in = self.net.injection_queue_depth
        self.inj_queues: List[List[Deque[Packet]]] = [
            [deque() for _ in range(_NUM_CLASSES)] for _ in range(index.num_nodes)
        ]
        self.ej_queues: List[List[Deque[Packet]]] = [
            [deque() for _ in range(_NUM_CLASSES)] for _ in range(index.num_nodes)
        ]
        self._inj_depth = depth_in
        self._ej_depth = self.net.ejection_queue_depth
        #: Queued injection-side packets per node (active-set hint; packets
        #: enqueued through :meth:`offer_packet` keep it exact), plus the
        #: network-wide total backing the :attr:`quiescent` predicate.
        self._inj_pending: List[int] = [0] * index.num_nodes
        self._inj_total = 0
        #: Ejection-queue occupancy per node plus the network-wide total
        #: (lets traffic sinks skip nodes with nothing to consume).
        self.ej_pending: List[int] = [0] * index.num_nodes
        self.ej_pending_total = 0

        #: Per-unidirectional-link traversal counters (utilisation probes).
        self.link_util: List[int] = [0] * index.num_links
        #: Multi-flit serialisation state (packet_size_flits > 1): a
        #: granted packet keeps its source slot, reserves its target slot
        #: and holds the link busy until the transfer completes.
        self.packet_size_flits = self.net.packet_size_flits
        self._link_busy_until: List[int] = [-1] * index.num_links
        self._in_flight: List[Tuple[int, int, int, int, int, int, int, Packet]] = []
        self._in_flight_sources = set()  # slots whose packet is mid-transfer
        self._reserved = set()  # target slots awaiting an arrival
        #: Input port currently being served by the allocation loop; lets
        #: flow-control subclasses (e.g. bubble flow control) apply
        #: source-dependent admission rules inside ``_pick_vc``.
        self._serving_port: int = -1
        self.frozen = False  # pre-drain / drain-window credit freeze
        self.cycle = 0
        self.measure_from = 0  # packets generated earlier are not recorded
        self.last_progress_cycle = 0
        self._lcg = (config.seed * 2654435761) & 0x7FFFFFFF
        #: Class-rotation counter for NI injection fairness. One shared
        #: counter: the legacy per-node counters advanced in lockstep (one
        #: bump per node per non-frozen cycle), so a single counter yields
        #: the identical service order.
        self._inj_rr: int = 0

        #: VC-order scratch: immutable, precomputed once, shared by every
        #: ``_pick_vc`` call (no per-call range/tuple churn, and — being
        #: tuples — no way to leak allocation state across trials).
        self._vc_order_all: Tuple[int, ...] = tuple(range(self.vcs_per_vn))
        self._vc_order_escape: Tuple[int, ...] = (0,)
        self._vc_order_adaptive: Tuple[int, ...] = tuple(range(1, self.vcs_per_vn))

        #: Candidate-group memo: (router, dst, in_escape[, routing state])
        #: -> tuple of priority groups. Invalidated when the index's fault
        #: epoch moves or via :meth:`invalidate_routing_cache`.
        self._cand_cache: dict = {}
        self._cand_epoch: int = index.fault_epoch
        self._stateful_fns: Tuple[RoutingFunction, ...] = tuple(
            fn for fn in (routing, escape_routing)
            if fn is not None and fn.stateful
        )

        # Engine selection (see DESIGN.md, "Vectorized kernel"): dense is
        # the reference sweep and always wins; otherwise "auto" and
        # "vectorized" install the batched kernel when its support
        # conditions hold, and fall back to the scalar path — silently,
        # with the reason recorded — when they don't.
        #: Resolved engine: "dense", "scalar" or "vectorized".
        self.engine_name: str = "dense" if self.dense else "scalar"
        #: Why a requested/auto vectorized engine was not installed.
        self.engine_fallback_reason: Optional[str] = None
        if not self.dense and engine != "scalar":
            reason = self._engine_structural_reason()
            if reason is None:
                reason = VectorizedEngine.unsupported_reason(self)
            if reason is None:
                self._engine = VectorizedEngine(self)
                self._engine_avail = self._engine.avail
                self.engine_name = "vectorized"
            else:
                self.engine_fallback_reason = reason

    def _engine_structural_reason(self) -> Optional[str]:
        """Fabric-level conditions the vectorized engine cannot handle."""
        if type(self) is not Fabric:
            return f"flow-control subclass ({type(self).__name__})"
        if self.packet_size_flits != 1:
            return "multi-flit packets (serialised link transfers)"
        if self.vcs_per_vn != 2:
            return (f"vcs_per_vn={self.vcs_per_vn} "
                    "(the kernel is specialised for 2 VCs per VN)")
        return None

    # ------------------------------------------------------------------
    # Flat-buffer slot primitives (the only legal buffer mutators)
    # ------------------------------------------------------------------
    @property
    def buf(self) -> _BufView:
        """Nested ``buf[port][vn][vc]`` view over the flat VC storage.

        Reads are plain lookups; writes route through :meth:`_slot_set` so
        the active-set occupancy counters stay exact even for external
        writers (controllers, scenario builders, tests).
        """
        return _BufView(self)

    def _slot_get(self, port: int, vn: int, vc: int) -> Optional[Packet]:
        return self._buf[port * self._port_stride + vn * self.vcs_per_vn + vc]

    def _slot_set(self, port: int, vn: int, vc: int,
                  packet: Optional[Packet]) -> None:
        """Write one VC slot, keeping the occupancy counters exact."""
        idx = port * self._port_stride + vn * self.vcs_per_vn + vc
        old = self._buf[idx]
        self._buf[idx] = packet
        if old is None:
            if packet is not None:
                self._port_occ[port] += 1
                self._router_occ[self.index.port_router[port]] += 1
        elif packet is None:
            self._port_occ[port] -= 1
            self._router_occ[self.index.port_router[port]] -= 1
        av = self._engine_avail
        if av is not None:
            ai = port * self.num_vns + vn
            if packet is None:
                av[ai] |= 1 << vc
            else:
                av[ai] &= ~(1 << vc) & 0xFF

    # ------------------------------------------------------------------
    # NI-side API (used by traffic generators and protocol models)
    # ------------------------------------------------------------------
    def offer_packet(self, packet: Packet) -> bool:
        """Enqueue *packet* at its source NI; False when the queue is full.

        Under runtime faults, packets from a dead source or towards an
        unreachable/dead destination are swallowed (accepted then counted
        lost) instead of rejected: a False return would make open-loop
        traffic retry the same doomed packet forever and wedge the NI
        queue for routable traffic behind it.
        """
        index = self.index
        if index.dead_routers or index.dead_links:
            if (
                packet.src in index.dead_routers
                or packet.dst in index.dead_routers
                or index.dist[packet.src][packet.dst] < 0
            ):
                self.stats.packets_unroutable += 1
                return True
        queue = self.inj_queues[packet.src][packet.msg_class]
        if len(queue) >= self._inj_depth:
            return False
        queue.append(packet)
        self._inj_pending[packet.src] += 1
        self._inj_total += 1
        return True

    def injection_space(self, node: int, msg_class: MessageClass) -> int:
        """Free slots in *node*'s injection queue for *msg_class*."""
        return self._inj_depth - len(self.inj_queues[node][msg_class])

    def peek_ejection(self, node: int, msg_class: MessageClass) -> Optional[Packet]:
        queue = self.ej_queues[node][msg_class]
        return queue[0] if queue else None

    def pop_ejection(self, node: int, msg_class: int) -> Packet:
        """Dequeue the head packet of *node*'s per-class ejection queue.

        ``msg_class`` may be a :class:`MessageClass` or its plain integer
        value (hot consumers pass the int straight from an index loop).
        """
        self.last_progress_cycle = self.cycle
        packet = self.ej_queues[node][msg_class].popleft()
        self.ej_pending[node] -= 1
        self.ej_pending_total -= 1
        return packet

    def ejection_space(self, node: int, msg_class: MessageClass) -> int:
        return self._ej_depth - len(self.ej_queues[node][msg_class])

    # ------------------------------------------------------------------
    # Candidate computation (shared by the allocator and the deadlock oracle)
    # ------------------------------------------------------------------
    def vn_of_class(self, msg_class: int) -> int:
        """Virtual network carrying *msg_class* (classes fold onto VNs)."""
        return msg_class % self.num_vns

    def invalidate_routing_cache(self) -> None:
        """Drop memoized candidate groups (fault recovery / path reinstall).

        Must be called whenever a routing function's tables change outside
        of :meth:`FabricIndex.apply_faults` (whose fault-epoch bump is
        detected automatically).
        """
        self._cand_cache.clear()
        self._cand_epoch = self.index.fault_epoch
        if self._engine is not None:
            self._engine.invalidate()

    def candidate_links(
        self, router: int, packet: Packet
    ) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Output candidates for *packet* at *router*, in priority groups.

        Each group is a tuple of ``(link, vc_mode)`` pairs; the allocator
        exhausts a group (in randomised order) before trying the next, so
        groups encode strict preferences. ``vc_mode`` selects which
        downstream VCs may be claimed: 0 = any VC, 2 = escape VC only,
        3 = non-escape VCs only.

        - DRAIN: strictly prefer non-escape VCs on any productive output;
          fall back to the escape VC only when no non-escape VC is
          claimable (entering escape is free of routing restrictions but —
          with ``escape_sticky`` — commits the packet to escape VCs).
        - Escape-VC baseline: adaptive (non-escape) and restricted-route
          escape candidates compete in a single group, modelling the usual
          round-robin VC selection; escape entry is always sticky.

        Results are memoized per (router, destination, escape flag) — plus
        the per-packet routing state reported by
        :meth:`RoutingFunction.cache_key` for stateful functions — until
        the index's fault epoch moves or the cache is invalidated.
        """
        if self.dense:
            return self._build_candidate_groups(router, packet)
        if self._cand_epoch != self.index.fault_epoch:
            self._cand_cache.clear()
            self._cand_epoch = self.index.fault_epoch
        if self._stateful_fns:
            key = (router, packet.dst, packet.in_escape,
                   tuple(fn.cache_key(packet) for fn in self._stateful_fns))
        else:
            key = (router, packet.dst, packet.in_escape)
        cache = self._cand_cache
        groups = cache.get(key)
        if groups is None:
            groups = self._build_candidate_groups(router, packet)
            cache[key] = groups
        return groups

    def _build_candidate_groups(
        self, router: int, packet: Packet
    ) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Uncached candidate-group construction (memoized by the caller)."""
        mode = self.escape_mode
        if mode is None:
            return (tuple((link, 0)
                          for link in self.routing.candidates(router, packet)),)
        if mode == "drain":
            links = self.routing.candidates(router, packet)
            if packet.in_escape:
                return (tuple((link, 2) for link in links),)
            if self.vcs_per_vn == 1:
                # Degenerate config: the only VC is the escape VC.
                return (tuple((link, 2) for link in links),)
            return (tuple((link, 3) for link in links),
                    tuple((link, 2) for link in links))
        # escape_vc
        if packet.in_escape:
            return (
                tuple((link, 2)
                      for link in self.escape_routing.candidates(router, packet)),
            )
        cands = [(link, 4)
                 for link in self.routing.candidates(router, packet)]
        if self.vcs_per_vn == 1:
            # Degenerate config: the only VC is the escape VC.
            cands = []
        for link in self.escape_routing.candidates(router, packet):
            cands.append((link, 2))
        return (tuple(cands),)

    def _pick_vc(self, port: int, vn: int, vc_mode: int, claimed) -> int:
        """Free claimable VC index at *port*/*vn* honouring *vc_mode*; -1 if none."""
        flat = self._buf
        base = port * self._port_stride + vn * self.vcs_per_vn
        if vc_mode == 0:
            order = self._vc_order_all
        elif vc_mode == 2:  # escape only
            order = self._vc_order_escape
        elif vc_mode == 4:  # non-escape, conservative allocation
            # Duato-style conservative criterion for adaptive VCs [11]: only
            # claim an adaptive VC while the port retains another free VC,
            # so the escape path can never be starved of buffer space.
            free = 0
            for vc in self._vc_order_all:
                if flat[base + vc] is None and (port, vn, vc) not in claimed:
                    free += 1
            if free < 2:
                return -1
            order = self._vc_order_adaptive
        else:  # non-escape only
            order = self._vc_order_adaptive
        reserved = self._reserved
        for vc in order:
            if (
                flat[base + vc] is None
                and (port, vn, vc) not in claimed
                and (port, vn, vc) not in reserved
            ):
                return vc
        return -1

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def inject_stage(self) -> None:
        """Move packets from NI injection queues into injection-port VCs.

        One VC allocation per virtual network per node per cycle. Frozen
        during pre-drain/drain windows (no new VC allocations).
        """
        if self.frozen:
            return
        flat = self._buf
        index = self.index
        stats = self.stats
        dead_routers = index.dead_routers
        num_links = index.num_links
        vcs = self.vcs_per_vn
        stride = self._port_stride
        fast = not self.dense
        inj_pending = self._inj_pending
        port_occ = self._port_occ
        router_occ = self._router_occ
        num_vns = self.num_vns
        av = self._engine_avail
        # Rotate class service order for fairness between classes that
        # share a VN.
        rr = self._inj_rr
        self._inj_rr = (rr + 1) % _NUM_CLASSES
        for node in range(index.num_nodes):
            if fast and not inj_pending[node]:
                continue
            if dead_routers and node in dead_routers:
                continue
            queues = self.inj_queues[node]
            port = num_links + node
            base_port = port * stride
            granted_vns = 0
            for off in range(_NUM_CLASSES):
                cls = (rr + off) % _NUM_CLASSES
                queue = queues[cls]
                if not queue:
                    continue
                vn = cls % self.num_vns
                base = base_port + vn * vcs
                vc = -1
                for i in range(vcs):
                    if flat[base + i] is None:
                        vc = i
                        break
                if vc < 0:
                    continue
                packet = queue.popleft()
                inj_pending[node] -= 1
                self._inj_total -= 1
                packet.vn = vn
                packet.net_entry_cycle = self.cycle
                packet.blocked_since = self.cycle
                self.routing.on_inject(packet)
                flat[base + vc] = packet
                if av is not None:
                    av[port * num_vns + vn] &= ~(1 << vc) & 0xFF
                port_occ[port] += 1
                router_occ[node] += 1
                self.packets_in_network += 1
                stats.packets_injected += 1
                stats.buffer_writes += 1
                self.last_progress_cycle = self.cycle
                granted_vns += 1
                if granted_vns >= self.num_vns:
                    break

    def _complete_transfers(self) -> None:
        """Land multi-flit transfers whose serialisation has finished."""
        if not self._in_flight:
            return
        cycle = self.cycle
        remaining = []
        for entry in self._in_flight:
            done, sp, svn, svc, link, tvn, tvc, packet = entry
            if done > cycle:
                remaining.append(entry)
                continue
            self._slot_set(sp, svn, svc, None)
            self._in_flight_sources.discard((sp, svn, svc))
            self._reserved.discard((link, tvn, tvc))
            self._slot_set(link, tvn, tvc, packet)
            self._account_move(sp, svn, link, tvn, tvc, packet)
        self._in_flight = remaining

    def movement_stage(self) -> None:
        """Switch allocation + traversal: the per-cycle router pipeline."""
        eng = self._engine
        if eng is not None:
            # Vectorized engines are only installed on single-flit fabrics,
            # where _complete_transfers is a guaranteed no-op.
            eng.movement()
            return
        self._complete_transfers()
        if self.frozen:
            return
        index = self.index
        flat = self._buf
        num_vns = self.num_vns
        vcs = self.vcs_per_vn
        stride = self._port_stride
        cycle = self.cycle

        moves: List[Tuple[int, int, int, int, int, int, Packet]] = []
        ejects: List[Tuple[int, int, int, Packet]] = []
        link_used = bytearray(index.num_links)
        claimed = set()
        # Lazily seeded per-cycle ejection budgets: at typical occupancy
        # only a handful of routers eject per cycle, so dicts beat
        # preallocating O(nodes) lists every cycle.
        epc = self.net.ejections_per_cycle
        eject_budget: dict = {}
        eject_pending: dict = {}

        fast = not self.dense
        port_occ = self._port_occ
        router_occ = self._router_occ
        in_flight_sources = self._in_flight_sources
        ej_queues = self.ej_queues
        ej_depth = self._ej_depth
        lcg = self._lcg
        dead_links = index.dead_links
        dead_routers = index.dead_routers
        for router in range(index.num_nodes):
            if dead_routers and router in dead_routers:
                continue  # dead router: buffers were emptied at fault time
            if fast and not router_occ[router]:
                continue
            ports = index.in_ports[router]
            nports = len(ports)
            port_start = (cycle + router) % nports
            for pi in range(nports):
                port = ports[(port_start + pi) % nports]
                if fast and not port_occ[port]:
                    continue
                self._serving_port = port  # hook for flow-control subclasses
                base_port = port * stride
                granted = False
                for vn_off in range(num_vns):
                    vn = (cycle + vn_off) % num_vns
                    base = base_port + vn * vcs
                    for vc_off in range(vcs):
                        vc = (cycle + port + vc_off) % vcs
                        packet = flat[base + vc]
                        if packet is None:
                            continue
                        if (
                            in_flight_sources
                            and (port, vn, vc) in in_flight_sources
                        ):
                            continue  # mid-transfer on its link
                        if packet.dst == router:
                            cls = packet.msg_class
                            budget = eject_budget.get(router, epc)
                            if budget > 0:
                                rc = (router, cls)
                                pending = eject_pending.get(rc, 0)
                                if (
                                    len(ej_queues[router][cls]) + pending
                                    < ej_depth
                                ):
                                    ejects.append((port, vn, vc, packet))
                                    eject_budget[router] = budget - 1
                                    eject_pending[rc] = pending + 1
                                    granted = True
                        else:
                            for group in self.candidate_links(router, packet):
                                ncands = len(group)
                                if not ncands:
                                    continue
                                lcg = (lcg * 1103515245 + 12345) & 0x7FFFFFFF
                                start = lcg % ncands
                                for ci in range(ncands):
                                    link, vc_mode = group[(start + ci) % ncands]
                                    if (
                                        link_used[link]
                                        or self._link_busy_until[link] >= cycle
                                        or (dead_links and link in dead_links)
                                    ):
                                        continue
                                    tvc = self._pick_vc(link, vn, vc_mode, claimed)
                                    if tvc < 0:
                                        continue
                                    if self.packet_size_flits > 1:
                                        # Serialised transfer: hold the link,
                                        # keep the source, reserve the target.
                                        done = cycle + self.packet_size_flits - 1
                                        self._link_busy_until[link] = done
                                        self._in_flight.append(
                                            (done, port, vn, vc, link, vn,
                                             tvc, packet)
                                        )
                                        self._in_flight_sources.add(
                                            (port, vn, vc)
                                        )
                                        self._reserved.add((link, vn, tvc))
                                    else:
                                        moves.append(
                                            (port, vn, vc, link, vn, tvc, packet)
                                        )
                                        claimed.add((link, vn, tvc))
                                    link_used[link] = 1
                                    granted = True
                                    break
                                if granted:
                                    break
                        if granted:
                            break
                    if granted:
                        break
                # one grant per input port per cycle (crossbar input constraint)
        self._lcg = lcg
        self._apply_moves(moves, ejects)

    def _apply_moves(
        self,
        moves: List[Tuple[int, int, int, int, int, int, Packet]],
        ejects: List[Tuple[int, int, int, Packet]],
    ) -> None:
        flat = self._buf
        index = self.index
        stats = self.stats
        cycle = self.cycle
        stride = self._port_stride
        vcs = self.vcs_per_vn
        port_occ = self._port_occ
        router_occ = self._router_occ
        port_router = index.port_router
        if moves or ejects:
            self.last_progress_cycle = cycle
        for port, vn, vc, _t1, _t2, _t3, _pkt in moves:
            flat[port * stride + vn * vcs + vc] = None
            port_occ[port] -= 1
            router_occ[port_router[port]] -= 1
        for port, vn, vc, _pkt in ejects:
            flat[port * stride + vn * vcs + vc] = None
            port_occ[port] -= 1
            router_occ[port_router[port]] -= 1
        for src_port, vn, _vc, link, tvn, tvc, packet in moves:
            flat[link * stride + tvn * vcs + tvc] = packet
            port_occ[link] += 1
            router_occ[port_router[link]] += 1
            self._account_move(src_port, vn, link, tvn, tvc, packet)
        for port, _vn, _vc, packet in ejects:
            router = port_router[port]
            self._eject(router, packet)
            stats.buffer_reads += 1
            stats.xbar_traversals += 1

    def _account_move(self, src_port: int, vn: int, link: int, tvn: int,
                      tvc: int, packet: Packet) -> None:
        """Per-traversal bookkeeping shared by 1-cycle and serialised moves."""
        stats = self.stats
        index = self.index
        packet.hops += 1
        packet.blocked_since = self.cycle
        old_router = index.port_router[src_port]
        new_router = index.link_dst[link]
        if index.dist[new_router][packet.dst] > index.dist[old_router][packet.dst]:
            packet.misroutes += 1
            stats.misroutes += 1
        self._route_state_update(packet, link, tvc)
        stats.flits_traversed += self.packet_size_flits
        stats.vn_hops[tvn] = stats.vn_hops.get(tvn, 0) + 1
        self.link_util[link] += 1
        stats.buffer_reads += 1
        stats.buffer_writes += 1
        stats.xbar_traversals += 1
        self.last_progress_cycle = self.cycle

    def _route_state_update(self, packet: Packet, link: int, tvc: int) -> None:
        """Latch escape/phase state after *packet* traverses *link* into VC *tvc*."""
        sticky = self.escape_mode == "escape_vc" or self.escape_sticky
        if self.escape_mode is not None and tvc == 0 and not packet.in_escape and sticky:
            packet.in_escape = True
            if self.escape_mode == "escape_vc":
                self.escape_routing.on_inject(packet)
        if packet.in_escape and self.escape_mode == "escape_vc":
            self.escape_routing.on_hop(packet, link)
        else:
            self.routing.on_hop(packet, link)

    def _eject(self, router: int, packet: Packet) -> None:
        """Deliver *packet* into the per-class ejection queue at *router*."""
        packet.eject_cycle = self.cycle
        self.ej_queues[router][packet.msg_class].append(packet)
        self.ej_pending[router] += 1
        self.ej_pending_total += 1
        self.packets_in_network -= 1
        stats = self.stats
        stats.packets_ejected += 1
        if self.cycle >= self.measure_from:
            stats.packets_ejected_measured += 1
        if packet.gen_cycle >= self.measure_from:
            stats.latency.add(packet.latency)
            if packet.net_entry_cycle is not None:
                stats.network_latency.add(packet.network_latency)
            stats.hops.add(packet.hops)

    def step(self) -> None:
        """Advance the fabric by one cycle.

        Movement runs before injection so that a packet written into a VC
        (by injection or by a move) earliest departs in the *next* cycle —
        the 1-cycle router latency of Table II.
        """
        self.movement_stage()
        self.inject_stage()
        self.cycle += 1
        self.stats.cycles += 1

    # ------------------------------------------------------------------
    # Quiescence / event-horizon fast-forward
    # ------------------------------------------------------------------
    @property
    def quiescent(self) -> bool:
        """True when a :meth:`step` would be an observable no-op.

        Folds the active-set counters: no packet in any VC, nothing queued
        at any NI (injection or ejection side), no serialised transfer on
        a wire, and not frozen by a drain window. On such a cycle both
        pipeline stages return without touching buffers or the LCG, so the
        only state a dense step mutates is the cycle counters and the
        injection-fairness rotation — exactly what :meth:`skip_cycles`
        replays.
        """
        return (
            self.packets_in_network == 0
            and self._inj_total == 0
            and self.ej_pending_total == 0
            and not self._in_flight
            and not self.frozen
        )

    def skip_cycles(self, count: int) -> None:
        """Fast-forward *count* provably idle cycles in O(1).

        Callers must hold the event-horizon contract: the fabric is
        quiescent on the *router* side (no buffered packets, no transfers,
        not frozen) for the whole span. NI injection-queue content is
        tolerated — ``Simulation._fast_forward`` completes the cycle that
        generated it densely, and that packet's injection happens strictly
        after this skip — but a buffered packet would have moved, so that
        is a contract violation, not a tolerable approximation.
        """
        if count <= 0:
            return
        if (self.packets_in_network or self._in_flight or self.frozen
                or self.ej_pending_total):
            raise RuntimeError(
                "skip_cycles on a non-quiescent fabric: "
                f"{self.packets_in_network} buffered, "
                f"{len(self._in_flight)} in flight, frozen={self.frozen}"
            )
        self.cycle += count
        self.stats.cycles += count
        # inject_stage advances the class-rotation counter every non-frozen
        # cycle even when every NI queue is empty.
        self._inj_rr = (self._inj_rr + count) % _NUM_CLASSES

    # ------------------------------------------------------------------
    # Draining (called by DrainController during drain windows)
    # ------------------------------------------------------------------
    def drain_rotate_escape(self, path_ports: List[int]) -> None:
        """Rotate all escape-VC packets one hop along the drain path.

        ``path_ports`` is the drain path as input-port (link) ids in cycle
        order; position ``i`` feeds position ``i+1``. The rotation is a
        permutation of buffer contents — every slot's new content comes
        from its predecessor — so it never requires a free buffer. After
        the rotation, packets that arrived at their destination router
        eject immediately if their per-class ejection queue has space.
        """
        flat = self._buf
        index = self.index
        stats = self.stats
        dist = index.dist
        stride = self._port_stride
        vcs = self.vcs_per_vn
        n = len(path_ports)
        cycle = self.cycle
        for vn in range(self.num_vns):
            offset = vn * vcs
            packets = [flat[p * stride + offset] for p in path_ports]
            moved = 0
            for i in range(n):
                packet = packets[i]
                tgt = path_ports[(i + 1) % n]
                self._slot_set(tgt, vn, 0, packet)
                if packet is None:
                    continue
                moved += 1
                packet.hops += 1
                packet.drain_moves += 1
                packet.blocked_since = cycle
                old_router = index.link_dst[path_ports[i]]
                new_router = index.link_dst[tgt]
                if dist[new_router][packet.dst] > dist[old_router][packet.dst]:
                    packet.misroutes += 1
                    stats.misroutes += 1
                stats.flits_traversed += 1
                stats.buffer_reads += 1
                stats.buffer_writes += 1
                stats.xbar_traversals += 1
            if moved:
                stats.drained_packets += moved
                self.last_progress_cycle = cycle
            for p in path_ports:
                packet = flat[p * stride + offset]
                if packet is None:
                    continue
                router = index.link_dst[p]
                if packet.dst != router:
                    continue
                if self.ejection_space(router, packet.msg_class) > 0:
                    self._slot_set(p, vn, 0, None)
                    self._eject(router, packet)
                    stats.buffer_reads += 1

    # ------------------------------------------------------------------
    # Introspection helpers (oracle, controllers, tests)
    # ------------------------------------------------------------------
    def occupied_slots(self) -> List[Tuple[int, int, int, Packet]]:
        """All occupied buffer slots as (port, vn, vc, packet) tuples."""
        out = []
        flat = self._buf
        stride = self._port_stride
        vcs = self.vcs_per_vn
        num_vns = self.num_vns
        port_occ = self._port_occ
        fast = not self.dense
        for port in range(self.index.num_ports):
            if fast and not port_occ[port]:
                continue
            base_port = port * stride
            for vn in range(num_vns):
                base = base_port + vn * vcs
                for vc in range(vcs):
                    packet = flat[base + vc]
                    if packet is not None:
                        out.append((port, vn, vc, packet))
        return out

    def count_packets(self) -> int:
        """Packets currently buffered in the network (invariant check).

        Deliberately scans the raw flat buffer — not the occupancy
        counters — so tests can cross-check counter maintenance.
        """
        return sum(1 for packet in self._buf if packet is not None)

    def transfers_in_flight(self) -> int:
        """Serialised link transfers still completing (multi-flit packets).

        The drain controller refuses to open a drain window while this is
        non-zero — the runtime embodiment of the paper's rule that the
        pre-drain window is sized by the maximum packet size.
        """
        return len(self._in_flight)

    def link_utilization(self) -> List[float]:
        """Per-link traversal rate (flits per cycle) over the run so far."""
        if self.cycle == 0:
            return [0.0] * self.index.num_links
        return [count / self.cycle for count in self.link_util]

    def router_load(self) -> dict:
        """Per-router incoming traffic (flits/cycle), for heat rendering."""
        load = {n: 0.0 for n in range(self.index.num_nodes)}
        for link, rate in enumerate(self.link_utilization()):
            load[self.index.link_dst[link]] += rate
        return load

    # ------------------------------------------------------------------
    # Runtime fault primitives (called by repro.faults.FaultInjector)
    # ------------------------------------------------------------------
    def fault_cancel_transfers(
        self, dead_link_ids: set, drop: bool
    ) -> List[Packet]:
        """Resolve serialised transfers caught mid-wire on dying links.

        With ``drop`` the packet is lost (its flits were on the dead wire);
        without it the transfer is cancelled and the packet stays in its
        source slot — it never released that buffer — ready to reroute.
        Returns the dropped packets so the caller can account/retransmit.
        """
        dropped: List[Packet] = []
        if not self._in_flight:
            for link in dead_link_ids:
                self._link_busy_until[link] = -1
            return dropped
        remaining = []
        for entry in self._in_flight:
            done, sp, svn, svc, link, tvn, tvc, packet = entry
            if link not in dead_link_ids:
                remaining.append(entry)
                continue
            self._in_flight_sources.discard((sp, svn, svc))
            self._reserved.discard((link, tvn, tvc))
            if drop:
                self._slot_set(sp, svn, svc, None)
                self.packets_in_network -= 1
                dropped.append(packet)
        self._in_flight = remaining
        for link in dead_link_ids:
            self._link_busy_until[link] = -1
        return dropped

    def fault_drop_slot(self, port: int, vn: int, vc: int) -> Packet:
        """Vaporise the packet in one buffer slot (fault semantics)."""
        packet = self._slot_get(port, vn, vc)
        if packet is None:
            raise ValueError(f"no packet at slot {(port, vn, vc)}")
        self._slot_set(port, vn, vc, None)
        self.packets_in_network -= 1
        self._in_flight_sources.discard((port, vn, vc))
        return packet

    def fault_kill_router(self, router: int) -> List[Packet]:
        """Drop everything resident at a dying router; return the packets.

        Covers the router's input-port VCs (including its injection port)
        and both NI queue sets. Serialised transfers on the router's
        incident links must already have been resolved via
        :meth:`fault_cancel_transfers` (their links die with the router).
        """
        dropped: List[Packet] = []
        for port in self.index.in_ports[router]:
            for vn in range(self.num_vns):
                for vc in range(self.vcs_per_vn):
                    if self._slot_get(port, vn, vc) is not None:
                        dropped.append(self.fault_drop_slot(port, vn, vc))
        for queue in self.inj_queues[router]:
            while queue:
                dropped.append(queue.popleft())
                self._inj_pending[router] -= 1
                self._inj_total -= 1
        for queue in self.ej_queues[router]:
            while queue:
                dropped.append(queue.popleft())
                self.ej_pending[router] -= 1
                self.ej_pending_total -= 1
        return dropped

    def fault_drop_unroutable(self) -> List[Packet]:
        """Drop buffered/queued packets with no surviving route; return them.

        A packet is unroutable when its destination died or the fault
        disconnected it from the packet's current router. Run after
        :meth:`FabricIndex.apply_faults` so the distance matrix is current.
        """
        index = self.index
        dead_routers = index.dead_routers
        dist = index.dist
        dropped: List[Packet] = []
        for port, vn, vc, packet in self.occupied_slots():
            here = index.port_router[port]
            if here in dead_routers:
                continue  # handled by fault_kill_router
            if packet.dst in dead_routers or dist[here][packet.dst] < 0:
                dropped.append(self.fault_drop_slot(port, vn, vc))
        for node in range(index.num_nodes):
            if node in dead_routers:
                continue
            for queue in self.inj_queues[node]:
                keep = []
                for p in queue:
                    if p.dst not in dead_routers and dist[node][p.dst] >= 0:
                        keep.append(p)
                    else:
                        dropped.append(p)
                if len(keep) != len(queue):
                    self._inj_pending[node] -= len(queue) - len(keep)
                    self._inj_total -= len(queue) - len(keep)
                    queue.clear()
                    queue.extend(keep)
        return dropped

    def force_move(self, src: Tuple[int, int, int], dst: Tuple[int, int, int]) -> None:
        """Teleport a packet between slots (drain/spin rotation primitive).

        The destination slot must be free. Hop/misroute accounting is the
        caller's responsibility since forced moves have scheme-specific
        semantics.
        """
        sp, svn, svc = src
        dp, dvn, dvc = dst
        packet = self._slot_get(sp, svn, svc)
        if packet is None:
            raise ValueError(f"no packet at slot {src}")
        if self._slot_get(dp, dvn, dvc) is not None:
            raise ValueError(f"slot {dst} is occupied")
        self._slot_set(sp, svn, svc, None)
        self._slot_set(dp, dvn, dvc, packet)
